//! Regenerates the extension experiments (beyond the paper's figures).
//!
//! With no arguments, renders every extension. `extensions e3` renders
//! only the QoS overload experiment, `extensions e3-engine` the same
//! overload driven end-to-end through the shared proxy engine,
//! `extensions e4` only the queue-depth sweep, and `extensions e5` the
//! fault-injection recovery sweep, `extensions e6` the extent-lease
//! data plane, and `extensions e7` the sharded control-plane scalability
//! sweep, `extensions e8` the symmetric reply-wave and TCP
//! send-coalescing sweep, and `extensions e9` the domain-failover fault
//! storm, and `extensions e10` the hierarchical host-QoS tenant-churn
//! storm — the cheap ones CI runs as smoke tests. The `e5` arm
//! exits nonzero if any scenario leaves a hung tag, leaks a credit, or
//! blows its recovery-latency bound; `e3-engine` exits nonzero if any
//! shed is charged to a paced flow; `e6` exits nonzero on a stale
//! generation read, a dirty recall ledger, or a leased hot loop that
//! still pays per-op RPCs; `e7` exits nonzero if 8 control-plane domains
//! deliver less than 3x the 1-domain op rate or any log replica
//! diverges; `e9` exits nonzero if a failover is missed, the blackout
//! blows its bound, a reply is lost or duplicated, surviving replicas
//! diverge, or the surviving domains' tail collapses; `e10` exits
//! nonzero if a paced victim flow sheds or misses its SLO, if the
//! flow-table occupancy tracks ever-seen tenants instead of active
//! ones, if the occupancy ledger leaks, or if the steady-state
//! admission path heap-allocates. All double as robustness gates.

fn main() {
    let only = std::env::args().nth(1);
    match only.as_deref() {
        Some("e3") => print!(
            "## E3 — QoS gate under overload\n\n{}",
            solros_bench::extensions::qos_overload()
        ),
        Some("e3-engine") => {
            // Overload end-to-end through the shared proxy engine; exits
            // nonzero if any shed lands on a paced (non-best-effort)
            // flow — those classes are not sheddable by contract.
            let (report, paced_shed) = solros_bench::extensions::engine_overload_smoke();
            print!("## E3-engine — overload through the shared proxy engine\n\n{report}");
            if paced_shed > 0 {
                eprintln!("E3-ENGINE FAIL: {paced_shed} sheds charged to paced flows");
                std::process::exit(1);
            }
        }
        Some("e4") => print!(
            "## E4 — submission pipeline vs queue depth\n\n{}",
            solros_bench::extensions::queue_depth()
        ),
        Some("e5") => {
            // Detection deadlines are 150 ms; anything past this bound
            // means recovery wedged rather than ran.
            const RECOVERY_BOUND_NS: u64 = 5_000_000_000;
            let scenarios = solros_bench::extensions::fault_scenarios();
            print!(
                "## E5 — fault injection and recovery\n\n{}",
                solros_bench::extensions::render_fault_scenarios(&scenarios)
            );
            let mut failed = false;
            for s in &scenarios {
                if !s.report.clean() {
                    eprintln!(
                        "E5 FAIL {}: {} hung tags, {} leaked credits",
                        s.name, s.report.hung_tags, s.report.leaked_credits
                    );
                    failed = true;
                }
                if s.report.detect_ns + s.report.recover_ns > RECOVERY_BOUND_NS {
                    eprintln!(
                        "E5 FAIL {}: recovery took {} ns (bound {} ns)",
                        s.name,
                        s.report.detect_ns + s.report.recover_ns,
                        RECOVERY_BOUND_NS
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some("e6") => {
            // Extent-lease data plane; exits nonzero on any silently
            // stale read, a dirty recall ledger, or a leased hot loop
            // that still pays per-op RPCs.
            let o = solros_bench::extensions::lease_data_plane();
            print!("## E6 — extent-lease data plane\n\n{}", o.report);
            let mut failed = false;
            if o.stale_generation_reads > 0 {
                eprintln!(
                    "E6 FAIL: {} stale-generation reads (must be 0)",
                    o.stale_generation_reads
                );
                failed = true;
            }
            if !o.ledger_clean {
                eprintln!("E6 FAIL: recall ledger dirty at quiescence");
                failed = true;
            }
            if o.leased_rpcs_per_op >= 0.05 {
                eprintln!(
                    "E6 FAIL: leased hot reads cost {:.3} RPCs/op (want ~0)",
                    o.leased_rpcs_per_op
                );
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some("e7") => {
            // Sharded control plane; exits nonzero if 8 domains fail to
            // deliver 3x the 1-domain op throughput, if any replica's
            // apply-order fingerprint diverges, or if a real-boot storm
            // overran a replica cursor.
            let o = solros_bench::extensions::control_plane_scaling();
            print!("## E7 — sharded control-plane scalability\n\n{}", o.report);
            let mut failed = false;
            if o.speedup8 < 3.0 {
                eprintln!("E7 FAIL: 8-domain speedup {:.2}x (want >= 3x)", o.speedup8);
                failed = true;
            }
            if o.divergence > 0 {
                eprintln!("E7 FAIL: {} replicas diverged (must be 0)", o.divergence);
                failed = true;
            }
            if o.overruns > 0 {
                eprintln!(
                    "E7 FAIL: {} replica overruns in real-boot storms (must be 0)",
                    o.overruns
                );
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some("e8") => {
            // Symmetric reply wave; exits nonzero if reply-side publishes
            // per op exceed 0.25 at the deepest point on either the fs or
            // the TCP path, if pipelined small sends gain less than 2x
            // over QD1, or if the run leaks a tag, a credit, an event, or
            // a payload byte.
            let o = solros_bench::extensions::reply_wave();
            print!(
                "## E8 — symmetric reply wave and TCP send coalescing\n\n{}",
                o.report
            );
            let mut failed = false;
            if o.fs_qd32 > 0.25 {
                eprintln!(
                    "E8 FAIL: fs reply publishes/op {:.3} at QD32 (want <= 0.25)",
                    o.fs_qd32
                );
                failed = true;
            }
            if o.tcp_qd32 > 0.25 {
                eprintln!(
                    "E8 FAIL: tcp reply publishes/op {:.3} at QD32 (want <= 0.25)",
                    o.tcp_qd32
                );
                failed = true;
            }
            if o.tcp_speedup < 2.0 {
                eprintln!(
                    "E8 FAIL: pipelined small sends only {:.2}x over QD1 (want >= 2x)",
                    o.tcp_speedup
                );
                failed = true;
            }
            let leaks = o.tag_leaks + o.credit_leaks + o.event_drops + o.bytes_mismatch;
            if leaks > 0 {
                eprintln!(
                    "E8 FAIL: {} tags pending, {} credits held, {} events dropped, \
                     {} bytes lost (all must be 0)",
                    o.tag_leaks, o.credit_leaks, o.event_drops, o.bytes_mismatch
                );
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some("e9") => {
            // Domain failover; exits nonzero if either injected death
            // (crash, wedge) goes unrecovered, the fence-to-replacement
            // blackout blows its bound, any reply is lost or duplicated,
            // the surviving replicas end on different fingerprints, the
            // surviving domains' tail collapses, or the lag rig fails to
            // recover a forced replica overrun.
            const BLACKOUT_BOUND_MS: f64 = 1_000.0;
            let o = solros_bench::extensions::domain_failover();
            print!(
                "## E9 — domain failover under a fault storm\n\n{}",
                o.report
            );
            let mut failed = false;
            if o.failovers != 2 {
                eprintln!("E9 FAIL: {} failovers completed (want 2)", o.failovers);
                failed = true;
            }
            if o.blackout_ms > BLACKOUT_BOUND_MS {
                eprintln!(
                    "E9 FAIL: blackout {:.1} ms (bound {BLACKOUT_BOUND_MS} ms)",
                    o.blackout_ms
                );
                failed = true;
            }
            if o.stuck > 0 || o.echo_mismatches > 0 {
                eprintln!(
                    "E9 FAIL: {} roundtrips stuck, {} echoes corrupted (both must be 0 \
                     — a blackout severs, it never loses or duplicates)",
                    o.stuck, o.echo_mismatches
                );
                failed = true;
            }
            if o.ok_before == 0 || o.ok_after == 0 {
                eprintln!(
                    "E9 FAIL: {} echoes before, {} after — both windows must serve",
                    o.ok_before, o.ok_after
                );
                failed = true;
            }
            if o.p99_after_us > (8.0 * o.p99_before_us).max(2_000.0) {
                eprintln!(
                    "E9 FAIL: surviving-domain p99 {:.0} µs after vs {:.0} µs before",
                    o.p99_after_us, o.p99_before_us
                );
                failed = true;
            }
            if !o.converged {
                eprintln!("E9 FAIL: surviving control replicas diverged");
                failed = true;
            }
            if !o.clean || o.event_drops > 0 {
                eprintln!(
                    "E9 FAIL: recovery report not clean ({} event drops)",
                    o.event_drops
                );
                failed = true;
            }
            if o.lag_recovered == 0 || o.lag_diverged {
                eprintln!(
                    "E9 FAIL: lag rig recovered {} overruns (want >= 1), diverged: {}",
                    o.lag_recovered, o.lag_diverged
                );
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some("e10") => {
            // Hierarchical host QoS under tenant-id churn; exits nonzero
            // if a paced victim sheds or blows its SLO, if the sharded
            // flow tables grow with ever-seen tenants rather than the
            // active window, if admitted != live + reclaimed (the
            // occupancy ledger leaked), if the churn was too small to
            // prove anything, or if the steady-state admission path
            // performed a single heap allocation.
            const SLO_US: f64 = 5_000.0;
            let o = solros_bench::extensions::hierarchical_qos();
            print!(
                "## E10 — hierarchical QoS under tenant-id churn\n\n{}",
                o.report
            );
            let mut failed = false;
            if o.paced_sheds > 0 {
                eprintln!(
                    "E10 FAIL: {} sheds charged to paced victim flows (must be 0)",
                    o.paced_sheds
                );
                failed = true;
            }
            if o.victim_fs_p99_us > SLO_US || o.victim_tcp_p99_us > SLO_US {
                eprintln!(
                    "E10 FAIL: victim p99 fs {:.0} µs / tcp {:.0} µs (SLO {SLO_US} µs)",
                    o.victim_fs_p99_us, o.victim_tcp_p99_us
                );
                failed = true;
            }
            if o.ever_seen < 100_000 {
                eprintln!(
                    "E10 FAIL: only {} churned tenant ids (want >= 100000)",
                    o.ever_seen
                );
                failed = true;
            }
            if o.peak_live > 2 * o.peak_active.max(1) {
                eprintln!(
                    "E10 FAIL: peak flow-table occupancy {} vs {} peak-active flows \
                     (occupancy must be O(active), bound 2x)",
                    o.peak_live, o.peak_active
                );
                failed = true;
            }
            if o.live_after > 2 * o.peak_active.max(1) || o.live_after as u64 * 20 > o.ever_seen {
                eprintln!(
                    "E10 FAIL: {} entries live after the churn settled \
                     ({} ever seen, {} peak active) — GC is not reclaiming",
                    o.live_after, o.ever_seen, o.peak_active
                );
                failed = true;
            }
            if o.occupancy_drift != 0 {
                eprintln!(
                    "E10 FAIL: occupancy ledger drift {} (admitted != live + reclaimed)",
                    o.occupancy_drift
                );
                failed = true;
            }
            if o.admission_allocs > 0 {
                eprintln!(
                    "E10 FAIL: {} heap allocations across {} steady-state admissions \
                     (must be 0 — the hot path regressed)",
                    o.admission_allocs, o.admission_ops
                );
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!(
                "unknown experiment {other:?}; expected `e3`, `e3-engine`, `e4`, `e5`, \
                 `e6`, `e7`, `e8`, `e9`, `e10`, or no argument"
            );
            std::process::exit(2);
        }
        None => print!("{}", solros_bench::extensions::run_all()),
    }
}
