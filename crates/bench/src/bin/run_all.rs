//! Regenerates the entire evaluation (every table and figure) as one
//! markdown report — the data recorded in `EXPERIMENTS.md`.

fn main() {
    print!("{}", solros_bench::run_all());
}
