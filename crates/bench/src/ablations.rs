//! Ablations for the design decisions DESIGN.md §4 calls out.
//!
//! Each function isolates one Solros design choice, runs the real
//! implementation (or the calibrated model) with the choice flipped or
//! swept, and reports the consequence. `run_all()` renders every ablation
//! as markdown.

use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;
use std::time::Duration;

use solros_pcie::cost::CostModel;
use solros_pcie::{PcieCounters, Side};
use solros_ringbuf::ring::{RingBuf, RingConfig};
use solros_simkit::report::Table;
use solros_simkit::SimTime;

use crate::figs::fig09;
use crate::model::{FsModel, FsStack};

/// D1: combining threshold sweep — what the threshold actually controls
/// is combiner tenure length (how many peers' operations one thread
/// batches before handing off), which amortizes control-variable updates
/// and cache-line movement under contention.
pub fn combining_threshold() -> String {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let threads = cores.clamp(2, 8);
    let mut t = Table::new(vec![
        "threshold",
        "producer tenures / 1000 ops",
        "wall-clock kops/s (local ring)",
    ]);
    for threshold in [1usize, 4, 16, 64, 256] {
        let counters = Arc::new(PcieCounters::new());
        let cfg = RingConfig::local(1 << 20, Side::Host).with_threshold(threshold);
        let ring = RingBuf::new(cfg, Arc::clone(&counters));
        let (tx, rx) = ring.endpoints();
        let ops_per_thread = 3_000u64;
        let ops = ops_per_thread * threads as u64;
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                let rx = rx.clone();
                s.spawn(move || {
                    for _ in 0..ops_per_thread {
                        tx.send_blocking(&[1u8; 64]).unwrap();
                        let _ = rx.recv_blocking();
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let tenures = tx.combiner_batches();
        t.row(vec![
            threshold.to_string(),
            format!("{:.0}", tenures as f64 * 1000.0 / ops as f64),
            format!("{:.0}", ops as f64 / elapsed / 1e3),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(&format!(
        "
({threads} threads on a machine with parallelism {cores}; higher thresholds show longer tenures — and wall-clock gains — only under real contention.)
"
    ));
    out
}

/// D4: master ring placement — who crosses the bus for payloads.
pub fn master_placement() -> String {
    let model = CostModel::paper_default();
    let mut t = Table::new(vec![
        "master at",
        "remote DMA bytes",
        "remote line writes",
        "virtual kops/s (8 thr)",
    ]);
    for (label, master) in [("sender (paper)", Side::Coproc), ("receiver", Side::Host)] {
        let counters = Arc::new(PcieCounters::new());
        let cfg = RingConfig::over_pcie(8 << 20, master, Side::Coproc, Side::Host);
        let ring = RingBuf::new(cfg, Arc::clone(&counters));
        let (tx, rx) = ring.endpoints();
        let ops = 4_000u64;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let tx = tx.clone();
                s.spawn(move || {
                    for _ in 0..ops / 8 {
                        tx.send_blocking(&[1u8; 64]).unwrap();
                    }
                });
            }
        });
        std::thread::scope(|s| {
            for _ in 0..8 {
                let rx = rx.clone();
                s.spawn(move || {
                    for _ in 0..ops / 8 {
                        let _ = rx.recv_blocking();
                    }
                });
            }
        });
        let snap = counters.snapshot();
        let thr = fig09::virtual_throughput(&model, Side::Coproc, 8, ops, &snap);
        t.row(vec![
            label.to_string(),
            snap.dma_bytes.to_string(),
            snap.write_lines.to_string(),
            format!("{:.0}", thr / 1e3),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nMaster at the sender keeps enqueue local and lets the receiver pull in \
         batches; master at the receiver forces the sender to push every element \
         across the bus line by line.\n",
    );
    out
}

/// D6: NVMe command coalescing — the vectored ioctl vs per-command
/// submission, functionally (interrupt counts) and in modeled latency.
pub fn nvme_coalescing() -> String {
    use solros_nvme::{DmaPtr, NvmeCommand, NvmeDevice, NvmePerf};
    use solros_pcie::Window;

    let perf = NvmePerf::paper_default();
    let mut t = Table::new(vec![
        "submission",
        "doorbells (512KB read)",
        "interrupts",
        "modeled latency (us)",
    ]);
    for (label, vectored) in [("vectored (Solros)", true), ("per-command", false)] {
        let dev = NvmeDevice::new(4096);
        let counters = Arc::new(PcieCounters::new());
        let buf = Window::new(512 * 1024, Side::Coproc, counters);
        let cmds: Vec<_> = (0..4)
            .map(|i| NvmeCommand::Read {
                lba: i * 32,
                nblocks: 32,
                dst: DmaPtr::new(Arc::clone(&buf), (i * 128 * 1024) as usize),
            })
            .collect();
        if vectored {
            dev.submit_vectored(&cmds);
        } else {
            dev.submit_each(&cmds);
        }
        let s = dev.stats();
        let modeled = if vectored {
            perf.vectored_batch_time(true, 4, 128 * 1024)
        } else {
            perf.sequential_batch_time(true, 4, 128 * 1024)
        };
        t.row(vec![
            label.to_string(),
            s.doorbells.to_string(),
            s.interrupts.to_string(),
            format!("{:.0}", modeled.as_us_f64()),
        ]);
    }
    t.to_markdown()
}

/// D5: the P2P/buffered decision — what forcing the wrong path costs.
pub fn path_decision() -> String {
    let m = FsModel::paper_default();
    let mut t = Table::new(vec![
        "placement",
        "path",
        "512KB read latency (us)",
        "4MB read throughput (GB/s, 32 thr)",
    ]);
    let rows: [(&str, FsStack); 2] = [
        ("same socket", FsStack::Solros),
        ("cross NUMA, P2P forced", FsStack::SolrosCrossNuma),
    ];
    for (place, stack) in rows {
        t.row(vec![
            place.to_string(),
            if stack == FsStack::Solros {
                "P2P"
            } else {
                "P2P (bad)"
            }
            .to_string(),
            format!("{:.0}", m.op_latency(stack, true, 512 << 10).as_us_f64()),
            format!("{:.3}", m.throughput(stack, true, 32, 4 << 20) / 1e9),
        ]);
    }
    // The demotion the proxy actually performs: buffered ≈ host staging,
    // bounded by host DMA push instead of the 0.3 GB/s relay.
    let buffered_bw = m.cost.host_dma.bytes_per_sec.min(m.nvme.read_bw);
    t.row(vec![
        "cross NUMA, demoted to buffered".into(),
        "buffered".into(),
        format!(
            "{:.0}",
            (m.op_latency(FsStack::Solros, true, 512 << 10)
                + SimTime::from_secs_f64(512.0 * 1024.0 / m.cost.host_dma.bytes_per_sec))
            .as_us_f64()
        ),
        format!("{:.3}", buffered_bw.min(2.4e9) / 1e9),
    ]);
    let mut out = t.to_markdown();
    out.push_str(
        "\nThe control plane's topology-aware demotion (Figure 1a) recovers nearly \
         the full device bandwidth that naive cross-NUMA P2P loses.\n",
    );
    out
}

/// D3: adaptive copy threshold sweep (host-initiated pulls).
pub fn adaptive_threshold() -> String {
    let sizes: [u64; 6] = [64, 512, 2 << 10, 8 << 10, 64 << 10, 1 << 20];
    let mut t = Table::new(vec!["host threshold", "mean copy time over size mix (us)"]);
    for threshold in [256u64, 1 << 10, 4 << 10, 64 << 10] {
        let mut m = CostModel::paper_default();
        m.host_adaptive_threshold = threshold;
        let mean_us: f64 = sizes
            .iter()
            .map(|&s| m.adaptive_time(Side::Host, s).as_us_f64())
            .sum::<f64>()
            / sizes.len() as f64;
        let label = if threshold == 1 << 10 {
            format!("{threshold} (paper)")
        } else {
            threshold.to_string()
        };
        t.row(vec![label, format!("{mean_us:.1}")]);
    }
    t.to_markdown()
}

/// D8: the single-thread event dispatcher under fan-out load.
pub fn dispatcher_saturation() -> String {
    use solros::control::Solros;
    use solros_machine::MachineConfig;
    use solros_netdev::EndKind;

    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let socks = 16usize;
    let per_sock = 50usize;
    let listener = net.listen(7300, 256).unwrap();
    let fabric = Arc::clone(sys.network());

    // Establish the connections and blast messages from the client side.
    let mut conns = Vec::new();
    for i in 0..socks {
        loop {
            if let Ok(c) = fabric.client_connect(7300, i as u64) {
                conns.push(c);
                break;
            }
            std::thread::yield_now();
        }
    }
    let mut streams = Vec::new();
    for _ in 0..socks {
        let (stream, _) = listener
            .accept_timeout(Duration::from_secs(10))
            .expect("accept");
        streams.push(stream);
    }
    let start = std::time::Instant::now();
    for round in 0..per_sock {
        for (i, &c) in conns.iter().enumerate() {
            let msg = [(round * socks + i) as u8; 64];
            fabric.send(c, EndKind::Client, &msg).unwrap();
        }
    }
    // One dispatcher routes everything; every byte must arrive in order.
    let mut total = 0usize;
    for stream in &streams {
        let data = stream
            .recv_exact(per_sock * 64)
            .expect("dispatcher delivered all data");
        total += data.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let events = sys.tcp_proxy_stats(0).events.load(AtomicOrdering::Relaxed);
    sys.shutdown();
    format!(
        "One dispatcher thread routed {events} events / {total} bytes to {socks} sockets \
         in {:.1} ms with no loss or reordering ({:.0}k events/s wall-clock; the paper \
         reports no dispatcher bottleneck even at 244 hardware threads).\n",
        elapsed * 1e3,
        events as f64 / elapsed / 1e3
    )
}

/// §4.3.2 prefetch: sequential buffered streams with and without the
/// proxy's readahead — device reads issued on the critical path.
pub fn readahead() -> String {
    use solros::fs_proxy::{FsProxy, FsProxyStats};
    use solros_fs::FileSystem;
    use solros_nvme::NvmeDevice;
    use solros_pcie::Window;
    use solros_proto::fs_msg::FsRequest;

    let mut t = Table::new(vec![
        "readahead",
        "cache hits during scan",
        "pages prefetched",
    ]);
    for pages in [0u64, 8] {
        let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(16_384), 4096).unwrap());
        let counters = Arc::new(PcieCounters::new());
        let window = Window::new(1 << 20, Side::Coproc, counters);
        let stats = Arc::new(FsProxyStats::default());
        // Cross-NUMA placement forces the buffered path.
        let mut proxy = FsProxy::new(Arc::clone(&fs), window, true, Arc::clone(&stats));
        proxy.set_readahead(pages);
        let ino = fs.create("/scan").unwrap();
        fs.write(ino, 0, &vec![1u8; 64 * 4096]).unwrap();
        fs.cache().invalidate_ino(ino);
        let hits0 = fs.cache().stats().hits;
        for i in 0..16u64 {
            proxy.handle(FsRequest::Read {
                ino,
                offset: i * 4 * 4096,
                count: 4 * 4096,
                buf_addr: 0,
            });
        }
        let hits = fs.cache().stats().hits - hits0;
        t.row(vec![
            if pages == 0 {
                "off".into()
            } else {
                format!("{pages} pages (Solros)")
            },
            hits.to_string(),
            stats
                .prefetched_pages
                .load(AtomicOrdering::Relaxed)
                .to_string(),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nWith readahead the scan's device reads happen off the request path: the \
         foreground reads become cache hits (§4.3.2's host-side prefetch).\n",
    );
    out
}

/// Renders every ablation.
pub fn run_all() -> String {
    let mut out = String::from("# Solros-rs — design ablations\n");
    for (title, body) in [
        ("D1 — combining threshold", combining_threshold()),
        ("D3 — adaptive copy threshold", adaptive_threshold()),
        ("D4 — master ring placement", master_placement()),
        ("D5 — P2P vs buffered path decision", path_decision()),
        ("D6 — NVMe command coalescing", nvme_coalescing()),
        (
            "D7 — buffered-path readahead (§4.3.2 prefetch)",
            readahead(),
        ),
        (
            "D8 — single-thread event dispatcher",
            dispatcher_saturation(),
        ),
    ] {
        out.push_str(&format!("\n## {title}\n\n"));
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_quarters_interrupts() {
        let r = nvme_coalescing();
        assert!(r.contains("| vectored (Solros) | 1 | 1 |"), "{r}");
        assert!(r.contains("| per-command | 4 | 4 |"), "{r}");
    }

    #[test]
    fn paper_threshold_is_near_optimal() {
        let m = CostModel::paper_default();
        let sizes: [u64; 6] = [64, 512, 2 << 10, 8 << 10, 64 << 10, 1 << 20];
        let mean = |thr: u64| {
            let mut m = m.clone();
            m.host_adaptive_threshold = thr;
            sizes
                .iter()
                .map(|&s| m.adaptive_time(Side::Host, s).as_secs_f64())
                .sum::<f64>()
        };
        let paper = mean(1 << 10);
        // The paper's 1 KB choice is within 25% of every swept alternative
        // and strictly better than the extreme ones.
        assert!(paper <= mean(64 << 10), "64K threshold worse");
        assert!(paper <= mean(256) * 1.25, "256B not much better");
    }

    #[test]
    fn placement_at_sender_reduces_sender_push_traffic() {
        let r = master_placement();
        // The receiver-side master forces line writes from the sender.
        let lines: Vec<&str> = r.lines().collect();
        let sender_row = lines.iter().find(|l| l.contains("sender (paper)")).unwrap();
        let recv_row = lines.iter().find(|l| l.contains("| receiver |")).unwrap();
        let write_lines =
            |row: &str| -> u64 { row.split('|').nth(3).unwrap().trim().parse().unwrap() };
        assert_eq!(write_lines(sender_row), 0, "{r}");
        assert!(write_lines(recv_row) > 0, "{r}");
    }

    #[test]
    fn readahead_converts_misses_to_hits() {
        let r = readahead();
        let hits = |needle: &str| -> u64 {
            r.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split('|').nth(2))
                .and_then(|c| c.trim().parse().ok())
                .unwrap_or(u64::MAX)
        };
        assert_eq!(hits("| off |"), 0, "{r}");
        assert!(hits("8 pages") >= 40, "{r}");
    }

    #[test]
    fn threshold_one_publishes_most() {
        let r = combining_threshold();
        // Rendered table exists with all sweep points.
        for th in ["| 1 |", "| 64 |", "| 256 |"] {
            assert!(r.contains(th), "{r}");
        }
    }
}
