//! Benchmark harness regenerating every table and figure of the Solros
//! paper's evaluation (§6).
//!
//! Each `figs::figXX` module regenerates one figure/table as a markdown
//! report (the same rows/series the paper plots) and carries unit tests
//! asserting the *shape* claims — who wins, by roughly what factor, where
//! crossovers fall. The `src/bin/` wrappers print individual reports;
//! `run_all` emits the whole evaluation in one pass (this is what
//! `EXPERIMENTS.md` records).
//!
//! Absolute numbers come from the calibrated simulation models
//! (`solros-pcie`, `solros-nvme`, `solros-netdev`, `solros-baseline`) and
//! from *functional* runs of the real transport/FS/network code with PCIe
//! transaction accounting; they are not expected to match the paper's
//! testbed measurements exactly, only to preserve its relationships.

pub mod ablations;
pub mod extensions;
pub mod figs;
pub mod model;

/// Runs every experiment and returns the combined markdown report.
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str("# Solros-rs — regenerated evaluation\n");
    for (name, f) in figs::ALL {
        out.push_str(&format!("\n## {name}\n\n"));
        out.push_str(&f());
    }
    out
}
