//! Benchmark harness regenerating every table and figure of the Solros
//! paper's evaluation (§6).
//!
//! Each `figs::figXX` module regenerates one figure/table as a markdown
//! report (the same rows/series the paper plots) and carries unit tests
//! asserting the *shape* claims — who wins, by roughly what factor, where
//! crossovers fall. The `src/bin/` wrappers print individual reports;
//! `run_all` emits the whole evaluation in one pass (this is what
//! `EXPERIMENTS.md` records).
//!
//! Absolute numbers come from the calibrated simulation models
//! (`solros-pcie`, `solros-nvme`, `solros-netdev`, `solros-baseline`) and
//! from *functional* runs of the real transport/FS/network code with PCIe
//! transaction accounting; they are not expected to match the paper's
//! testbed measurements exactly, only to preserve its relationships.

pub mod ablations;
pub mod extensions;
pub mod figs;
pub mod model;

/// Heap-allocation probe backing the zero-alloc regression gate on the
/// QoS admission hot path (E10). A thin counting wrapper over the system
/// allocator: every `alloc`/`realloc`/`alloc_zeroed` bumps one relaxed
/// atomic, so `allocs()` deltas around a single-threaded measured window
/// count exactly the allocations that window performed.
pub mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counting wrapper over [`System`]; installed as the bench
    /// harness's global allocator.
    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System` unchanged; the counter
    // is a side effect only.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }

    /// Heap allocations performed since process start (all threads).
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static GLOBAL_ALLOC: alloc_probe::CountingAlloc = alloc_probe::CountingAlloc;

/// Runs every experiment and returns the combined markdown report.
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str("# Solros-rs — regenerated evaluation\n");
    for (name, f) in figs::ALL {
        out.push_str(&format!("\n## {name}\n\n"));
        out.push_str(&f());
    }
    out
}
