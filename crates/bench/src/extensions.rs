//! Extension experiments beyond the paper's figures.
//!
//! * [`latency_under_load`] — the paper measures unloaded ping-pong
//!   latency (Figure 1b); here a discrete-event M/D/1-style simulation
//!   sweeps offered load and shows *where each stack's tail collapses*:
//!   the stock Phi saturates an order of magnitude earlier than Solros.
//! * [`shared_cache`] — §4.3.2's shared-something claim, quantified: when
//!   several co-processors read a Zipf-popular working set, the host-side
//!   cache that one card warmed serves the others.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::Table;
use solros_simkit::{DetRng, Engine, FifoResource, Histogram, SimTime};

/// Simulates `n` Poisson arrivals of 64-byte requests at `rate` req/s
/// through one server of the given stack; returns the latency histogram.
pub fn simulate_loaded(stack: StackKind, rate: f64, n: usize, seed: u64) -> Histogram {
    let perf = NetPerf::paper_default();
    // Server-side processing is half a ping-pong pass; the wire and
    // client side add a fixed offset that does not queue.
    let service = perf.stack_time(stack, 64) / 2;
    let fixed = perf.wire_time(64) * 2;

    let mut engine = Engine::new();
    let server = Rc::new(RefCell::new(FifoResource::new("stack")));
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let mut rng = DetRng::seed(seed);

    let mut at = SimTime::ZERO;
    for _ in 0..n {
        at += SimTime::from_secs_f64(rng.exp(1.0 / rate));
        let server = Rc::clone(&server);
        let hist = Rc::clone(&hist);
        engine.schedule_at(at, move |engine, now| {
            let done = server.borrow_mut().acquire(now, service);
            let hist = Rc::clone(&hist);
            engine.schedule_at(done, move |_, finished| {
                hist.borrow_mut().record(finished - now + fixed);
            });
        });
    }
    engine.run();
    Rc::try_unwrap(hist)
        .ok()
        .expect("engine drained")
        .into_inner()
}

/// Extension E1: p99 latency vs offered load for the three stacks.
pub fn latency_under_load() -> String {
    let mut t = Table::new(vec![
        "offered load (kreq/s)",
        "Host p99 (us)",
        "Phi-Solros p99 (us)",
        "Phi-Linux p99 (us)",
    ]);
    let n = 8_000;
    for rate_k in [1.0f64, 5.0, 10.0, 13.0, 25.0, 50.0] {
        let mut row = vec![format!("{rate_k}")];
        for stack in [StackKind::Host, StackKind::Solros, StackKind::PhiLinux] {
            let h = simulate_loaded(stack, rate_k * 1e3, n, 42);
            let p99 = h.percentile(99.0);
            // Past saturation the queue grows without bound; report that
            // honestly instead of a meaningless number.
            let perf = NetPerf::paper_default();
            let cap = 2.0 / perf.stack_time(stack, 64).as_secs_f64();
            row.push(if rate_k * 1e3 >= cap {
                "saturated".into()
            } else {
                format!("{:.0}", p99.as_us_f64())
            });
        }
        t.row(row);
    }
    let mut out = t.to_markdown();
    let perf = NetPerf::paper_default();
    out.push_str(&format!(
        "\nService capacities: Host ≈ {:.0}k, Solros ≈ {:.0}k, Phi-Linux ≈ {:.0}k req/s — \
         delegating the stack to the host buys an order of magnitude of headroom \
         before the tail collapses.\n",
        2.0 / perf.stack_time(StackKind::Host, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::Solros, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::PhiLinux, 64).as_secs_f64() / 1e3,
    ));
    out
}

/// Extension E2: the shared host-side buffer cache across co-processors
/// (functional run on the real system).
pub fn shared_cache() -> String {
    use solros::control::Solros;
    use solros_machine::MachineConfig;

    let files = 40usize;
    let file_bytes = 64 * 1024usize;
    let reads_per_cp = 120usize;

    let run = |coprocs: usize| -> (f64, u64, u64) {
        let sys = Solros::boot(MachineConfig {
            sockets: 1, // Same socket: P2P allowed, so hits are real wins.
            coprocs,
            ssd_blocks: 16_384,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: files * file_bytes / 4096 + 64,
        });
        // Populate via the host view, then drop every cached page so all
        // warming comes from the measured reads.
        let host = sys.host_fs();
        let mut inos = Vec::new();
        for f in 0..files {
            let ino = host.create(&format!("/lib{f}")).unwrap();
            host.write(ino, 0, &vec![f as u8; file_bytes]).unwrap();
            inos.push(ino);
        }
        for &ino in &inos {
            host.cache().invalidate_ino(ino);
        }
        let h0 = host.cache().stats().hits;
        let m0 = host.cache().stats().misses;
        std::thread::scope(|s| {
            for cp in 0..coprocs {
                let fs = Arc::clone(sys.data_plane(cp).fs());
                s.spawn(move || {
                    let mut rng = DetRng::seed(cp as u64);
                    for _ in 0..reads_per_cp {
                        let f = rng.zipf(files, 0.9);
                        let (h, _) = fs.open(&format!("/lib{f}"), false, false, true).unwrap();
                        let _ = fs.read_to_vec(h, 0, file_bytes).unwrap();
                    }
                });
            }
        });
        let hits = host.cache().stats().hits - h0;
        let misses = host.cache().stats().misses - m0;
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        let dev_reads = sys.machine().nvme.stats().blocks_read;
        sys.shutdown();
        (rate, hits, dev_reads)
    };

    let mut t = Table::new(vec![
        "co-processors",
        "cache hit rate",
        "hits",
        "device blocks read",
    ]);
    for n in [1usize, 2, 4] {
        let (rate, hits, dev) = run(n);
        t.row(vec![
            n.to_string(),
            format!("{:.1}%", rate * 100.0),
            hits.to_string(),
            dev.to_string(),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nEvery co-processor reads the same Zipf-popular library (O_BUFFER path). \
         More cards share one host cache, so the hit rate climbs while device \
         reads per delivered byte fall — the shared-something architecture of §4.\n",
    );
    out
}

/// One overload run: how the victim fares for a given flood window.
pub struct OverloadOutcome {
    /// Victim 99th-percentile request latency (queueing + service), µs.
    pub victim_p99_us: f64,
    /// Victim goodput in MB/s (demand is ~82 MB/s).
    pub victim_mbps: f64,
    /// Aggressor goodput in MB/s.
    pub aggr_mbps: f64,
    /// Requests shed by the gate (0 when QoS is off: FIFO never sheds).
    pub shed: u64,
}

/// Replays the overload scenario on a virtual clock: a victim issues
/// paced 4 KiB reads (20 kops/s ≈ 82 MB/s) while an aggressor
/// co-processor floods 256 KiB reads with `aggr_window` outstanding,
/// both against one 1 GB/s service point. With `qos_on` the requests
/// pass through a weighted DWRR gate (victim weight 8, aggressor 1,
/// aggressor sheddable past the overload threshold); without it they
/// share one FIFO queue, which is exactly what the seed's proxies do.
///
/// Entirely deterministic: no RNG, no wall clock.
pub fn simulate_overload(qos_on: bool, aggr_window: usize) -> OverloadOutcome {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, Verdict};

    const VICTIM_BYTES: u64 = 4 * 1024;
    const AGGR_BYTES: u64 = 256 * 1024;
    const VICTIM_PERIOD_NS: u64 = 50_000; // 20 kops/s paced.
    const DURATION_NS: u64 = 400_000_000; // 400 ms of virtual time.
    const QUANTUM: u64 = 64 * 1024;

    let open = |name: &str, class: QosClass, weight: u32| FlowSpec {
        name: name.to_string(),
        class,
        weight,
        ops_per_sec: 0,
        bytes_per_sec: 0,
        burst_ops: 0,
        burst_bytes: 0,
        queue_cap: usize::MAX,
        deadline_ns: 0,
        sheddable: false,
        tenant: 0,
    };
    // QoS off: one shared FIFO flow, unbounded — the pass-through proxy.
    // QoS on: victim in Normal (weight 8), aggressor best-effort
    // (weight 1) and sheddable once the gate sees overload.
    let (specs, threshold) = if qos_on {
        (
            vec![
                open("victim", QosClass::Normal, 8),
                FlowSpec {
                    sheddable: true,
                    ..open("aggressor", QosClass::BestEffort, 1)
                },
            ],
            96,
        )
    } else {
        (vec![open("fifo", QosClass::Normal, 1)], usize::MAX)
    };
    let (victim_flow, aggr_flow) = if qos_on { (0, 1) } else { (0, 0) };
    let mut gate: DwrrScheduler<bool> = DwrrScheduler::new(specs, QUANTUM, threshold);

    let mut now = 0u64;
    let mut next_victim = 0u64;
    let mut aggr_outstanding = 0usize;
    let mut hist = Histogram::new();
    let mut victim_bytes = 0u64;
    let mut aggr_bytes = 0u64;
    let mut shed = 0u64;
    while now < DURATION_NS {
        while next_victim <= now {
            if let Verdict::Shed { .. } = gate.submit(victim_flow, VICTIM_BYTES, next_victim, true)
            {
                shed += 1;
            }
            next_victim += VICTIM_PERIOD_NS;
        }
        // Closed-loop flood: keep `aggr_window` requests outstanding.
        while aggr_outstanding < aggr_window {
            match gate.submit(aggr_flow, AGGR_BYTES, now, false) {
                Verdict::Admitted => aggr_outstanding += 1,
                Verdict::Shed { .. } => {
                    shed += 1;
                    break; // The gate is shedding; retry after progress.
                }
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run {
                item: is_victim,
                wait_ns,
                ..
            } => {
                let bytes = if is_victim { VICTIM_BYTES } else { AGGR_BYTES };
                now += bytes; // 1 byte/ns = 1 GB/s service point.
                if is_victim {
                    hist.record(SimTime::from_ns(wait_ns + bytes));
                    victim_bytes += bytes;
                } else {
                    aggr_bytes += bytes;
                    aggr_outstanding -= 1;
                }
            }
            Dispatch::Shed {
                item: is_victim, ..
            } => {
                shed += 1;
                if !is_victim {
                    aggr_outstanding -= 1;
                }
            }
            Dispatch::Idle => now = next_victim.max(now + 1),
        }
    }
    let secs = DURATION_NS as f64 / 1e9;
    OverloadOutcome {
        victim_p99_us: hist.percentile(99.0).as_us_f64(),
        victim_mbps: victim_bytes as f64 / 1e6 / secs,
        aggr_mbps: aggr_bytes as f64 / 1e6 / secs,
        shed,
    }
}

/// Byte share each backlogged flow obtains when all of them flood the
/// gate, normalised so the shares sum to 1. Compare against
/// `weight / Σweights`: DWRR should track it within a few percent.
pub fn simulate_weighted_shares(weights: &[u32]) -> Vec<f64> {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, Verdict};

    const COST: u64 = 64 * 1024;
    const DURATION_NS: u64 = 200_000_000;
    let specs = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| FlowSpec {
            name: format!("tenant{i}"),
            class: QosClass::Normal,
            weight: w,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: usize::MAX,
            deadline_ns: 0,
            sheddable: false,
            tenant: 0,
        })
        .collect();
    let mut gate: DwrrScheduler<usize> = DwrrScheduler::new(specs, COST, usize::MAX);
    let mut done = vec![0u64; weights.len()];
    let mut now = 0u64;
    while now < DURATION_NS {
        for f in 0..weights.len() {
            while gate.queued(f) < 4 {
                assert!(matches!(gate.submit(f, COST, now, f), Verdict::Admitted));
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run { item, .. } => {
                done[item] += COST;
                now += COST;
            }
            _ => unreachable!("backlogged open flows always dispatch"),
        }
    }
    let total: u64 = done.iter().sum();
    done.iter().map(|&b| b as f64 / total as f64).collect()
}

/// Extension E3: QoS gate under overload — the victim's tail and
/// goodput with the gate on vs. off, swept over flood intensity.
pub fn qos_overload() -> String {
    let mut t = Table::new(vec![
        "aggressor window",
        "off: victim p99 (us)",
        "off: victim MB/s",
        "on: victim p99 (us)",
        "on: victim MB/s",
        "on: aggressor MB/s",
        "on: shed",
    ]);
    for window in [4usize, 16, 64, 256] {
        let off = simulate_overload(false, window);
        let on = simulate_overload(true, window);
        t.row(vec![
            window.to_string(),
            format!("{:.0}", off.victim_p99_us),
            format!("{:.1}", off.victim_mbps),
            format!("{:.0}", on.victim_p99_us),
            format!("{:.1}", on.victim_mbps),
            format!("{:.1}", on.aggr_mbps),
            on.shed.to_string(),
        ]);
    }
    let mut out = t.to_markdown();

    let weights = [8u32, 4, 1];
    let shares = simulate_weighted_shares(&weights);
    let total: u32 = weights.iter().sum();
    let mut st = Table::new(vec!["tenant", "weight", "target share", "achieved share"]);
    for (i, (&w, &s)) in weights.iter().zip(shares.iter()).enumerate() {
        st.row(vec![
            format!("tenant{i}"),
            w.to_string(),
            format!("{:.1}%", 100.0 * w as f64 / total as f64),
            format!("{:.1}%", 100.0 * s),
        ]);
    }
    out.push_str("\nWeighted sharing under full backlog:\n\n");
    out.push_str(&st.to_markdown());
    out.push_str(
        "\nWithout the gate the victim's tail scales with the aggressor's \
         outstanding window — every paced 4 KiB read waits behind megabytes \
         of FIFO backlog. With the DWRR gate the victim's p99 stays bounded \
         (a few quanta of interleaving) at full goodput, the aggressor is \
         throttled to the leftover share, and overload is shed explicitly \
         (EAGAIN-style `Overloaded`, never silent drops). Backlogged tenants \
         obtain byte shares tracking their weights.\n",
    );
    out
}

/// One point of the E4 queue-depth sweep.
pub struct DepthPoint {
    /// Submission-queue depth (ops in flight from the one thread).
    pub depth: usize,
    /// Random-read throughput, MB/s.
    pub mbps: f64,
    /// 99th-percentile per-op completion latency, µs.
    pub p99_us: f64,
    /// NVMe doorbell rings per completed read.
    pub doorbells_per_op: f64,
    /// NVMe interrupts per completed read.
    pub interrupts_per_op: f64,
}

/// Single-thread random 4 KiB reads at each queue depth against a real
/// booted system (one co-processor, direct/P2P path). Each wave of
/// `depth` reads goes through the submission pipeline as one [`Batch`];
/// the proxy drains the whole wave from the request ring and coalesces
/// its NVMe commands into one vectored submission — one doorbell, one
/// interrupt — which is why doorbells/op collapse as depth grows
/// (the paper's Fig. 11 effect, here across *calls*, not just extents).
///
/// [`Batch`]: solros::fs_api::Batch
pub fn sweep_queue_depth(depths: &[usize], ops: usize) -> Vec<DepthPoint> {
    use solros::control::Solros;
    use solros_machine::MachineConfig;

    const READ: usize = 4096;
    const FILE_BYTES: u64 = 8 << 20;

    depths
        .iter()
        .map(|&depth| {
            let sys = Solros::boot(MachineConfig {
                sockets: 1,
                coprocs: 1,
                ssd_blocks: 16_384,
                coproc_window_bytes: 8 << 20,
                host_cache_pages: 64,
            });
            // Populate via the host view, then drop the cached pages so
            // every measured read really crosses to the device.
            let host = sys.host_fs();
            let ino = host.create("/data").unwrap();
            let chunk = vec![0xa5u8; 256 * 1024];
            let mut off = 0u64;
            while off < FILE_BYTES {
                host.write(ino, off, &chunk).unwrap();
                off += chunk.len() as u64;
            }
            host.cache().invalidate_ino(ino);

            let fs = Arc::clone(sys.data_plane(0).fs());
            let (h, size) = fs.open("/data", false, false, false).unwrap();
            assert_eq!(size, FILE_BYTES);
            let blocks = FILE_BYTES / READ as u64;
            let mut rng = DetRng::seed(0xE4);

            // One warm-up wave absorbs first-touch costs (thread wakeups,
            // allocator) outside the measured window.
            let mut warm = fs.batch();
            for _ in 0..depth {
                warm = warm.read(h, rng.below(blocks) * READ as u64, READ);
            }
            for r in warm.run() {
                assert_eq!(r.into_read().len(), READ);
            }

            let d0 = sys.machine().nvme.stats();
            let mut lat = Histogram::new();
            let t0 = std::time::Instant::now();
            let mut done = 0usize;
            while done < ops {
                let wave = depth.min(ops - done);
                let w0 = std::time::Instant::now();
                let mut b = fs.batch();
                for _ in 0..wave {
                    b = b.read(h, rng.below(blocks) * READ as u64, READ);
                }
                for r in b.run() {
                    assert_eq!(r.into_read().len(), READ);
                }
                // Every op in the wave completes by the wave's end; its
                // per-op latency is the wave's wall time.
                let dt = SimTime::from_ns(w0.elapsed().as_nanos() as u64);
                for _ in 0..wave {
                    lat.record(dt);
                }
                done += wave;
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let d1 = sys.machine().nvme.stats();
            sys.shutdown();

            DepthPoint {
                depth,
                mbps: (ops * READ) as f64 / elapsed / 1e6,
                p99_us: lat.percentile(99.0).as_us_f64(),
                doorbells_per_op: (d1.doorbells - d0.doorbells) as f64 / ops as f64,
                interrupts_per_op: (d1.interrupts - d0.interrupts) as f64 / ops as f64,
            }
        })
        .collect()
}

/// E4 — submission-pipeline scaling: throughput and tail vs queue depth.
pub fn queue_depth() -> String {
    let points = sweep_queue_depth(&[1, 2, 4, 8, 16, 32, 64], 384);
    let base = points[0].mbps;
    let mut t = Table::new(vec![
        "queue depth",
        "MB/s",
        "speedup",
        "p99 (us)",
        "doorbells/op",
        "interrupts/op",
    ]);
    for p in &points {
        t.row(vec![
            p.depth.to_string(),
            format!("{:.1}", p.mbps),
            format!("{:.2}x", p.mbps / base),
            format!("{:.0}", p.p99_us),
            format!("{:.3}", p.doorbells_per_op),
            format!("{:.3}", p.interrupts_per_op),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nOne thread, random aligned 4 KiB direct reads. Deeper submission \
         queues amortize the ring round trip and let the fs proxy coalesce \
         the whole wave into a single vectored NVMe submission: doorbells \
         and interrupts per op fall toward 1/depth while throughput climbs, \
         the cross-call generalization of the paper's Fig. 11 batching.\n",
    );
    out
}

/// Renders all extensions.
pub fn run_all() -> String {
    let mut out = String::from("# Solros-rs — extension experiments\n");
    for (title, body) in [
        ("E1 — TCP latency under load (DES)", latency_under_load()),
        (
            "E2 — shared host cache across co-processors",
            shared_cache(),
        ),
        ("E3 — QoS gate under overload", qos_overload()),
        ("E4 — submission pipeline vs queue depth", queue_depth()),
    ] {
        out.push_str(&format!("\n## {title}\n\n"));
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_hurts_the_slow_stack_first() {
        // At 10 kreq/s the Phi stack runs at ~70% utilization and its tail
        // inflates; Solros at the same load barely queues.
        let solros = simulate_loaded(StackKind::Solros, 10e3, 6_000, 1);
        let phi = simulate_loaded(StackKind::PhiLinux, 10e3, 6_000, 1);
        let s99 = solros.percentile(99.0).as_us_f64();
        let p99 = phi.percentile(99.0).as_us_f64();
        assert!(p99 > 4.0 * s99, "phi p99 {p99} vs solros {s99}");
        // And at light load the gap is just the service-time gap (<~8x).
        let solros_light = simulate_loaded(StackKind::Solros, 1e3, 6_000, 1);
        let phi_light = simulate_loaded(StackKind::PhiLinux, 1e3, 6_000, 1);
        let ratio_light =
            phi_light.percentile(99.0).as_us_f64() / solros_light.percentile(99.0).as_us_f64();
        assert!(ratio_light < 8.0, "light-load ratio {ratio_light}");
    }

    #[test]
    fn deterministic_simulation() {
        let a = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        let b = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn qos_bounds_victim_tail_under_flood() {
        let off = simulate_overload(false, 64);
        let on = simulate_overload(true, 64);
        // FIFO: the victim waits behind tens of MB of backlog.
        assert!(
            off.victim_p99_us > 4_000.0,
            "fifo should collapse: {:.0}us",
            off.victim_p99_us
        );
        // Gate: bounded by a few quanta of interleaving.
        assert!(
            on.victim_p99_us < 1_000.0,
            "gated p99 {:.0}us not bounded",
            on.victim_p99_us
        );
        // The victim's paced demand (~82 MB/s) is fully served.
        assert!(
            on.victim_mbps > 78.0,
            "victim goodput {:.1}",
            on.victim_mbps
        );
        // The aggressor still gets the leftover capacity, and overload
        // was shed explicitly rather than silently queued forever.
        assert!(
            on.aggr_mbps > 500.0,
            "aggressor starved: {:.1}",
            on.aggr_mbps
        );
        let heavy = simulate_overload(true, 256);
        assert!(heavy.shed > 0, "overload shedding never triggered");
    }

    #[test]
    fn dwrr_shares_track_weights_within_10_percent() {
        let weights = [8u32, 4, 1];
        let total: u32 = weights.iter().sum();
        for (&w, &s) in weights
            .iter()
            .zip(simulate_weighted_shares(&weights).iter())
        {
            let target = w as f64 / total as f64;
            let err = (s - target).abs() / target;
            assert!(err < 0.10, "weight {w}: share {s:.3} vs target {target:.3}");
        }
    }

    #[test]
    fn overload_simulation_is_deterministic() {
        let a = simulate_overload(true, 64);
        let b = simulate_overload(true, 64);
        assert_eq!(a.victim_p99_us, b.victim_p99_us);
        assert_eq!(a.shed, b.shed);
    }

    #[test]
    fn queue_depth_pipelining_scales_throughput() {
        let pts = sweep_queue_depth(&[1, 32], 256);
        let (qd1, qd32) = (&pts[0], &pts[1]);
        assert!(
            qd32.mbps >= 3.0 * qd1.mbps,
            "QD32 {:.1} MB/s vs QD1 {:.1} MB/s: pipelining gained < 3x",
            qd32.mbps,
            qd1.mbps
        );
        // The proxy coalesces each wave into one vectored submission, so
        // doorbells and interrupts per op must collapse with depth.
        assert!(
            qd32.doorbells_per_op < 0.5 * qd1.doorbells_per_op,
            "doorbells/op {:.3} vs {:.3}",
            qd32.doorbells_per_op,
            qd1.doorbells_per_op
        );
        assert!(
            qd32.interrupts_per_op < 0.5 * qd1.interrupts_per_op,
            "interrupts/op {:.3} vs {:.3}",
            qd32.interrupts_per_op,
            qd1.interrupts_per_op
        );
    }

    #[test]
    fn cache_sharing_scales_hit_rate() {
        // Run the small/large comparison directly (4-card boot is cheap).
        let report = shared_cache();
        assert!(report.contains("| 4 |"), "{report}");
        // Parse hit rates and check monotonic improvement 1 -> 4 cards.
        let rate = |n: &str| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with(&format!("| {n} |")))
                .and_then(|l| l.split('|').nth(2))
                .map(|c| c.trim().trim_end_matches('%').parse().unwrap())
                .unwrap()
        };
        assert!(
            rate("4") > rate("1"),
            "sharing should raise the hit rate: {report}"
        );
    }
}
