//! Extension experiments beyond the paper's figures.
//!
//! * [`latency_under_load`] — the paper measures unloaded ping-pong
//!   latency (Figure 1b); here a discrete-event M/D/1-style simulation
//!   sweeps offered load and shows *where each stack's tail collapses*:
//!   the stock Phi saturates an order of magnitude earlier than Solros.
//! * [`shared_cache`] — §4.3.2's shared-something claim, quantified: when
//!   several co-processors read a Zipf-popular working set, the host-side
//!   cache that one card warmed serves the others.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use solros_faults::{FaultKind, FaultPlan, RecoveryReport};
use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_qos::FlowSnapshot;
use solros_simkit::report::Table;
use solros_simkit::{DetRng, Engine, FifoResource, Histogram, SimTime};

/// Simulates `n` Poisson arrivals of 64-byte requests at `rate` req/s
/// through one server of the given stack; returns the latency histogram.
pub fn simulate_loaded(stack: StackKind, rate: f64, n: usize, seed: u64) -> Histogram {
    let perf = NetPerf::paper_default();
    // Server-side processing is half a ping-pong pass; the wire and
    // client side add a fixed offset that does not queue.
    let service = perf.stack_time(stack, 64) / 2;
    let fixed = perf.wire_time(64) * 2;

    let mut engine = Engine::new();
    let server = Rc::new(RefCell::new(FifoResource::new("stack")));
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let mut rng = DetRng::seed(seed);

    let mut at = SimTime::ZERO;
    for _ in 0..n {
        at += SimTime::from_secs_f64(rng.exp(1.0 / rate));
        let server = Rc::clone(&server);
        let hist = Rc::clone(&hist);
        engine.schedule_at(at, move |engine, now| {
            let done = server.borrow_mut().acquire(now, service);
            let hist = Rc::clone(&hist);
            engine.schedule_at(done, move |_, finished| {
                hist.borrow_mut().record(finished - now + fixed);
            });
        });
    }
    engine.run();
    Rc::try_unwrap(hist)
        .ok()
        .expect("engine drained")
        .into_inner()
}

/// Extension E1: p99 latency vs offered load for the three stacks.
pub fn latency_under_load() -> String {
    let mut t = Table::new(vec![
        "offered load (kreq/s)",
        "Host p99 (us)",
        "Phi-Solros p99 (us)",
        "Phi-Linux p99 (us)",
    ]);
    let n = 8_000;
    for rate_k in [1.0f64, 5.0, 10.0, 13.0, 25.0, 50.0] {
        let mut row = vec![format!("{rate_k}")];
        for stack in [StackKind::Host, StackKind::Solros, StackKind::PhiLinux] {
            let h = simulate_loaded(stack, rate_k * 1e3, n, 42);
            let p99 = h.percentile(99.0);
            // Past saturation the queue grows without bound; report that
            // honestly instead of a meaningless number.
            let perf = NetPerf::paper_default();
            let cap = 2.0 / perf.stack_time(stack, 64).as_secs_f64();
            row.push(if rate_k * 1e3 >= cap {
                "saturated".into()
            } else {
                format!("{:.0}", p99.as_us_f64())
            });
        }
        t.row(row);
    }
    let mut out = t.to_markdown();
    let perf = NetPerf::paper_default();
    out.push_str(&format!(
        "\nService capacities: Host ≈ {:.0}k, Solros ≈ {:.0}k, Phi-Linux ≈ {:.0}k req/s — \
         delegating the stack to the host buys an order of magnitude of headroom \
         before the tail collapses.\n",
        2.0 / perf.stack_time(StackKind::Host, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::Solros, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::PhiLinux, 64).as_secs_f64() / 1e3,
    ));
    out
}

/// Extension E2: the shared host-side buffer cache across co-processors
/// (functional run on the real system).
pub fn shared_cache() -> String {
    use solros::control::Solros;
    use solros_machine::MachineConfig;

    let files = 40usize;
    let file_bytes = 64 * 1024usize;
    let reads_per_cp = 120usize;

    let run = |coprocs: usize| -> (f64, u64, u64) {
        let sys = Solros::boot(MachineConfig {
            sockets: 1, // Same socket: P2P allowed, so hits are real wins.
            coprocs,
            ssd_blocks: 16_384,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: files * file_bytes / 4096 + 64,
        });
        // Populate via the host view, then drop every cached page so all
        // warming comes from the measured reads.
        let host = sys.host_fs();
        let mut inos = Vec::new();
        for f in 0..files {
            let ino = host.create(&format!("/lib{f}")).unwrap();
            host.write(ino, 0, &vec![f as u8; file_bytes]).unwrap();
            inos.push(ino);
        }
        for &ino in &inos {
            host.cache().invalidate_ino(ino);
        }
        let h0 = host.cache().stats().hits;
        let m0 = host.cache().stats().misses;
        std::thread::scope(|s| {
            for cp in 0..coprocs {
                let fs = Arc::clone(sys.data_plane(cp).fs());
                s.spawn(move || {
                    let mut rng = DetRng::seed(cp as u64);
                    for _ in 0..reads_per_cp {
                        let f = rng.zipf(files, 0.9);
                        let (h, _) = fs.open(&format!("/lib{f}"), false, false, true).unwrap();
                        let _ = fs.read_to_vec(h, 0, file_bytes).unwrap();
                    }
                });
            }
        });
        let hits = host.cache().stats().hits - h0;
        let misses = host.cache().stats().misses - m0;
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        let dev_reads = sys.machine().nvme.stats().blocks_read;
        sys.shutdown();
        (rate, hits, dev_reads)
    };

    let mut t = Table::new(vec![
        "co-processors",
        "cache hit rate",
        "hits",
        "device blocks read",
    ]);
    for n in [1usize, 2, 4] {
        let (rate, hits, dev) = run(n);
        t.row(vec![
            n.to_string(),
            format!("{:.1}%", rate * 100.0),
            hits.to_string(),
            dev.to_string(),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nEvery co-processor reads the same Zipf-popular library (O_BUFFER path). \
         More cards share one host cache, so the hit rate climbs while device \
         reads per delivered byte fall — the shared-something architecture of §4.\n",
    );
    out
}

/// One overload run: how the victim fares for a given flood window.
pub struct OverloadOutcome {
    /// Victim 99th-percentile request latency (queueing + service), µs.
    pub victim_p99_us: f64,
    /// Victim goodput in MB/s (demand is ~82 MB/s).
    pub victim_mbps: f64,
    /// Aggressor goodput in MB/s.
    pub aggr_mbps: f64,
    /// Requests shed by the gate (0 when QoS is off: FIFO never sheds).
    pub shed: u64,
}

/// Replays the overload scenario on a virtual clock: a victim issues
/// paced 4 KiB reads (20 kops/s ≈ 82 MB/s) while an aggressor
/// co-processor floods 256 KiB reads with `aggr_window` outstanding,
/// both against one 1 GB/s service point. With `qos_on` the requests
/// pass through a weighted DWRR gate (victim weight 8, aggressor 1,
/// aggressor sheddable past the overload threshold); without it they
/// share one FIFO queue, which is exactly what the seed's proxies do.
///
/// Entirely deterministic: no RNG, no wall clock.
pub fn simulate_overload(qos_on: bool, aggr_window: usize) -> OverloadOutcome {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, Verdict};

    const VICTIM_BYTES: u64 = 4 * 1024;
    const AGGR_BYTES: u64 = 256 * 1024;
    const VICTIM_PERIOD_NS: u64 = 50_000; // 20 kops/s paced.
    const DURATION_NS: u64 = 400_000_000; // 400 ms of virtual time.
    const QUANTUM: u64 = 64 * 1024;

    let open = |name: &str, class: QosClass, weight: u32| FlowSpec {
        name: name.to_string(),
        class,
        weight,
        ops_per_sec: 0,
        bytes_per_sec: 0,
        burst_ops: 0,
        burst_bytes: 0,
        queue_cap: usize::MAX,
        deadline_ns: 0,
        sheddable: false,
        tenant: 0,
    };
    // QoS off: one shared FIFO flow, unbounded — the pass-through proxy.
    // QoS on: victim in Normal (weight 8), aggressor best-effort
    // (weight 1) and sheddable once the gate sees overload.
    let (specs, threshold) = if qos_on {
        (
            vec![
                open("victim", QosClass::Normal, 8),
                FlowSpec {
                    sheddable: true,
                    ..open("aggressor", QosClass::BestEffort, 1)
                },
            ],
            96,
        )
    } else {
        (vec![open("fifo", QosClass::Normal, 1)], usize::MAX)
    };
    let (victim_flow, aggr_flow) = if qos_on { (0, 1) } else { (0, 0) };
    let mut gate: DwrrScheduler<bool> = DwrrScheduler::new(specs, QUANTUM, threshold);

    let mut now = 0u64;
    let mut next_victim = 0u64;
    let mut aggr_outstanding = 0usize;
    let mut hist = Histogram::new();
    let mut victim_bytes = 0u64;
    let mut aggr_bytes = 0u64;
    let mut shed = 0u64;
    while now < DURATION_NS {
        while next_victim <= now {
            if let Verdict::Shed { .. } = gate.submit(victim_flow, VICTIM_BYTES, next_victim, true)
            {
                shed += 1;
            }
            next_victim += VICTIM_PERIOD_NS;
        }
        // Closed-loop flood: keep `aggr_window` requests outstanding.
        while aggr_outstanding < aggr_window {
            match gate.submit(aggr_flow, AGGR_BYTES, now, false) {
                Verdict::Admitted => aggr_outstanding += 1,
                Verdict::Shed { .. } => {
                    shed += 1;
                    break; // The gate is shedding; retry after progress.
                }
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run {
                item: is_victim,
                wait_ns,
                ..
            } => {
                let bytes = if is_victim { VICTIM_BYTES } else { AGGR_BYTES };
                now += bytes; // 1 byte/ns = 1 GB/s service point.
                if is_victim {
                    hist.record(SimTime::from_ns(wait_ns + bytes));
                    victim_bytes += bytes;
                } else {
                    aggr_bytes += bytes;
                    aggr_outstanding -= 1;
                }
            }
            Dispatch::Shed {
                item: is_victim, ..
            } => {
                shed += 1;
                if !is_victim {
                    aggr_outstanding -= 1;
                }
            }
            Dispatch::Idle => now = next_victim.max(now + 1),
        }
    }
    let secs = DURATION_NS as f64 / 1e9;
    OverloadOutcome {
        victim_p99_us: hist.percentile(99.0).as_us_f64(),
        victim_mbps: victim_bytes as f64 / 1e6 / secs,
        aggr_mbps: aggr_bytes as f64 / 1e6 / secs,
        shed,
    }
}

/// Byte share each backlogged flow obtains when all of them flood the
/// gate, normalised so the shares sum to 1. Compare against
/// `weight / Σweights`: DWRR should track it within a few percent.
pub fn simulate_weighted_shares(weights: &[u32]) -> Vec<f64> {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, Verdict};

    const COST: u64 = 64 * 1024;
    const DURATION_NS: u64 = 200_000_000;
    let specs = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| FlowSpec {
            name: format!("tenant{i}"),
            class: QosClass::Normal,
            weight: w,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: usize::MAX,
            deadline_ns: 0,
            sheddable: false,
            tenant: 0,
        })
        .collect();
    let mut gate: DwrrScheduler<usize> = DwrrScheduler::new(specs, COST, usize::MAX);
    let mut done = vec![0u64; weights.len()];
    let mut now = 0u64;
    while now < DURATION_NS {
        for f in 0..weights.len() {
            while gate.queued(f) < 4 {
                assert!(matches!(gate.submit(f, COST, now, f), Verdict::Admitted));
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run { item, .. } => {
                done[item] += COST;
                now += COST;
            }
            _ => unreachable!("backlogged open flows always dispatch"),
        }
    }
    let total: u64 = done.iter().sum();
    done.iter().map(|&b| b as f64 / total as f64).collect()
}

/// Per-tenant ledger under the canned multi-tenant profile: three
/// tenants share one gate built from [`QosConfig::multi_tenant`], each
/// pinned to one class via the `"name#t<N>"` flow-keying convention.
/// Tenant 0 issues paced small metadata ops (High), tenant 1 paced
/// 4 KiB reads (Normal), tenant 2 a closed-loop 256 KiB bulk flood
/// (BestEffort, sheddable, 2 ms deadline). Entirely deterministic.
///
/// [`QosConfig::multi_tenant`]: solros_qos::QosConfig::multi_tenant
pub fn simulate_multi_tenant() -> Vec<FlowSnapshot> {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, QosConfig, Verdict};

    const SMALL: u64 = 512;
    const DATA: u64 = 4 * 1024;
    const BULK: u64 = 256 * 1024;
    const DURATION_NS: u64 = 200_000_000; // 200 ms of virtual time.

    let cfg = QosConfig::multi_tenant();
    let specs = vec![
        FlowSpec::from_class("meta/high#t0", QosClass::High, cfg.class(QosClass::High)),
        FlowSpec::from_class(
            "data/normal#t1",
            QosClass::Normal,
            cfg.class(QosClass::Normal),
        ),
        FlowSpec::from_class(
            "bulk/best-effort#t2",
            QosClass::BestEffort,
            cfg.class(QosClass::BestEffort),
        ),
    ];
    let mut gate: DwrrScheduler<usize> =
        DwrrScheduler::new(specs, cfg.quantum_bytes, cfg.overload_threshold);

    let mut now = 0u64;
    let mut next_meta = 0u64; // 10 kops/s paced metadata.
    let mut next_data = 0u64; // 20 kops/s paced reads.
    let mut bulk_outstanding = 0usize;
    while now < DURATION_NS {
        while next_meta <= now {
            let _ = gate.submit(0, SMALL, next_meta, 0);
            next_meta += 100_000;
        }
        while next_data <= now {
            let _ = gate.submit(1, DATA, next_data, 1);
            next_data += 50_000;
        }
        while bulk_outstanding < 64 {
            match gate.submit(2, BULK, now, 2) {
                Verdict::Admitted => bulk_outstanding += 1,
                Verdict::Shed { .. } => break,
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run { item, .. } => {
                now += [SMALL, DATA, BULK][item]; // 1 byte/ns service point.
                if item == 2 {
                    bulk_outstanding -= 1;
                }
            }
            Dispatch::Shed { item, .. } => {
                if item == 2 {
                    bulk_outstanding -= 1;
                }
            }
            Dispatch::Idle => now = next_meta.min(next_data).max(now + 1),
        }
    }
    gate.stats().snapshot()
}

/// Renders a per-tenant shed/latency table from a gate's flow snapshots.
fn tenant_table(flows: &[FlowSnapshot]) -> Table {
    let mut t = Table::new(vec![
        "flow",
        "submitted",
        "shed",
        "p99 wait (us)",
        "MB served",
    ]);
    for f in flows {
        t.row(vec![
            f.name.clone(),
            f.submitted.to_string(),
            f.shed.to_string(),
            if f.dispatched == 0 {
                "-".into()
            } else {
                format!("{:.0}", f.wait.percentile(99.0).as_us_f64())
            },
            format!("{:.1}", f.dispatched_bytes as f64 / 1e6),
        ]);
    }
    t
}

/// Extension E3: QoS gate under overload — the victim's tail and
/// goodput with the gate on vs. off, swept over flood intensity.
pub fn qos_overload() -> String {
    let mut t = Table::new(vec![
        "aggressor window",
        "off: victim p99 (us)",
        "off: victim MB/s",
        "on: victim p99 (us)",
        "on: victim MB/s",
        "on: aggressor MB/s",
        "on: shed",
    ]);
    for window in [4usize, 16, 64, 256] {
        let off = simulate_overload(false, window);
        let on = simulate_overload(true, window);
        t.row(vec![
            window.to_string(),
            format!("{:.0}", off.victim_p99_us),
            format!("{:.1}", off.victim_mbps),
            format!("{:.0}", on.victim_p99_us),
            format!("{:.1}", on.victim_mbps),
            format!("{:.1}", on.aggr_mbps),
            on.shed.to_string(),
        ]);
    }
    let mut out = t.to_markdown();

    let weights = [8u32, 4, 1];
    let shares = simulate_weighted_shares(&weights);
    let total: u32 = weights.iter().sum();
    let mut st = Table::new(vec!["tenant", "weight", "target share", "achieved share"]);
    for (i, (&w, &s)) in weights.iter().zip(shares.iter()).enumerate() {
        st.row(vec![
            format!("tenant{i}"),
            w.to_string(),
            format!("{:.1}%", 100.0 * w as f64 / total as f64),
            format!("{:.1}%", 100.0 * s),
        ]);
    }
    out.push_str("\nWeighted sharing under full backlog:\n\n");
    out.push_str(&st.to_markdown());
    out.push_str(
        "\nWithout the gate the victim's tail scales with the aggressor's \
         outstanding window — every paced 4 KiB read waits behind megabytes \
         of FIFO backlog. With the DWRR gate the victim's p99 stays bounded \
         (a few quanta of interleaving) at full goodput, the aggressor is \
         throttled to the leftover share, and overload is shed explicitly \
         (EAGAIN-style `Overloaded`, never silent drops). Backlogged tenants \
         obtain byte shares tracking their weights.\n",
    );

    out.push_str(
        "\nPer-tenant ledger under the canned multi-tenant profile \
         (`QosConfig::multi_tenant`, flows keyed `name#t<N>`):\n\n",
    );
    out.push_str(&tenant_table(&simulate_multi_tenant()).to_markdown());
    out.push_str(
        "\nThree tenants share one gate: paced metadata (t0, High) and \
         paced 4 KiB reads (t1, Normal) ride ahead of a closed-loop bulk \
         flood (t2, BestEffort). The ledger shows the isolation per \
         tenant: the paced tenants shed nothing and keep a bounded tail \
         while every shed lands on the bulk tenant's sheddable class — \
         its 2 ms deadline converts backlog into explicit `Overloaded` \
         replies instead of unbounded queueing.\n",
    );
    out
}

/// E3-engine smoke: the same overload story as [`qos_overload`], but
/// end-to-end through the shared proxy engine on a real booted system
/// rather than against a bare gate. Closed-loop bulk writers flood the
/// best-effort class while a paced victim issues metadata ops and 4 KiB
/// reads through the same engine; the gate criterion is that the paced
/// (High/Normal) flows shed nothing — any shed the ledger charges to a
/// non-sheddable flow is a regression in the engine's admission or
/// settlement path. Returns the rendered report and that paced-shed
/// count (nonzero = fail).
pub fn engine_overload_smoke() -> (String, u64) {
    use solros::control::Solros;
    use solros_machine::MachineConfig;
    use solros_proto::rpc_error::RpcErr;
    use solros_qos::QosConfig;

    const BULK: usize = 512 * 1024; // > the proxy's bulk cutoff: best-effort
    const AGGRESSORS: usize = 3;
    const BULK_WRITES: usize = 40;
    const VICTIM_OPS: usize = 300;

    let sys = Solros::boot_qos(
        MachineConfig {
            sockets: 1,
            coprocs: 1,
            ssd_blocks: 16_384,
            coproc_window_bytes: 8 << 20,
            host_cache_pages: 64,
        },
        QosConfig::enforcing(),
    );
    let fs = Arc::clone(sys.data_plane(0).fs());
    let victim = fs.create("/victim").unwrap();
    fs.write_at(victim, 0, &vec![0x5au8; 64 * 1024]).unwrap();

    let aggressors: Vec<_> = (0..AGGRESSORS)
        .map(|i| {
            let fs = Arc::clone(sys.data_plane(0).fs());
            std::thread::spawn(move || {
                let f = fs.create(&format!("/aggr{i}")).unwrap();
                let chunk = vec![0xa5u8; BULK];
                for _ in 0..BULK_WRITES {
                    // Explicit overload sheds are the design working as
                    // intended for this class; anything else is not.
                    match fs.write_at(f, 0, &chunk) {
                        Ok(_) | Err(RpcErr::Overloaded) => {}
                        Err(e) => panic!("aggressor write failed: {e:?}"),
                    }
                }
            })
        })
        .collect();

    // The paced victim rides the High (metadata) and Normal (4 KiB read)
    // flows; neither is sheddable, so every op must succeed outright.
    let mut victim_wait = Histogram::new();
    for _ in 0..VICTIM_OPS {
        let t0 = Instant::now();
        fs.fstat(victim).expect("victim fstat shed or failed");
        fs.read_to_vec(victim, 0, 4096)
            .expect("victim read shed or failed");
        victim_wait.record(SimTime::from_ns(t0.elapsed().as_nanos() as u64));
        std::thread::yield_now();
    }
    for a in aggressors {
        a.join().unwrap();
    }

    let snaps = sys.fs_qos_stats(0).expect("qos enabled").snapshot();
    sys.shutdown();

    // Deadline sheds on the best-effort class are the design working;
    // a shed charged to any other (non-sheddable) flow is a regression.
    let best = format!("/{}", solros_qos::QosClass::BestEffort.label());
    let paced_shed: u64 = snaps
        .iter()
        .filter(|s| !s.name.ends_with(&best))
        .map(|s| s.shed)
        .sum();
    let mut out = tenant_table(&snaps).to_markdown();
    out.push_str(&format!(
        "\nVictim fstat+read pair p99: {:.0} us over {VICTIM_OPS} pairs \
         against {AGGRESSORS} closed-loop {} KiB bulk writers.\n\
         Sheds charged to paced (non-best-effort) flows: {paced_shed}.\n",
        victim_wait.percentile(99.0).as_us_f64(),
        BULK / 1024,
    ));
    (out, paced_shed)
}

/// One point of the E4 queue-depth sweep.
pub struct DepthPoint {
    /// Submission-queue depth (ops in flight from the one thread).
    pub depth: usize,
    /// Random-read throughput, MB/s.
    pub mbps: f64,
    /// 99th-percentile per-op completion latency, µs.
    pub p99_us: f64,
    /// NVMe doorbell rings per completed read.
    pub doorbells_per_op: f64,
    /// NVMe interrupts per completed read.
    pub interrupts_per_op: f64,
}

/// Single-thread random 4 KiB reads at each queue depth against a real
/// booted system (one co-processor, direct/P2P path). Each wave of
/// `depth` reads goes through the submission pipeline as one [`Batch`];
/// the proxy drains the whole wave from the request ring and coalesces
/// its NVMe commands into one vectored submission — one doorbell, one
/// interrupt — which is why doorbells/op collapse as depth grows
/// (the paper's Fig. 11 effect, here across *calls*, not just extents).
///
/// [`Batch`]: solros::fs_api::Batch
pub fn sweep_queue_depth(depths: &[usize], ops: usize) -> Vec<DepthPoint> {
    use solros::control::Solros;
    use solros_machine::MachineConfig;

    const READ: usize = 4096;
    const FILE_BYTES: u64 = 8 << 20;

    depths
        .iter()
        .map(|&depth| {
            let sys = Solros::boot(MachineConfig {
                sockets: 1,
                coprocs: 1,
                ssd_blocks: 16_384,
                coproc_window_bytes: 8 << 20,
                host_cache_pages: 64,
            });
            // Populate via the host view, then drop the cached pages so
            // every measured read really crosses to the device.
            let host = sys.host_fs();
            let ino = host.create("/data").unwrap();
            let chunk = vec![0xa5u8; 256 * 1024];
            let mut off = 0u64;
            while off < FILE_BYTES {
                host.write(ino, off, &chunk).unwrap();
                off += chunk.len() as u64;
            }
            host.cache().invalidate_ino(ino);

            let fs = Arc::clone(sys.data_plane(0).fs());
            let (h, size) = fs.open("/data", false, false, false).unwrap();
            assert_eq!(size, FILE_BYTES);
            let blocks = FILE_BYTES / READ as u64;
            let mut rng = DetRng::seed(0xE4);

            // One warm-up wave absorbs first-touch costs (thread wakeups,
            // allocator) outside the measured window.
            let mut warm = fs.batch();
            for _ in 0..depth {
                warm = warm.read(h, rng.below(blocks) * READ as u64, READ);
            }
            for r in warm.run() {
                assert_eq!(r.into_read().len(), READ);
            }

            let d0 = sys.machine().nvme.stats();
            let mut lat = Histogram::new();
            let t0 = std::time::Instant::now();
            let mut done = 0usize;
            while done < ops {
                let wave = depth.min(ops - done);
                let w0 = std::time::Instant::now();
                let mut b = fs.batch();
                for _ in 0..wave {
                    b = b.read(h, rng.below(blocks) * READ as u64, READ);
                }
                for r in b.run() {
                    assert_eq!(r.into_read().len(), READ);
                }
                // Every op in the wave completes by the wave's end; its
                // per-op latency is the wave's wall time.
                let dt = SimTime::from_ns(w0.elapsed().as_nanos() as u64);
                for _ in 0..wave {
                    lat.record(dt);
                }
                done += wave;
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let d1 = sys.machine().nvme.stats();
            sys.shutdown();

            DepthPoint {
                depth,
                mbps: (ops * READ) as f64 / elapsed / 1e6,
                p99_us: lat.percentile(99.0).as_us_f64(),
                doorbells_per_op: (d1.doorbells - d0.doorbells) as f64 / ops as f64,
                interrupts_per_op: (d1.interrupts - d0.interrupts) as f64 / ops as f64,
            }
        })
        .collect()
}

/// Per-tenant queue waits as the shared submission depth grows: three
/// tenants (one per class of the multi-tenant profile) each keep `depth`
/// 4 KiB ops outstanding against one 1 GB/s service point behind the
/// gate. Deterministic virtual clock, no RNG.
pub fn simulate_tenant_depth(depth: usize) -> Vec<FlowSnapshot> {
    use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, QosConfig, Verdict};

    const OP: u64 = 4 * 1024;
    const DURATION_NS: u64 = 50_000_000; // 50 ms of virtual time.

    let cfg = QosConfig::multi_tenant();
    let specs = vec![
        FlowSpec::from_class("qd/high#t0", QosClass::High, cfg.class(QosClass::High)),
        FlowSpec::from_class(
            "qd/normal#t1",
            QosClass::Normal,
            cfg.class(QosClass::Normal),
        ),
        FlowSpec::from_class(
            "qd/best-effort#t2",
            QosClass::BestEffort,
            cfg.class(QosClass::BestEffort),
        ),
    ];
    let mut gate: DwrrScheduler<usize> =
        DwrrScheduler::new(specs, cfg.quantum_bytes, cfg.overload_threshold);

    let mut outstanding = [0usize; 3];
    let mut now = 0u64;
    while now < DURATION_NS {
        for (f, slot) in outstanding.iter_mut().enumerate() {
            while *slot < depth {
                match gate.submit(f, OP, now, f) {
                    Verdict::Admitted => *slot += 1,
                    Verdict::Shed { .. } => break,
                }
            }
        }
        match gate.dispatch(now) {
            Dispatch::Run { item, .. } => {
                now += OP;
                outstanding[item] -= 1;
            }
            Dispatch::Shed { item, .. } => outstanding[item] -= 1,
            Dispatch::Idle => now += OP,
        }
    }
    gate.stats().snapshot()
}

/// E4 — submission-pipeline scaling: throughput and tail vs queue depth.
pub fn queue_depth() -> String {
    let points = sweep_queue_depth(&[1, 2, 4, 8, 16, 32, 64], 384);
    let base = points[0].mbps;
    let mut t = Table::new(vec![
        "queue depth",
        "MB/s",
        "speedup",
        "p99 (us)",
        "doorbells/op",
        "interrupts/op",
    ]);
    for p in &points {
        t.row(vec![
            p.depth.to_string(),
            format!("{:.1}", p.mbps),
            format!("{:.2}x", p.mbps / base),
            format!("{:.0}", p.p99_us),
            format!("{:.3}", p.doorbells_per_op),
            format!("{:.3}", p.interrupts_per_op),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nOne thread, random aligned 4 KiB direct reads. Deeper submission \
         queues amortize the ring round trip and let the fs proxy coalesce \
         the whole wave into a single vectored NVMe submission: doorbells \
         and interrupts per op fall toward 1/depth while throughput climbs, \
         the cross-call generalization of the paper's Fig. 11 batching.\n",
    );

    let mut tt = Table::new(vec![
        "shared depth",
        "flow",
        "submitted",
        "shed",
        "p99 wait (us)",
        "MB served",
    ]);
    for depth in [4usize, 16, 64] {
        for f in simulate_tenant_depth(depth) {
            tt.row(vec![
                depth.to_string(),
                f.name.clone(),
                f.submitted.to_string(),
                f.shed.to_string(),
                if f.dispatched == 0 {
                    "-".into()
                } else {
                    format!("{:.0}", f.wait.percentile(99.0).as_us_f64())
                },
                format!("{:.1}", f.dispatched_bytes as f64 / 1e6),
            ]);
        }
    }
    out.push_str(
        "\nPer-tenant waits when three tenants share the pipeline \
         (`QosConfig::multi_tenant`, one class per tenant, each keeping \
         `depth` 4 KiB ops outstanding):\n\n",
    );
    out.push_str(&tt.to_markdown());
    out.push_str(
        "\nDeeper shared queues trade tail for throughput unevenly across \
         tenants: the weighted gate keeps the High tenant's wait nearly \
         flat while the BestEffort tenant absorbs the depth — first as \
         queueing, then past its 2 ms deadline as explicit sheds.\n",
    );
    out
}

/// Outcome of one end-to-end E5 recovery scenario.
pub struct FaultScenario {
    /// Scenario label (fault-kind name or swept fault rate).
    pub name: String,
    /// Recovery ledger; [`RecoveryReport::clean`] is the pass condition.
    pub report: RecoveryReport,
}

/// E5a: random 4 KiB direct reads on a real booted system while a seeded
/// [`FaultPlan`] arms NVMe media/timeout/queue-full bursts. The proxy's
/// shared retry policy must absorb every burst: all reads complete, no
/// error surfaces to the co-processor, goodput stays 1.0.
fn nvme_fault_burst(rate: f64) -> FaultScenario {
    use solros::control::Solros;
    use solros::RetryPolicy;
    use solros_machine::MachineConfig;

    const OPS: u64 = 384;
    const READ: usize = 4096;
    const FILE_BYTES: u64 = 1 << 20;

    let sys = Solros::boot(MachineConfig {
        sockets: 1,
        coprocs: 1,
        ssd_blocks: 4_096,
        coproc_window_bytes: 4 << 20,
        host_cache_pages: 64,
    });
    let host = sys.host_fs();
    let ino = host.create("/e5").unwrap();
    let chunk = vec![0x5au8; 256 * 1024];
    let mut off = 0u64;
    while off < FILE_BYTES {
        host.write(ino, off, &chunk).unwrap();
        off += chunk.len() as u64;
    }
    host.cache().invalidate_ino(ino);

    let fs = Arc::clone(sys.data_plane(0).fs());
    let (h, _) = fs.open("/e5", false, false, false).unwrap();
    let dev = &sys.machine().nvme;
    let fail0 = dev.stats().failures;
    let blocks = FILE_BYTES / READ as u64;
    let plan = FaultPlan::generate(0xE5, OPS, rate);
    let mut rng = DetRng::seed(0xE5);
    let mut report = RecoveryReport::default();
    for op in 0..OPS {
        for ev in plan.due_at(op) {
            match ev.kind {
                FaultKind::NvmeMedia => dev.inject_faults(ev.burst),
                FaultKind::NvmeTimeout => dev.inject_timeouts(ev.burst),
                FaultKind::NvmeQueueFull => dev.inject_queue_full(ev.burst),
                // Other taxonomy entries belong to the link-reset
                // scenarios below; this sweep arms only the NVMe layer.
                _ => continue,
            }
            report.injected += ev.burst;
        }
        let offset = rng.below(blocks) * READ as u64;
        match RetryPolicy::new().run_rpc(|_| fs.read_to_vec(h, offset, READ)) {
            Ok(v) if v.len() == READ => report.completed += 1,
            _ => report.drained += 1,
        }
    }
    report.retried = dev.stats().failures - fail0;
    sys.shutdown();
    FaultScenario {
        name: format!("nvme-burst rate={rate:.2}"),
        report,
    }
}

/// E5b: a co-processor stub crashes with requests in flight. Detection is
/// a [`wait_timeout`] deadline expiring on the quiet link; recovery is
/// *drain → scrub → reset* via [`link_reset`], after which a replacement
/// stub minted from the same rings serves traffic again.
///
/// [`wait_timeout`]: solros::transport::RpcClient::wait_timeout
/// [`link_reset`]: solros::transport::RpcClient::link_reset
fn stub_crash_recovery() -> FaultScenario {
    use solros::transport::{Channel, RpcClient};
    use solros_pcie::counter::PcieCounters;
    use solros_proto::fs_msg::{FsRequest, FsResponse};
    use solros_proto::rpc_error::RpcErr;
    use solros_qos::CreditPool;
    use std::collections::VecDeque;

    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(counters);
    let pool = Arc::new(CreditPool::new(16));
    let client = RpcClient::with_link(
        ch.req_tx,
        ch.resp_rx,
        Some(Arc::clone(&pool)),
        Arc::clone(&ch.req_ring),
        Arc::clone(&ch.resp_ring),
    );
    client.set_error_encoder(|tag, err| FsResponse::Error { err }.encode(tag));

    // A stub that serves three requests, then crashes (exits) with the
    // rest still queued.
    let req_rx = ch.req_rx;
    let resp_tx = ch.resp_tx;
    let stub = std::thread::spawn(move || {
        for _ in 0..3 {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let (tag, _) = FsRequest::decode(&f).unwrap();
            resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
        }
    });

    let mut report = RecoveryReport {
        injected: 1,
        resets: 1,
        ..Default::default()
    };
    let mut tokens: VecDeque<_> = (0..8u64)
        .map(|ino| {
            let tag = client.tag();
            client
                .submit(tag, FsRequest::Fstat { ino }.encode(tag))
                .unwrap()
        })
        .collect();
    // Harvest survivors until a deadline expires on the quiet link — the
    // stub-crash detector.
    let armed = Instant::now();
    while let Some(t) = tokens.pop_front() {
        match client.wait_timeout(t, Duration::from_millis(150)) {
            Ok(_) => report.completed += 1,
            Err(_) => {
                report.detect_ns = armed.elapsed().as_nanos() as u64;
                break;
            }
        }
    }
    stub.join().unwrap();

    // Recover: drain pending tags with error completions, scrub credits,
    // re-initialize the rings, and revive with a replacement stub.
    let recover = Instant::now();
    let reset = client.link_reset(RpcErr::Gone);
    report.drained = reset.drained as u64;
    for t in tokens {
        let reply = client.wait(t);
        let (_, resp) = FsResponse::decode(&reply).unwrap();
        assert_eq!(resp, FsResponse::Error { err: RpcErr::Gone });
    }
    let req_rx = ch.req_ring.consumer();
    let resp_tx = ch.resp_ring.producer();
    let stub2 = std::thread::spawn(move || {
        let f = loop {
            match req_rx.recv() {
                Ok(f) => break f,
                Err(_) => std::thread::yield_now(),
            }
        };
        let (tag, _) = FsRequest::decode(&f).unwrap();
        resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
    });
    let tag = client.tag();
    let reply = client.call(tag, FsRequest::Fsync { ino: 1 }.encode(tag));
    let (_, resp) = FsResponse::decode(&reply).unwrap();
    assert_eq!(resp, FsResponse::Ok);
    report.recover_ns = recover.elapsed().as_nanos() as u64;
    report.completed += 1;
    stub2.join().unwrap();

    report.hung_tags = client.pending_len() as u64;
    report.leaked_credits = pool.levels().0 as u64;
    FaultScenario {
        name: FaultKind::StubCrash.to_string(),
        report,
    }
}

/// E5c: the stub poisons a response-ring element mid-publish (torn header
/// write). The consumer reports `Corrupt` and stops delivering, so the
/// waiter's deadline expires; [`link_reset`] discards the poisoned ring
/// state and the link revives.
///
/// [`link_reset`]: solros::transport::RpcClient::link_reset
fn ring_corrupt_recovery() -> FaultScenario {
    use solros::transport::{Channel, RpcClient};
    use solros_pcie::counter::PcieCounters;
    use solros_proto::fs_msg::{FsRequest, FsResponse};
    use solros_proto::rpc_error::RpcErr;
    use solros_qos::CreditPool;

    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(counters);
    let pool = Arc::new(CreditPool::new(8));
    let client = RpcClient::with_link(
        ch.req_tx,
        ch.resp_rx,
        Some(Arc::clone(&pool)),
        Arc::clone(&ch.req_ring),
        Arc::clone(&ch.resp_ring),
    );
    client.set_error_encoder(|tag, err| FsResponse::Error { err }.encode(tag));

    // The stub answers one request cleanly, then corrupts the header of
    // its next publish and exits.
    let req_rx = ch.req_rx;
    let resp_tx = ch.resp_tx;
    let stub = std::thread::spawn(move || {
        for corrupt in [false, true] {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let (tag, _) = FsRequest::decode(&f).unwrap();
            if corrupt {
                resp_tx.corrupt_next(1);
            }
            resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
        }
    });

    let mut report = RecoveryReport {
        injected: 1,
        resets: 1,
        ..Default::default()
    };
    let tag = client.tag();
    let _ = client.call(tag, FsRequest::Fsync { ino: 1 }.encode(tag));
    report.completed += 1;

    let tag_b = client.tag();
    let token_b = client
        .submit(tag_b, FsRequest::Fstat { ino: 2 }.encode(tag_b))
        .unwrap();
    let tag_c = client.tag();
    let token_c = client
        .submit(tag_c, FsRequest::Fstat { ino: 3 }.encode(tag_c))
        .unwrap();
    let armed = Instant::now();
    let err = client
        .wait_timeout(token_b, Duration::from_millis(150))
        .unwrap_err();
    assert_eq!(err, RpcErr::Timeout, "poisoned ring must starve the waiter");
    report.detect_ns = armed.elapsed().as_nanos() as u64;
    stub.join().unwrap();

    let recover = Instant::now();
    let reset = client.link_reset(RpcErr::Gone);
    report.drained = reset.drained as u64;
    let reply = client.wait(token_c);
    let (_, resp) = FsResponse::decode(&reply).unwrap();
    assert_eq!(resp, FsResponse::Error { err: RpcErr::Gone });

    let req_rx = ch.req_ring.consumer();
    let resp_tx = ch.resp_ring.producer();
    let stub2 = std::thread::spawn(move || {
        let f = loop {
            match req_rx.recv() {
                Ok(f) => break f,
                Err(_) => std::thread::yield_now(),
            }
        };
        let (tag, _) = FsRequest::decode(&f).unwrap();
        resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
    });
    let tag = client.tag();
    let reply = client.call(tag, FsRequest::Fsync { ino: 4 }.encode(tag));
    let (_, resp) = FsResponse::decode(&reply).unwrap();
    assert_eq!(resp, FsResponse::Ok);
    report.recover_ns = recover.elapsed().as_nanos() as u64;
    report.completed += 1;
    stub2.join().unwrap();

    report.hung_tags = client.pending_len() as u64;
    report.leaked_credits = pool.levels().0 as u64;
    FaultScenario {
        name: FaultKind::RingCorrupt.to_string(),
        report,
    }
}

/// Runs every E5 scenario with its fixed seed: the NVMe burst sweep plus
/// the two link-reset recoveries. The CI smoke checks
/// [`RecoveryReport::clean`] on each.
pub fn fault_scenarios() -> Vec<FaultScenario> {
    vec![
        nvme_fault_burst(0.0),
        nvme_fault_burst(0.08),
        nvme_fault_burst(0.20),
        stub_crash_recovery(),
        ring_corrupt_recovery(),
    ]
}

/// Renders the E5 scenario table.
pub fn render_fault_scenarios(scenarios: &[FaultScenario]) -> String {
    let mut t = Table::new(vec![
        "scenario",
        "injected",
        "completed",
        "drained",
        "retried",
        "resets",
        "goodput",
        "detect (us)",
        "recover (us)",
        "clean",
    ]);
    for s in scenarios {
        let r = &s.report;
        let us = |ns: u64| {
            if r.resets == 0 {
                "-".into()
            } else {
                format!("{:.0}", ns as f64 / 1e3)
            }
        };
        t.row(vec![
            s.name.clone(),
            r.injected.to_string(),
            r.completed.to_string(),
            r.drained.to_string(),
            r.retried.to_string(),
            r.resets.to_string(),
            format!("{:.3}", r.goodput()),
            us(r.detect_ns),
            us(r.recover_ns),
            if r.clean() { "yes".into() } else { "NO".into() },
        ]);
    }
    t.to_markdown()
}

/// Extension E5: fault injection and end-to-end recovery.
pub fn fault_recovery() -> String {
    let mut out = render_fault_scenarios(&fault_scenarios());
    out.push_str(
        "\nSeeded fault schedules (`FaultPlan`, seed 0xE5) drive every \
         injector. NVMe media/timeout/queue-full bursts are absorbed by \
         the shared exponential-backoff retry in the proxy's settle path \
         — goodput stays 1.0 and nothing surfaces to the co-processor. \
         Stub crash and ring corruption are detected by a `wait_timeout` \
         deadline expiring on the quiet link, then recovered with \
         *drain → scrub → reset*: every pending tag wakes with a \
         decodable error completion, every flow-control credit returns \
         to the pool, the rings are re-initialized, and a replacement \
         stub serves traffic again. `clean` asserts zero hung tags and \
         zero leaked credits after recovery.\n",
    );
    out
}

/// Outcome of the E6 extent-lease run: the rendered report plus the
/// tripwires the CI smoke gates on.
pub struct LeaseOutcome {
    /// Rendered markdown report.
    pub report: String,
    /// RPCs per read on the leased hot loop (gate: ~0).
    pub leased_rpcs_per_op: f64,
    /// Stub-side tripwire, summed over every co-processor: leased ops
    /// that completed against a silently stale mapping. Must be 0.
    pub stale_generation_reads: u64,
    /// Lease ledger clean at quiescence: every recall acked or
    /// force-revoked, none pending.
    pub ledger_clean: bool,
}

/// Extension E6 — the extent-lease data plane on a real booted system.
///
/// Phase 1 measures the claim: random 4 KiB reads of a hot file cost one
/// RPC each on the stock path and ~zero once a read lease maps the
/// file's extents into the stub. Phase 2 proves coherence end-to-end: a
/// conflicting writer on *another* co-processor parks behind the
/// engine's external hold, the recall settles, the write lands, and the
/// holder's next read observes the new bytes. Phase 3 is a recall storm
/// — the holder re-leases in a loop while the writer keeps conflicting —
/// after which the ledger must be clean and the stale-generation
/// tripwire zero.
pub fn lease_data_plane() -> LeaseOutcome {
    use solros::control::Solros;
    use solros_machine::MachineConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    const READ: usize = 4096;
    const FILE_BYTES: usize = 256 * 1024;
    const HOT_READS: usize = 200;
    const STORM_WRITES: usize = 12;

    let sys = Solros::boot(MachineConfig {
        sockets: 1, // Same socket: P2P leases pass the placement check.
        coprocs: 2,
        ssd_blocks: 16_384,
        coproc_window_bytes: 4 << 20,
        host_cache_pages: 128,
    });
    let mgr = Arc::clone(sys.lease_manager());
    // Tight recall budget keeps the storm phase fast; correctness does
    // not depend on it (the sweep force-revokes unanswered recalls).
    mgr.set_recall_budget(Duration::from_millis(1));

    // Populate via the host view, then drop the cached pages so every
    // measured read really crosses to the device.
    let host = sys.host_fs();
    let ino = host.create("/hot").unwrap();
    let base: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 251) as u8).collect();
    host.write(ino, 0, &base).unwrap();
    host.cache().invalidate_ino(ino);

    let fs0 = Arc::clone(sys.data_plane(0).fs());
    let fs1 = Arc::clone(sys.data_plane(1).fs());
    let (h0, _) = fs0.open("/hot", false, false, false).unwrap();
    let (h1, _) = fs1.open("/hot", false, false, false).unwrap();
    let stats0 = Arc::clone(sys.fs_proxy_stats(0));
    let stats1 = Arc::clone(sys.fs_proxy_stats(1));
    let blocks = (FILE_BYTES / READ) as u64;
    let mut rng = DetRng::seed(0xE6);

    // -- Phase 1: RPC baseline, then the leased fast path. --
    let r0 = stats0.rpcs.load(Ordering::Relaxed);
    for _ in 0..HOT_READS {
        let off = rng.below(blocks) * READ as u64;
        let v = fs0.read_to_vec(h0, off, READ).unwrap();
        assert_eq!(&v[..], &base[off as usize..off as usize + READ]);
    }
    let unleased_per_op = (stats0.rpcs.load(Ordering::Relaxed) - r0) as f64 / HOT_READS as f64;

    assert_eq!(
        fs0.lease_range(h0, 0, FILE_BYTES as u64, false),
        Ok(true),
        "read lease over the hot file"
    );
    let r1 = stats0.rpcs.load(Ordering::Relaxed);
    for _ in 0..HOT_READS {
        let off = rng.below(blocks) * READ as u64;
        let v = fs0.read_to_vec(h0, off, READ).unwrap();
        assert_eq!(&v[..], &base[off as usize..off as usize + READ]);
    }
    let leased_per_op = (stats0.rpcs.load(Ordering::Relaxed) - r1) as f64 / HOT_READS as f64;

    // A leased batch is one vectored submission: one doorbell, zero RPCs.
    let db0 = sys.machine().nvme.stats().doorbells;
    let bufs = fs0
        .read_at_batch(h0, &[(0, 100), (8192, 4096), (60_000, 2_000)])
        .unwrap();
    assert_eq!(&bufs[0][..], &base[0..100]);
    assert_eq!(&bufs[1][..], &base[8192..8192 + 4096]);
    assert_eq!(&bufs[2][..], &base[60_000..62_000]);
    let batch_doorbells = sys.machine().nvme.stats().doorbells - db0;

    // -- Phase 2: coherence under recall (deterministic). --
    // The conflicting writer on the OTHER co-processor parks behind the
    // external hold on its proxy engine; the recall settles (sweep or
    // ack) and only then does the write proceed.
    let patch = vec![0xEEu8; 2 * READ];
    assert_eq!(fs1.write_at(h1, 0, &patch), Ok(patch.len()));
    // The holder's next read notices the settled lease, acks on the
    // wire, falls back to RPC — and must observe the writer's bytes.
    let seen = fs0.read_to_vec(h0, 0, 2 * READ).unwrap();
    assert_eq!(seen, patch, "read after recall must observe the new data");

    // -- Phase 3: recall storm. --
    let stop = Arc::new(AtomicBool::new(false));
    let storm_reader = {
        let fs0 = Arc::clone(&fs0);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = DetRng::seed(0xE6_E6);
            while !stop.load(Ordering::Relaxed) {
                // Re-lease, serve a few hot reads, then leave a window
                // for the conflicting writer to win the race.
                let _ = fs0.lease_range(h0, 0, FILE_BYTES as u64, false);
                for _ in 0..8 {
                    let off = rng.below(blocks) * READ as u64;
                    let v = fs0.read_to_vec(h0, off, READ).unwrap();
                    assert_eq!(v.len(), READ);
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };
    for i in 0..STORM_WRITES {
        let block = 16 + i as u64;
        let chunk = vec![0xB0u8 + i as u8; READ];
        assert_eq!(fs1.write_at(h1, block * READ as u64, &chunk), Ok(READ));
        // Pace the writes so the holder re-leases between them — every
        // write then lands on a live lease and forces its own recall.
        std::thread::sleep(Duration::from_micros(800));
    }
    stop.store(true, Ordering::Relaxed);
    storm_reader.join().unwrap();
    fs0.lease_release(h0).unwrap();
    // Any recall still in flight settles via the proxies' idle sweeps.
    let deadline = Instant::now() + Duration::from_secs(2);
    while mgr.pending() > 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }

    // Every storm write must be visible through the ordinary RPC path.
    for i in 0..STORM_WRITES {
        let block = 16 + i as u64;
        let v = fs0.read_to_vec(h0, block * READ as u64, READ).unwrap();
        assert!(
            v.iter().all(|&b| b == 0xB0 + i as u8),
            "storm write {i} not visible after recall"
        );
    }

    let ledger = mgr.ledger();
    let table_stats = |i: usize| {
        sys.data_plane(i)
            .fs()
            .lease_table()
            .expect("boot installs lease tables")
            .stats()
            .stale_generation_reads
            .load(Ordering::Relaxed)
    };
    let stale = table_stats(0) + table_stats(1);
    let t0 = fs0.lease_table().unwrap().stats();
    let leased_reads = t0.leased_reads.load(Ordering::Relaxed);
    let leased_mb = t0.leased_bytes_read.load(Ordering::Relaxed) as f64 / 1e6;
    let recall_acks = t0.recall_acks.load(Ordering::Relaxed);
    let lease_deferred = stats0.lease_deferred.load(Ordering::Relaxed)
        + stats1.lease_deferred.load(Ordering::Relaxed);
    let fallback_reads = stats0.lease_fallback_reads.load(Ordering::Relaxed)
        + stats1.lease_fallback_reads.load(Ordering::Relaxed);
    let fallback_writes = stats0.lease_fallback_writes.load(Ordering::Relaxed)
        + stats1.lease_fallback_writes.load(Ordering::Relaxed);
    let malformed =
        stats0.malformed.load(Ordering::Relaxed) + stats1.malformed.load(Ordering::Relaxed);
    sys.shutdown();

    let mut t = Table::new(vec!["metric", "value"]);
    for (k, v) in [
        (
            "RPCs/op, hot reads, no lease",
            format!("{unleased_per_op:.3}"),
        ),
        ("RPCs/op, hot reads, leased", format!("{leased_per_op:.3}")),
        ("stub leased reads (zero-RPC)", leased_reads.to_string()),
        ("stub leased MB read", format!("{leased_mb:.1}")),
        (
            "doorbells for 3-range leased batch",
            batch_doorbells.to_string(),
        ),
        ("leases granted", ledger.granted.to_string()),
        ("voluntary releases", ledger.released.to_string()),
        ("recalls issued", ledger.recalls_issued.to_string()),
        ("recalls acked by holder", ledger.recalls_acked.to_string()),
        (
            "recalls force-revoked by sweep",
            ledger.forced_revokes.to_string(),
        ),
        ("stub recall acks", recall_acks.to_string()),
        ("RPC jobs parked behind leases", lease_deferred.to_string()),
        (
            "RPC fallback reads on leased inos",
            fallback_reads.to_string(),
        ),
        (
            "RPC fallback writes on leased inos",
            fallback_writes.to_string(),
        ),
        ("malformed frames (engine ledger)", malformed.to_string()),
        ("stale-generation reads (tripwire)", stale.to_string()),
        (
            "lease ledger clean",
            if ledger.clean() {
                "yes".into()
            } else {
                "NO".into()
            },
        ),
    ] {
        t.row(vec![k.to_string(), v]);
    }
    let mut report = t.to_markdown();
    report.push_str(
        "\nA read lease turns the hot loop's per-op RPC into zero: the stub \
         serves every read straight from the pre-resolved extent map with \
         its own NVMe submissions (and a whole batch with one doorbell). \
         A conflicting writer on another co-processor parks behind the \
         engine's external hold while the recall protocol settles — \
         holder acks or the deadline sweep force-revokes — and the \
         post-recall read observes the writer's bytes. The tripwire \
         counts leased ops that completed against a silently stale \
         mapping; the recall-before-invalidate ordering keeps it at \
         zero through the storm.\n",
    );

    LeaseOutcome {
        report,
        leased_rpcs_per_op: leased_per_op,
        stale_generation_reads: stale,
        ledger_clean: ledger.clean(),
    }
}

/// One point of the E7 virtual-time control-plane sweep.
pub struct E7Point {
    /// Engine shards (NUMA domains) replicating the shared state.
    pub domains: usize,
    /// Metadata ops executed across all shards.
    pub ops: u64,
    /// Virtual-time throughput, thousand ops per second.
    pub kops: f64,
    /// Replica log-lag percentiles sampled before every sync (entries).
    pub lag_p50: u64,
    /// 99th-percentile replica lag.
    pub lag_p99: u64,
    /// Worst replica lag observed.
    pub lag_max: u64,
    /// Deepest the shared log got between compactions.
    pub depth_max: u64,
    /// Replicas whose apply-order fingerprint differs from the
    /// reference replica's. Must be 0: any double- or skipped apply
    /// changes the fingerprint.
    pub divergence: u64,
}

/// Outcome of E7: the rendered report plus the tripwires CI gates on.
pub struct ControlPlaneOutcome {
    /// Rendered markdown report.
    pub report: String,
    /// Virtual-time throughput ratio of 8 domains over 1 (gate: ≥ 3).
    pub speedup8: f64,
    /// Fingerprint mismatches summed over the sweep. Must be 0.
    pub divergence: u64,
    /// Replica overruns observed by the real-boot storms. Must be 0.
    pub overruns: u64,
}

/// Per-op local work on a shard (decode, classify, registry probe), ns.
const E7_LOCAL_NS: u64 = 1_000;
/// Publishing one mutation into the combiner's pending buffer, ns.
const E7_PUBLISH_NS: u64 = 20;
/// Flat-combining drain: fixed cost plus per-entry append, ns.
const E7_COMBINE_BASE_NS: u64 = 150;
const E7_PER_ENTRY_NS: u64 = 30;
/// Applying one replicated entry at a local replica, ns.
const E7_APPLY_NS: u64 = 25;
/// Ops each shard executes per round of the sweep.
const E7_ROUND_OPS: usize = 32;
/// Rounds per sweep point.
const E7_ROUNDS: usize = 192;

fn percentile_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One point of the sweep: `domains` shards execute metadata ops under
/// a virtual clock against a **real** shared operation log
/// ([`solros_oplog::OpLog`]) — real appends, real cursors, real
/// compaction — with costs charged per the constants above. Execution
/// is single-threaded and deterministic (seeded op stream, fixed sync
/// cadences), so the throughput a point reports is reproducible on any
/// host, including single-core CI runners.
pub fn sweep_control_point(domains: usize) -> E7Point {
    use solros_oplog::{LogConfig, OpLog, SyncOutcome};

    // A control-plane mutation: bump a registry slot. The fingerprint
    // folds (sequence, op) pairs in apply order, so it is sensitive to
    // double-applies, skips, and reordering alike.
    let log: Arc<OpLog<(u16, u64)>> = OpLog::new(LogConfig {
        high_water: 256,
        max_lag: u64::MAX,
    });
    let fold = |fp: u64, seq: u64, op: &(u16, u64)| -> u64 {
        fp.wrapping_mul(0x0000_0100_0000_01B3)
            .wrapping_add(seq ^ (u64::from(op.0) << 32) ^ op.1)
    };

    let mut cursors: Vec<_> = (0..domains).map(|_| log.register()).collect();
    let mut reference = log.register();
    let mut fingerprints = vec![0u64; domains];
    let mut ref_fp = 0u64;
    let mut clock = vec![0u64; domains];
    let mut lags: Vec<u64> = Vec::new();
    let mut depth_max = 0u64;
    let mut rng = DetRng::seed(0xE7);
    let mut ops_total = 0u64;

    for round in 0..E7_ROUNDS {
        let combiner = round % domains;
        let round_entries = (domains * E7_ROUND_OPS) as u64;
        for (d, domain_clock) in clock.iter_mut().enumerate() {
            // Local pipeline work for this shard's burst.
            *domain_clock += E7_ROUND_OPS as u64 * E7_LOCAL_NS;
            for _ in 0..E7_ROUND_OPS {
                log.append((rng.below(512) as u16, rng.below(1 << 20)));
                ops_total += 1;
            }
            // Mutations ride the shared log: the round's combiner pays
            // the batched drain, everyone else only publishes.
            *domain_clock += if d == combiner {
                E7_COMBINE_BASE_NS + round_entries * E7_PER_ENTRY_NS
            } else {
                E7_ROUND_OPS as u64 * E7_PUBLISH_NS
            };
        }
        depth_max = depth_max.max(log.stats().depth);
        // Staggered sync cadences (every 1–3 rounds) so the sweep sees
        // real lag spread, not lockstep replicas.
        for d in 0..domains {
            if round % (1 + d % 3) != 0 {
                continue;
            }
            lags.push(log.lag(&cursors[d]));
            let mut applied = 0u64;
            let fp = &mut fingerprints[d];
            let outcome = log.sync(&mut cursors[d], |seq, op| {
                *fp = fold(*fp, seq, op);
                applied += 1;
            });
            debug_assert!(!matches!(outcome, SyncOutcome::Overrun));
            clock[d] += applied * E7_APPLY_NS;
        }
        if round % 64 == 63 {
            log.sync(&mut reference, |seq, op| ref_fp = fold(ref_fp, seq, op));
        }
    }
    // Quiesce: every replica applies to the tail.
    for (d, cursor) in cursors.iter_mut().enumerate() {
        lags.push(log.lag(cursor));
        let mut applied = 0u64;
        let fp = &mut fingerprints[d];
        log.sync(cursor, |seq, op| {
            *fp = fold(*fp, seq, op);
            applied += 1;
        });
        clock[d] += applied * E7_APPLY_NS;
    }
    log.sync(&mut reference, |seq, op| ref_fp = fold(ref_fp, seq, op));

    lags.sort_unstable();
    let wall = clock.iter().copied().max().unwrap_or(1).max(1);
    E7Point {
        domains,
        ops: ops_total,
        kops: ops_total as f64 / (wall as f64 / 1e9) / 1e3,
        lag_p50: percentile_u64(&lags, 50.0),
        lag_p99: percentile_u64(&lags, 99.0),
        lag_max: lags.last().copied().unwrap_or(0),
        depth_max,
        divergence: fingerprints.iter().filter(|&&fp| fp != ref_fp).count() as u64,
    }
}

/// Extension E7 — control-plane scalability of the sharded (NRK-style)
/// design.
///
/// Part 1 boots real systems with 1→8 co-processors and drives mixed
/// fs+tcp metadata traffic from every card at once
/// ([`crate::figs::fig18::storm`]): the boot path shards the TCP proxy
/// per NUMA domain, listener churn rides the TcpControl operation log,
/// and the overrun counter is the divergence tripwire. Part 2 sweeps
/// shard counts under a deterministic virtual clock against a real
/// operation log, reporting ops/s, replica-lag percentiles, and log
/// depth; the CI gate demands 8 domains deliver ≥ 3× the 1-domain
/// throughput with zero fingerprint divergence.
pub fn control_plane_scaling() -> ControlPlaneOutcome {
    let mut out = String::new();

    // ---- Part 1: real boots, mixed metadata storm ----
    let mut t = Table::new(vec![
        "co-processors",
        "tcp shards",
        "fs RPCs",
        "ctrl-log appends",
        "combine factor",
        "log overruns",
    ]);
    let mut overruns = 0;
    for n in [1usize, 2, 4, 8] {
        let o = crate::figs::fig18::storm(n);
        overruns += o.log.overruns;
        t.row(vec![
            n.to_string(),
            o.domains.to_string(),
            o.rpcs.iter().sum::<u64>().to_string(),
            o.log.appends.to_string(),
            format!("{:.2}", o.log.appends as f64 / o.log.batches.max(1) as f64),
            o.log.overruns.to_string(),
        ]);
    }
    out.push_str("Real boots, every card mixing fs reads with TCP listener churn:\n\n");
    out.push_str(&t.to_markdown());

    // ---- Part 2: virtual-time shard sweep over a real op log ----
    let points: Vec<E7Point> = [1usize, 2, 4, 8]
        .iter()
        .map(|&d| sweep_control_point(d))
        .collect();
    let base = points[0].kops;
    let mut t = Table::new(vec![
        "domains",
        "ops",
        "kops/s (virtual)",
        "speedup",
        "lag p50",
        "lag p99",
        "lag max",
        "log depth max",
        "diverged replicas",
    ]);
    for p in &points {
        t.row(vec![
            p.domains.to_string(),
            p.ops.to_string(),
            format!("{:.0}", p.kops),
            format!("{:.2}x", p.kops / base),
            p.lag_p50.to_string(),
            p.lag_p99.to_string(),
            p.lag_max.to_string(),
            p.depth_max.to_string(),
            p.divergence.to_string(),
        ]);
    }
    out.push_str(
        "\nVirtual-time sweep (single-threaded, deterministic; real `solros-oplog` log and \
         cursors, costs in ns charged per the NUMA model):\n\n",
    );
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nLocal work scales with shards while the shared log amortizes appends through flat \
         combining, so throughput grows near-linearly until the combiner's per-entry drain \
         dominates. Replica lag stays bounded by the sync cadence (entries, not time), and \
         identical apply-order fingerprints on every replica are the no-divergence proof: a \
         double-applied or skipped entry would change the fold.\n",
    );

    let speedup8 = points[3].kops / base;
    let divergence = points.iter().map(|p| p.divergence).sum();
    ControlPlaneOutcome {
        report: out,
        speedup8,
        divergence,
        overruns,
    }
}

/// One point of E8's reply-side sweep: the same booted system and
/// wave-submission workload as [`sweep_queue_depth`], but instrumenting
/// the *reply* ring — how many control-variable publishes the fs proxy
/// paid to settle the wave's completions through its batched
/// [`ReplySettler`] path.
///
/// [`ReplySettler`]: solros::proxy_engine::ReplySettler
pub struct ReplyDepthPoint {
    /// Submission-queue depth.
    pub depth: usize,
    /// Replies settled during the measured window.
    pub replies: u64,
    /// Settlement waves (batched reply enqueues) that carried them.
    pub reply_waves: u64,
    /// Control-variable publishes paid on the reply ring.
    pub reply_publishes: u64,
}

impl ReplyDepthPoint {
    /// Reply-side doorbell-equivalents per completed op — the mirror of
    /// E4's submission-side doorbells/op.
    pub fn publishes_per_op(&self) -> f64 {
        self.reply_publishes as f64 / self.replies.max(1) as f64
    }
}

/// Single-thread random 4 KiB reads at each queue depth against a real
/// booted system, measured on the *reply* side: the fs proxy posts every
/// completion into its per-lane settlement accumulator and the engine
/// settles one vectored reply enqueue — one control-variable publish on
/// the lazy ring — per `(lane, cycle)`, so publishes/op collapse toward
/// `1/depth` exactly as the submission-side doorbells did in E4.
pub fn sweep_reply_wave(depths: &[usize], ops: usize) -> Vec<ReplyDepthPoint> {
    use solros::control::Solros;
    use solros_machine::MachineConfig;
    use std::sync::atomic::Ordering::Relaxed;

    const READ: usize = 4096;
    const FILE_BYTES: u64 = 8 << 20;

    depths
        .iter()
        .map(|&depth| {
            let sys = Solros::boot(MachineConfig {
                sockets: 1,
                coprocs: 1,
                ssd_blocks: 16_384,
                coproc_window_bytes: 8 << 20,
                host_cache_pages: 64,
            });
            let host = sys.host_fs();
            let ino = host.create("/data").unwrap();
            let chunk = vec![0xa5u8; 256 * 1024];
            let mut off = 0u64;
            while off < FILE_BYTES {
                host.write(ino, off, &chunk).unwrap();
                off += chunk.len() as u64;
            }
            host.cache().invalidate_ino(ino);

            let fs = Arc::clone(sys.data_plane(0).fs());
            let (h, size) = fs.open("/data", false, false, false).unwrap();
            assert_eq!(size, FILE_BYTES);
            let blocks = FILE_BYTES / READ as u64;
            let mut rng = DetRng::seed(0xE8);

            // Warm-up wave outside the measured window.
            let mut warm = fs.batch();
            for _ in 0..depth {
                warm = warm.read(h, rng.below(blocks) * READ as u64, READ);
            }
            for r in warm.run() {
                assert_eq!(r.into_read().len(), READ);
            }

            let s = sys.fs_proxy_stats(0);
            let r0 = s.replies.load(Relaxed);
            let w0 = s.reply_waves.load(Relaxed);
            let p0 = s.reply_publishes.load(Relaxed);
            let mut done = 0usize;
            while done < ops {
                let wave = depth.min(ops - done);
                let mut b = fs.batch();
                for _ in 0..wave {
                    b = b.read(h, rng.below(blocks) * READ as u64, READ);
                }
                for r in b.run() {
                    assert_eq!(r.into_read().len(), READ);
                }
                done += wave;
            }
            let point = ReplyDepthPoint {
                depth,
                replies: s.replies.load(Relaxed) - r0,
                reply_waves: s.reply_waves.load(Relaxed) - w0,
                reply_publishes: s.reply_publishes.load(Relaxed) - p0,
            };
            sys.shutdown();
            point
        })
        .collect()
}

/// Accepts the pending fabric connection on `port`, reporting which
/// listener died instead of unwrapping blind.
fn accept_on(network: &solros_netdev::Network, port: u16) -> (solros_netdev::ConnId, u64) {
    match network.poll_accept(port) {
        Ok(Some(pending)) => pending,
        Ok(None) => panic!("accept on port {port}: connect never reached the listener"),
        Err(e) => panic!("accept on port {port} failed: {e:?}"),
    }
}

/// One point of E8's TCP small-send sweep (self-contained rig: real
/// fabric, one workerless proxy shard, one RPC client with a credit
/// window).
pub struct TcpCoalescePoint {
    /// Pipelined sends in flight.
    pub depth: usize,
    /// `Send` RPCs completed in the measured window.
    pub ops: u64,
    /// Sends that rode the coalescing stage.
    pub staged_sends: u64,
    /// Coalesced backend writes those sends collapsed into.
    pub backend_writes: u64,
    /// Replies settled.
    pub replies: u64,
    /// Control-variable publishes paid on the reply ring.
    pub reply_publishes: u64,
    /// Wall-clock time for the window, seconds.
    pub elapsed_s: f64,
}

/// Outcome of the TCP half of E8: per-depth points plus the leak
/// tripwires CI gates on.
pub struct TcpWaveOutcome {
    /// Per-depth measurements (depths in call order).
    pub points: Vec<TcpCoalescePoint>,
    /// Throughput ratio of the deepest point over the first (QD1).
    pub speedup: f64,
    /// RPC tags still pending after quiescence. Must be 0.
    pub tag_leaks: u64,
    /// Credits still held after quiescence. Must be 0.
    pub credit_leaks: u64,
    /// Events lost on a full event ring. Must be 0.
    pub event_drops: u64,
    /// Bytes the external server did not receive (or received
    /// corrupted) versus what every `Sent` reply acknowledged. Must
    /// be 0: coalescing may merge backend writes but never bytes.
    pub bytes_mismatch: u64,
}

/// Small-message `Send` throughput at each pipeline depth through one
/// TCP proxy shard. Sub-[`STAGE_SEND_MAX`] sends on the same socket
/// coalesce in the proxy's staging table into one backend write per
/// admission wave, and their replies settle as one batched enqueue —
/// so both directions of the ring pay `~1/depth` publishes per op while
/// every part still gets its own byte-identical `Sent` reply.
///
/// [`STAGE_SEND_MAX`]: solros::tcp_proxy::STAGE_SEND_MAX
pub fn tcp_send_coalescing(depths: &[usize], ops: usize) -> TcpWaveOutcome {
    use solros::tcp_proxy::{NetChannelHost, TcpProxy};
    use solros::transport::{event_ring, Channel, RpcClient};
    use solros::RoundRobin;
    use solros_pcie::PcieCounters;
    use solros_proto::net_msg::NetRequest;
    use solros_qos::CreditPool;
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

    const MSG: usize = 64;
    const PORT: u16 = 9_000;
    const R_SENT: u8 = 145;
    const R_SOCKET: u8 = 140;
    const R_NOK: u8 = 150;

    let network = solros_netdev::Network::new();
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(Arc::clone(&counters));
    let (evt_tx, _evt_rx) = event_ring(counters);
    let pool = Arc::new(CreditPool::new(256));
    let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));
    let (proxy, stats) = TcpProxy::new(
        Arc::clone(&network),
        vec![NetChannelHost {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
            evt_tx,
        }],
        Box::new(RoundRobin::default()),
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || proxy.run(sd));

    // An "external server" listens on the fabric; the stub connects out.
    network.listen(PORT, 1024).unwrap();
    let mut tag = 1u32;
    let reply = client.call(tag, NetRequest::Socket.encode(tag));
    assert_eq!(reply[4], R_SOCKET);
    let sock = u64::from_le_bytes(reply[12..20].try_into().unwrap());
    tag += 1;
    let reply = client.call(
        tag,
        NetRequest::Connect {
            sock,
            addr: 7,
            port: PORT,
        }
        .encode(tag),
    );
    assert_eq!(reply[4], R_NOK, "connect must succeed");
    let (conn, _peer) = accept_on(&network, PORT);

    let msg = vec![0x5au8; MSG];
    let mut points = Vec::new();
    for &depth in depths {
        let r0 = stats.engine.replies.load(Relaxed);
        let p0 = stats.engine.reply_publishes.load(Relaxed);
        let s0 = stats.staged_sends.load(Relaxed);
        let w0 = stats.send_waves.load(Relaxed);
        let t0 = Instant::now();
        let mut done = 0usize;
        while done < ops {
            let wave = depth.min(ops - done);
            let tokens: Vec<_> = (0..wave)
                .map(|_| {
                    tag += 1;
                    client
                        .submit(
                            tag,
                            NetRequest::Send {
                                sock,
                                data: msg.clone(),
                            }
                            .encode(tag),
                        )
                        .unwrap()
                })
                .collect();
            for token in tokens {
                let reply = client.wait(token);
                assert_eq!(reply[4], R_SENT, "every part gets its own Sent");
                assert_eq!(
                    u64::from_le_bytes(reply[12..20].try_into().unwrap()),
                    MSG as u64
                );
            }
            done += wave;
        }
        points.push(TcpCoalescePoint {
            depth,
            ops: ops as u64,
            staged_sends: stats.staged_sends.load(Relaxed) - s0,
            backend_writes: stats.send_waves.load(Relaxed) - w0,
            replies: stats.engine.replies.load(Relaxed) - r0,
            reply_publishes: stats.engine.reply_publishes.load(Relaxed) - p0,
            elapsed_s: t0.elapsed().as_secs_f64(),
        });
    }

    // Coalescing merges backend writes, never bytes: the external server
    // must see exactly the acknowledged payload.
    let expected = (depths.len() * ops * MSG) as u64;
    let mut got = 0u64;
    let mut clean = true;
    loop {
        let data = network
            .recv(conn, solros_netdev::EndKind::Server, 1 << 20)
            .unwrap();
        if data.is_empty() {
            break;
        }
        clean &= data.iter().all(|&b| b == 0x5a);
        got += data.len() as u64;
    }

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    server.join().unwrap();

    let speedup = points[0].elapsed_s / points.last().unwrap().elapsed_s.max(1e-12);
    TcpWaveOutcome {
        speedup,
        tag_leaks: client.pending_len() as u64,
        credit_leaks: u64::from(pool.levels().0),
        event_drops: stats.event_drops.load(Relaxed),
        bytes_mismatch: expected.abs_diff(got) + u64::from(!clean),
        points,
    }
}

/// Outcome of E8: the rendered report plus the tripwires CI gates on.
pub struct ReplyWaveOutcome {
    /// Rendered markdown report.
    pub report: String,
    /// FS reply publishes/op at QD1 (expect ~1: one settle per call).
    pub fs_qd1: f64,
    /// FS reply publishes/op at the deepest point (gate: ≤ 0.25).
    pub fs_qd32: f64,
    /// TCP reply publishes/op at the deepest point (gate: ≤ 0.25).
    pub tcp_qd32: f64,
    /// Small-send throughput ratio, deepest point over QD1 (gate: ≥ 2).
    pub tcp_speedup: f64,
    /// Pending tags after quiescence. Must be 0.
    pub tag_leaks: u64,
    /// Held credits after quiescence. Must be 0.
    pub credit_leaks: u64,
    /// Events lost on a full ring. Must be 0.
    pub event_drops: u64,
    /// Payload bytes lost or corrupted by coalescing. Must be 0.
    pub bytes_mismatch: u64,
}

/// Extension E8 — the symmetric wave: batched reply settlement and TCP
/// send coalescing, measured in doorbell-equivalents per op in *both*
/// ring directions.
pub fn reply_wave() -> ReplyWaveOutcome {
    let depths = [1usize, 2, 4, 8, 16, 32];
    let fs_points = sweep_reply_wave(&depths, 256);
    let tcp = tcp_send_coalescing(&depths, 256);

    let mut out = String::new();
    let mut t = Table::new(vec![
        "queue depth",
        "replies",
        "reply waves",
        "reply publishes",
        "publishes/op",
    ]);
    for p in &fs_points {
        t.row(vec![
            p.depth.to_string(),
            p.replies.to_string(),
            p.reply_waves.to_string(),
            p.reply_publishes.to_string(),
            format!("{:.3}", p.publishes_per_op()),
        ]);
    }
    out.push_str("Reply-side settlement, fs proxy on a real booted system:\n\n");
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nEvery completion is posted into the engine's per-lane settlement \
         accumulator and settled as one vectored reply enqueue per cycle: \
         one control-variable publish covers the whole wave, so reply-side \
         doorbell-equivalents per op fall from 1 at QD1 toward 1/depth — \
         the mirror of E4's submission-side collapse. Host-centric stacks \
         cannot do this: the virtio relay and the NFS client both pay one \
         completion notification per request at any depth \
         (`VirtioPerf::reply_publishes_per_op` = `NfsPerf::reply_publishes_per_op` = 1).\n",
    );

    let base = tcp.points[0].ops as f64 / tcp.points[0].elapsed_s;
    let mut t = Table::new(vec![
        "depth",
        "ops",
        "staged",
        "backend writes",
        "coalesce factor",
        "reply publishes/op",
        "kops/s",
        "speedup",
    ]);
    for p in &tcp.points {
        let kops = p.ops as f64 / p.elapsed_s;
        t.row(vec![
            p.depth.to_string(),
            p.ops.to_string(),
            p.staged_sends.to_string(),
            p.backend_writes.to_string(),
            format!(
                "{:.1}",
                p.staged_sends as f64 / p.backend_writes.max(1) as f64
            ),
            format!("{:.3}", p.reply_publishes as f64 / p.replies.max(1) as f64),
            format!("{:.1}", kops / 1e3),
            format!("{:.2}x", kops / base),
        ]);
    }
    out.push_str("\n64-byte `Send`s through one TCP proxy shard, pipelined per depth:\n\n");
    out.push_str(&t.to_markdown());
    out.push_str(&format!(
        "\nSmall sends on the same socket coalesce in the staging table into \
         one backend write per admission wave and their `Sent` replies ride \
         one settlement enqueue, so both ring directions amortize toward \
         1/depth publishes per op while each part keeps its own \
         byte-identical reply. Tripwires: {} pending tags, {} held credits, \
         {} event drops, {} payload bytes lost to coalescing.\n",
        tcp.tag_leaks, tcp.credit_leaks, tcp.event_drops, tcp.bytes_mismatch
    ));

    ReplyWaveOutcome {
        report: out,
        fs_qd1: fs_points[0].publishes_per_op(),
        fs_qd32: fs_points.last().unwrap().publishes_per_op(),
        tcp_qd32: {
            let p = tcp.points.last().unwrap();
            p.reply_publishes as f64 / p.replies.max(1) as f64
        },
        tcp_speedup: tcp.speedup,
        tag_leaks: tcp.tag_leaks,
        credit_leaks: tcp.credit_leaks,
        event_drops: tcp.event_drops,
        bytes_mismatch: tcp.bytes_mismatch,
    }
}

/// Outcome of E9: the rendered report plus the gates CI trips on.
pub struct FailoverOutcome {
    /// Rendered markdown report.
    pub report: String,
    /// NUMA domains (engine shards) the storm booted.
    pub domains: usize,
    /// Failovers the supervisor completed (gate: == 2, one crash + one
    /// wedge).
    pub failovers: u64,
    /// Total fence-to-replacement blackout across both failovers, ms
    /// (gate: bounded; detection adds ≤ `WEDGE_TICKS`·tick on top).
    pub blackout_ms: f64,
    /// Completed echoes whose payload came back altered or misrouted
    /// (gate: 0 — a duplicated or cross-wired reply shows up here).
    pub echo_mismatches: u64,
    /// Roundtrips that neither completed nor observed a clean severance
    /// within the deadline (gate: 0 — a lost reply shows up here).
    pub stuck: u64,
    /// Connections the blackout severed (clients saw the close and
    /// reconnected); informational.
    pub severed: u64,
    /// Completed echoes before the storm.
    pub ok_before: u64,
    /// Completed echoes after both replacements were serving.
    pub ok_after: u64,
    /// p99 echo latency over the surviving domains before the storm, µs.
    pub p99_before_us: f64,
    /// p99 echo latency over the surviving domains after the storm, µs
    /// (gate: bounded relative to before).
    pub p99_after_us: f64,
    /// Every live shard's control replica ended on one fingerprint
    /// (gate).
    pub converged: bool,
    /// TCP events dropped on a full ring (gate: 0).
    pub event_drops: u64,
    /// `RecoveryReport::clean()` over the supervisor's tally (gate).
    pub clean: bool,
    /// Lag rig: replica overruns recovered by an observer-snapshot
    /// rebuild (gate: ≥ 1).
    pub lag_recovered: u64,
    /// Lag rig: replicas still diverged after the rebuild (gate: false).
    pub lag_diverged: bool,
}

/// How one client roundtrip ended.
enum Roundtrip {
    /// Full echo received.
    Echo,
    /// The connection closed under us (blackout scrub or refused
    /// handoff).
    Severed,
    /// Deadline expired with a partial or absent echo — a lost reply.
    Stuck,
}

/// Spins until `cond` or `timeout`; true when the condition was met.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// p99 of a nanosecond sample set, in microseconds.
fn p99_us(samples: &mut [u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    samples[(samples.len() * 99 / 100).min(samples.len() - 1)] as f64 / 1e3
}

/// The E9 fault storm: a real 8-domain boot (one engine shard per card)
/// under live echo traffic from external fabric clients, with one domain
/// crashed and another wedged mid-run. Gates: both failovers complete
/// within a bounded blackout, no reply is lost or duplicated, surviving
/// domains keep their tail, and every surviving control replica
/// converges to one fingerprint.
fn failover_storm() -> FailoverOutcome {
    use solros::control::Solros;
    use solros_machine::MachineConfig;
    use solros_netdev::EndKind;
    use solros_qos::QosConfig;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::Relaxed};

    const DOMAINS: usize = 8;
    const PORT: u16 = 9_100;
    const MSG: usize = 32;
    const CLIENTS: usize = 6;
    const CRASH_DOMAIN: usize = 2;
    const WEDGE_DOMAIN: usize = 5;

    let sys = Solros::boot_qos(
        MachineConfig {
            sockets: DOMAINS as u8,
            coprocs: DOMAINS,
            ssd_blocks: 4_096,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: 64,
        },
        QosConfig::enforcing(),
    );
    assert_eq!(sys.tcp_domains(), DOMAINS, "one engine shard per card");

    let stop = Arc::new(AtomicBool::new(false));
    // 0 = baseline, 1 = storm in progress, 2 = replacements serving.
    let phase = Arc::new(AtomicU8::new(0));
    let ready = Arc::new(AtomicUsize::new(0));
    // Re-listen epoch per domain: bumped once its shard was replaced, so
    // the server knows its listener died with the old incarnation.
    let relisten: Arc<Vec<AtomicU64>> = Arc::new((0..DOMAINS).map(|_| AtomicU64::new(0)).collect());

    // Echo servers: every co-processor joins the shared listening socket
    // and echoes one message per connection, stamping byte 0 with its id
    // so clients can attribute each roundtrip to a domain.
    let servers: Vec<_> = (0..DOMAINS)
        .map(|i| {
            let net = sys.data_plane(i).net().clone();
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            let relisten = Arc::clone(&relisten);
            std::thread::spawn(move || {
                let mut listener = net.listen(PORT, 1024).expect("listen");
                ready.fetch_add(1, Relaxed);
                let mut epoch = 0u64;
                while !stop.load(Relaxed) {
                    let e = relisten[i].load(Relaxed);
                    if e != epoch {
                        // Rejoin the shared port through the replacement
                        // shard; the old listen socket is gone.
                        epoch = e;
                        match net.listen(PORT, 1024) {
                            Ok(l) => listener = l,
                            Err(_) => continue,
                        }
                    }
                    let Some((stream, _)) = listener.accept_timeout(Duration::from_millis(5))
                    else {
                        continue;
                    };
                    let mut buf = [0u8; MSG];
                    let mut have = 0;
                    while have < MSG {
                        match stream.recv_timeout(&mut buf[have..], Duration::from_millis(50)) {
                            Some(0) | None => break,
                            Some(n) => have += n,
                        }
                    }
                    if have == MSG {
                        buf[0] = i as u8;
                        let _ = stream.send(&buf);
                    }
                    let _ = stream.close();
                }
                let _ = listener.close();
            })
        })
        .collect();
    assert!(
        wait_until(Duration::from_secs(10), || ready.load(Relaxed) == DOMAINS),
        "all {DOMAINS} servers must join the shared port"
    );

    // External fabric clients: connect, send, expect the echo, close.
    // A roundtrip resolves as an echo, a clean severance, or — never —
    // stuck past the deadline.
    let severed = Arc::new(AtomicU64::new(0));
    let stuck = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let network = Arc::clone(sys.network());
            let stop = Arc::clone(&stop);
            let phase = Arc::clone(&phase);
            let severed = Arc::clone(&severed);
            let stuck = Arc::clone(&stuck);
            let mismatches = Arc::clone(&mismatches);
            std::thread::spawn(move || {
                let mut samples: Vec<(u8, u8, u64)> = Vec::new();
                let mut msg = [0u8; MSG];
                let mut n = 0u64;
                while !stop.load(Relaxed) {
                    n += 1;
                    for (j, b) in msg.iter_mut().enumerate() {
                        *b = (n as usize).wrapping_add(j).wrapping_add(c) as u8;
                    }
                    let ph = phase.load(Relaxed);
                    let Ok(conn) = network.client_connect(PORT, c as u64 + 1) else {
                        std::thread::yield_now();
                        continue;
                    };
                    let t0 = Instant::now();
                    if network.send(conn, EndKind::Client, &msg).is_err() {
                        severed.fetch_add(1, Relaxed);
                        let _ = network.close(conn, EndKind::Client);
                        continue;
                    }
                    let deadline = t0 + Duration::from_secs(5);
                    let mut got: Vec<u8> = Vec::with_capacity(MSG);
                    let outcome = loop {
                        match network.recv(conn, EndKind::Client, MSG - got.len()) {
                            Ok(d) if d.is_empty() => {
                                if Instant::now() >= deadline {
                                    break Roundtrip::Stuck;
                                }
                                std::thread::yield_now();
                            }
                            Ok(d) => {
                                got.extend(d);
                                if got.len() >= MSG {
                                    break Roundtrip::Echo;
                                }
                            }
                            Err(_) => break Roundtrip::Severed,
                        }
                    };
                    let _ = network.close(conn, EndKind::Client);
                    match outcome {
                        Roundtrip::Echo => {
                            let domain = got[0];
                            if got[1..] != msg[1..] || (domain as usize) >= DOMAINS {
                                mismatches.fetch_add(1, Relaxed);
                            } else {
                                samples.push((ph, domain, t0.elapsed().as_nanos() as u64));
                            }
                        }
                        Roundtrip::Severed => {
                            severed.fetch_add(1, Relaxed);
                        }
                        Roundtrip::Stuck => {
                            stuck.fetch_add(1, Relaxed);
                        }
                    }
                }
                samples
            })
        })
        .collect();

    // Baseline window, then the storm: crash one domain, and once its
    // replacement is up, wedge another.
    std::thread::sleep(Duration::from_millis(150));
    let supervisor = Arc::clone(sys.supervisor());
    phase.store(1, Relaxed);
    supervisor.shard_faults(CRASH_DOMAIN).arm_domain_crashes(1);
    let crash_ok = wait_until(Duration::from_secs(10), || supervisor.failovers() >= 1);
    relisten[CRASH_DOMAIN].fetch_add(1, Relaxed);
    std::thread::sleep(Duration::from_millis(50));
    supervisor.shard_faults(WEDGE_DOMAIN).arm_domain_wedges(1);
    let wedge_ok = wait_until(Duration::from_secs(10), || supervisor.failovers() >= 2);
    relisten[WEDGE_DOMAIN].fetch_add(1, Relaxed);
    std::thread::sleep(Duration::from_millis(100));
    phase.store(2, Relaxed);
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Relaxed);

    let mut samples = Vec::new();
    for c in clients {
        samples.extend(c.join().expect("client thread"));
    }
    for s in servers {
        s.join().expect("server thread");
    }

    let survives = |d: u8| d as usize != CRASH_DOMAIN && d as usize != WEDGE_DOMAIN;
    let mut before: Vec<u64> = samples
        .iter()
        .filter(|(ph, d, _)| *ph == 0 && survives(*d))
        .map(|&(_, _, ns)| ns)
        .collect();
    let mut after: Vec<u64> = samples
        .iter()
        .filter(|(ph, d, _)| *ph == 2 && survives(*d))
        .map(|&(_, _, ns)| ns)
        .collect();
    let ok_before = samples.iter().filter(|(ph, _, _)| *ph == 0).count() as u64;
    let ok_after = samples.iter().filter(|(ph, _, _)| *ph == 2).count() as u64;
    let revived_after = samples
        .iter()
        .filter(|(ph, d, _)| *ph == 2 && !survives(*d))
        .count() as u64;

    let fingerprints = supervisor.replica_fingerprints();
    let converged = fingerprints.len() == DOMAINS && fingerprints.windows(2).all(|w| w[0] == w[1]);
    let report = sys.recovery_report();
    let usage = sys.tenant_usage(0);

    let p99_before = p99_us(&mut before);
    let p99_after = p99_us(&mut after);
    let failovers = report.domains_failed_over;
    let blackout_ms = report.blackout_ns as f64 / 1e6;

    let mut out = String::new();
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["domains".into(), DOMAINS.to_string()]);
    t.row(vec![
        "killed".into(),
        format!("domain {CRASH_DOMAIN} (crash), domain {WEDGE_DOMAIN} (wedge)"),
    ]);
    t.row(vec![
        "failovers completed".into(),
        format!("{failovers} (crash detected: {crash_ok}, wedge detected: {wedge_ok})"),
    ]);
    t.row(vec![
        "blackout total".into(),
        format!("{blackout_ms:.2} ms"),
    ]);
    t.row(vec![
        "echoes before / after".into(),
        format!("{ok_before} / {ok_after}"),
    ]);
    t.row(vec![
        "echoes served by revived domains after".into(),
        revived_after.to_string(),
    ]);
    t.row(vec![
        "surviving-domain p99 before / after".into(),
        format!("{p99_before:.0} µs / {p99_after:.0} µs"),
    ]);
    t.row(vec![
        "severed / stuck / corrupted".into(),
        format!(
            "{} / {} / {}",
            severed.load(Relaxed),
            stuck.load(Relaxed),
            mismatches.load(Relaxed)
        ),
    ]);
    t.row(vec![
        "replica fingerprints".into(),
        format!("{} live, converged: {converged}", fingerprints.len()),
    ]);
    t.row(vec![
        "oplog overruns recovered".into(),
        report.oplog_overruns_recovered.to_string(),
    ]);
    t.row(vec![
        "reply-wave resubmits".into(),
        report.reply_wave_resubmits.to_string(),
    ]);
    t.row(vec!["event drops".into(), report.event_drops.to_string()]);
    t.row(vec![
        "tenant 0 ledger".into(),
        format!("{} ops, {} bytes", usage.ops, usage.bytes),
    ]);
    out.push_str(
        "Fault storm on a real 8-domain boot (one engine shard per card, QoS \
         enforcing): external clients echo through the shared listening port \
         while one domain is crashed and another wedged mid-run.\n\n",
    );
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nA dead shard is fenced, its wreck published verbatim (already-\
         computed replies first-class, `Gone` for admitted-but-unserved \
         tags), its connections scrubbed, its listeners re-homed through one \
         `ShardFenced` log append, its leases force-recalled, and a \
         replacement seeded from the observer snapshot under live traffic. \
         Clients observe a bounded blackout as severed connections — never a \
         lost or duplicated reply — and the revived domains serve again \
         through their re-joined listeners.\n",
    );

    let outcome = lag_rig();
    out.push_str(&format!(
        "\nReplica-lag rig (2 shards, `max_lag` = 8): a stalled replica is \
         compacted past, overruns on its next sync, and rebuilds from the \
         observer snapshot: {} overrun(s) recovered, diverged: {}.\n",
        outcome.0, outcome.1
    ));

    FailoverOutcome {
        report: out,
        domains: DOMAINS,
        failovers,
        blackout_ms,
        echo_mismatches: mismatches.load(Relaxed),
        stuck: stuck.load(Relaxed),
        severed: severed.load(Relaxed),
        ok_before,
        ok_after,
        p99_before_us: p99_before,
        p99_after_us: p99_after,
        converged,
        event_drops: report.event_drops,
        clean: report.clean(),
        lag_recovered: outcome.0,
        lag_diverged: outcome.1,
    }
}

/// The E9 replica-lag rig: two shards over one control spine with a
/// tiny lag bound. Shard 1 never polls while shard 0 churns the shared
/// port past the compaction high-water mark, so the log is forced past
/// shard 1's cursor ([`solros_faults::FaultKind::OplogReplicaLag`], one
/// armed sync stall models the lag window). Its next sync overruns and
/// rebuilds from the observer snapshot; both replicas must then agree.
fn lag_rig() -> (u64, bool) {
    use solros::proxy_engine::OpHandler;
    use solros::tcp_proxy::{NetChannelHost, TcpControl, TcpProxy};
    use solros::transport::{event_ring, Channel};
    use solros::RoundRobin;
    use solros_pcie::PcieCounters;
    use solros_proto::net_msg::{NetRequest, NetResponse};

    const PORT: u16 = 9_200;

    let network = solros_netdev::Network::new();
    let control = TcpControl::with_max_lag(2, 2, 8);
    let mut shards = Vec::new();
    for d in 0..2usize {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(Arc::clone(&counters));
        let (evt_tx, _evt_rx) = event_ring(counters);
        let (proxy, _stats) = TcpProxy::shard(
            Arc::clone(&network),
            Arc::clone(&control),
            d,
            vec![d],
            vec![NetChannelHost {
                req_rx: ch.req_rx,
                resp_tx: ch.resp_tx,
                evt_tx,
            }],
            Box::new(RoundRobin::default()),
        );
        shards.push(proxy);
    }
    // One armed stall: shard 1's first sync attempt is the injected lag.
    shards[1].faults().arm_sync_stalls(1);

    // Listener churn on shard 0 appends two ops per cycle; past the
    // high-water mark compaction forces the floor beyond shard 1's
    // frozen cursor.
    for _ in 0..3_000 {
        let NetResponse::Socket { sock } = shards[0].handle(0, NetRequest::Socket) else {
            panic!("socket");
        };
        assert!(matches!(
            shards[0].handle(0, NetRequest::Bind { sock, port: PORT }),
            NetResponse::Ok
        ));
        assert!(matches!(
            shards[0].handle(0, NetRequest::Listen { sock, backlog: 1 }),
            NetResponse::Ok
        ));
        assert!(matches!(
            shards[0].handle(0, NetRequest::Close { sock }),
            NetResponse::Ok
        ));
        shards[0].poll();
    }

    shards[1].poll(); // consumes the armed stall: the lag window
    shards[1].poll(); // overruns and rebuilds from the observer
    let recovered = control.overruns_recovered();
    let diverged = shards[0].replica_fingerprint() != shards[1].replica_fingerprint();
    (recovered, diverged)
}

/// Extension E9 — domain failover: crash-tolerant engine shards with
/// oplog rebuild and lease reclamation, gated by the fault storm above.
pub fn domain_failover() -> FailoverOutcome {
    failover_storm()
}

/// Outcome of the E10 hierarchical-QoS churn storm, plus the hot-path
/// allocation probe. CI gates on the victim SLO, zero paced sheds,
/// bounded flow-table occupancy, and zero allocations per steady-state
/// admission.
pub struct HierarchyOutcome {
    /// Rendered markdown report.
    pub report: String,
    /// Paced FS victim p99 queueing+service latency, µs.
    pub victim_fs_p99_us: f64,
    /// Paced TCP victim p99 queueing+service latency, µs.
    pub victim_tcp_p99_us: f64,
    /// Sheds charged to either paced victim flow (must be 0).
    pub paced_sheds: u64,
    /// Distinct churned tenant ids the aggressor burned through.
    pub ever_seen: u64,
    /// Max dynamic flows holding queued work at any one time.
    pub peak_active: usize,
    /// High-water mark of live dynamic flow-table entries.
    pub peak_live: usize,
    /// Dynamic flow-table entries still live after the churn settled.
    pub live_after: usize,
    /// Flow-table accounting drift: admitted - (live + reclaimed); any
    /// nonzero value means the occupancy ledger leaks.
    pub occupancy_drift: i64,
    /// Heap allocations observed across the measured steady-state
    /// admission window (must be 0).
    pub admission_allocs: u64,
    /// Admissions in that measured window (for the allocs/op line).
    pub admission_ops: u64,
}

/// Extension E10 — host-global hierarchical QoS under tenant-id churn.
///
/// One aggressor floods *both* control-plane services (FS and TCP)
/// through a shared [`solros_qos::HostScheduler`] hierarchy while churning
/// 100k+ distinct tenant ids — the sybil version of the E3 flood, and
/// exactly the workload that made the flat scheduler's ever-seen `Vec`
/// untenable. Two paced victim tenants (one per service) must keep
/// their SLO with zero sheds; the sharded flow tables must stay
/// O(active): lazily admitted on first frame, epoch-GC'd once idle, so
/// occupancy tracks the backlog window, never the 100k+ ids ever seen.
///
/// A second, single-threaded measured phase drives the steady-state
/// admission path (hash-hit tenant lookup → submit → dispatch) under
/// the process allocation probe: the regression gate is **zero** heap
/// allocations per admission, pinning the satellite that killed the
/// per-admission `format!` + linear scan.
///
/// Entirely deterministic: virtual clock, no RNG.
pub fn hierarchical_qos() -> HierarchyOutcome {
    use solros_qos::{
        Dispatch, FlowSpec, HostConfig, HostGate, HostScheduler, QosClass, QosConfig, Service,
        Verdict,
    };

    const VICTIM_FS_BYTES: u64 = 4 * 1024;
    const VICTIM_TCP_BYTES: u64 = 1024;
    const VICTIM_FS_PERIOD_NS: u64 = 50_000; // 20 kops/s paced reads.
    const VICTIM_TCP_PERIOD_NS: u64 = 50_000; // 20 kops/s paced sends.
    const AGGR_BYTES: u64 = 16 * 1024;
    /// Fresh tenant ids the aggressor burns through per 1 ms window.
    const CHURN_PER_MS: u64 = 100;
    /// Requests each churned id submits per service before moving on.
    const OPS_PER_ID: usize = 2;
    const DURATION_NS: u64 = 1_200_000_000; // 1.2 s: 120k churned ids.
    /// Victim p99 SLO: the flood is sheddable with a 2 ms deadline, so
    /// the backlog the victim can get stuck behind is bounded by that
    /// deadline window plus a DWRR rotation — ~4 ms at 1 byte/ns; 5 ms
    /// leaves headroom. A flood frame, for contrast, waits 100+ ms or
    /// sheds.
    const SLO_US: f64 = 5_000.0;

    let cfg = QosConfig::multi_tenant();
    // Short epochs so the GC horizon — not the run length — bounds the
    // table: a churned id's flow lives ~3 epochs past its last frame.
    let host = HostScheduler::new(HostConfig {
        epoch_ns: 500_000,
        gc_idle_epochs: 2,
        ..HostConfig::default()
    });
    let specs = |svc: &str| {
        vec![
            FlowSpec::from_class(
                format!("{svc}/high"),
                QosClass::High,
                cfg.class(QosClass::High),
            ),
            FlowSpec::from_class(
                format!("{svc}/normal"),
                QosClass::Normal,
                cfg.class(QosClass::Normal),
            ),
            FlowSpec::from_class(
                format!("{svc}/best-effort"),
                QosClass::BestEffort,
                cfg.class(QosClass::BestEffort),
            ),
        ]
    };
    // Churn floods the sheddable best-effort class; victims pace the
    // non-sheddable normal class. One gate shard per service, both
    // reporting to the one host directory.
    const NORMAL: usize = 1;
    const BEST: usize = 2;
    let mut gates = [
        HostGate::new(
            specs("fs"),
            cfg.quantum_bytes,
            cfg.overload_threshold,
            &host,
            Service::Fs,
            0,
        ),
        HostGate::new(
            specs("tcp"),
            cfg.quantum_bytes,
            cfg.overload_threshold,
            &host,
            Service::Tcp,
            0,
        ),
    ];
    let victim_tenant = [2u64, 3u64];
    let victim_bytes = [VICTIM_FS_BYTES, VICTIM_TCP_BYTES];
    let victim_flow = [
        gates[0].flow_for_tenant(victim_tenant[0], NORMAL),
        gates[1].flow_for_tenant(victim_tenant[1], NORMAL),
    ];

    let mut now = 0u64;
    let mut next_victim = [0u64, 0u64];
    let mut next_churn_id = 1_000_000u64;
    let mut churned_through_ns = 0u64; // ids owed = elapsed ms × rate
    let mut hist = [Histogram::new(), Histogram::new()];
    let mut victim_sheds = [0u64, 0u64];
    let mut aggr_sheds = 0u64;
    // Dynamic flows holding queued work right now / at peak, tracked
    // exactly: +1 when a churned flow's queue goes 0→1, −1 on 1→0.
    let mut active_now = 0usize;
    let mut peak_active = 0usize;

    // Drains one gate until idle-or-rate-limited, advancing the virtual
    // clock by the service time (1 byte/ns) of everything it runs.
    // Returns false once the gate yields nothing.
    fn drain_one<T: Copy>(
        g: &mut HostGate<(u64, T)>,
        now: &mut u64,
        hist: &mut Histogram,
        victim_flow: usize,
        victim_sheds: &mut u64,
        aggr_sheds: &mut u64,
        active_now: &mut usize,
    ) -> bool {
        match g.dispatch(*now) {
            Dispatch::Run {
                flow,
                item: (bytes, _),
                wait_ns,
            } => {
                *now += bytes; // 1 byte/ns service point per service.
                if flow == victim_flow {
                    hist.record(SimTime::from_ns(wait_ns + bytes));
                } else if g.queued(flow) == 0 {
                    *active_now -= 1;
                }
                true
            }
            Dispatch::Shed { flow, .. } => {
                if flow == victim_flow {
                    *victim_sheds += 1;
                } else {
                    *aggr_sheds += 1;
                    if g.queued(flow) == 0 {
                        *active_now -= 1;
                    }
                }
                true
            }
            Dispatch::Idle => false,
        }
    }

    while now < DURATION_NS {
        // Paced victims, one per service.
        for s in 0..2 {
            while next_victim[s] <= now {
                match gates[s].submit(
                    victim_flow[s],
                    victim_bytes[s],
                    next_victim[s],
                    (victim_bytes[s], true),
                ) {
                    Verdict::Admitted => {}
                    Verdict::Shed { .. } => victim_sheds[s] += 1,
                }
                next_victim[s] += [VICTIM_FS_PERIOD_NS, VICTIM_TCP_PERIOD_NS][s];
            }
        }
        // The churning aggressor: every window brings fresh tenant ids,
        // each flooding bulk frames at BOTH services, then never again.
        while churned_through_ns + 1_000_000 / CHURN_PER_MS <= now {
            churned_through_ns += 1_000_000 / CHURN_PER_MS;
            let id = next_churn_id;
            next_churn_id += 1;
            for g in gates.iter_mut() {
                let flow = g.flow_for_tenant(id, BEST);
                for _ in 0..OPS_PER_ID {
                    let was_empty = g.queued(flow) == 0;
                    match g.submit(flow, AGGR_BYTES, now, (AGGR_BYTES, false)) {
                        Verdict::Admitted => {
                            if was_empty {
                                active_now += 1;
                                peak_active = peak_active.max(active_now);
                            }
                        }
                        Verdict::Shed { .. } => aggr_sheds += 1,
                    }
                }
            }
        }
        // Epoch upkeep (GC + host rebalance), as the engine does per
        // cycle, then serve both service points.
        let mut progressed = false;
        for s in 0..2 {
            gates[s].maintain(now);
            progressed |= drain_one(
                &mut gates[s],
                &mut now,
                &mut hist[s],
                victim_flow[s],
                &mut victim_sheds[s],
                &mut aggr_sheds,
                &mut active_now,
            );
        }
        if !progressed {
            now = next_victim[0].min(next_victim[1]).max(now + 1);
        }
    }
    let peak_live = host.snapshot().peak_live_flows;

    // Churn over: drain the backlog, then idle through GC epochs until
    // the table holds only what is still active. The victims keep
    // pacing — reclamation must not disturb live service.
    let mut settle = now;
    while settle < now + 10 * 2_000_000 {
        settle += 500_000;
        for s in 0..2 {
            gates[s].maintain(settle);
            while drain_one(
                &mut gates[s],
                &mut settle,
                &mut hist[s],
                victim_flow[s],
                &mut victim_sheds[s],
                &mut aggr_sheds,
                &mut active_now,
            ) {}
        }
    }
    let snap = host.snapshot();
    let ever_seen = next_churn_id - 1_000_000;
    // The two victim flows are dynamic entries too; everything churned
    // must be gone.
    let live_after = snap.live_flows;
    let occupancy_drift =
        snap.admitted_flows as i64 - (snap.live_flows as u64 + snap.reclaimed_flows) as i64;

    // Per-class stats before the measured phase below muddies the
    // NORMAL slot with its warm-up traffic.
    let fs_snap = gates[0].stats().flow(NORMAL);
    let tcp_snap = gates[1].stats().flow(NORMAL);

    // ---- Measured phase: zero-alloc steady-state admission. ----
    // Warm a small working set of tenants on the FS gate (first frame
    // admits and allocates — that is the lazy path, not the steady one),
    // pre-grow their queues to the depth the loop sustains, then count
    // heap allocations across hash-hit lookup → submit → dispatch.
    const WARM_TENANTS: u64 = 64;
    const MEASURED_OPS: u64 = 100_000;
    let mut flows = Vec::with_capacity(WARM_TENANTS as usize);
    for t in 0..WARM_TENANTS {
        flows.push(gates[0].flow_for_tenant(5_000_000 + t, NORMAL));
    }
    let mut mnow = settle;
    for &f in &flows {
        // Grow each queue once to its steady depth, then drain.
        for _ in 0..4 {
            assert!(matches!(
                gates[0].submit(f, 512, mnow, (512, false)),
                Verdict::Admitted
            ));
        }
    }
    while matches!(
        gates[0].dispatch(mnow),
        Dispatch::Run { .. } | Dispatch::Shed { .. }
    ) {}
    let alloc_before = crate::alloc_probe::allocs();
    for i in 0..MEASURED_OPS {
        let t = 5_000_000 + (i % WARM_TENANTS);
        let f = gates[0].flow_for_tenant(t, NORMAL);
        mnow += 64;
        match gates[0].submit(f, 512, mnow, (512, false)) {
            Verdict::Admitted => {}
            Verdict::Shed { .. } => unreachable!("unbacklogged normal flow never sheds"),
        }
        let _ = gates[0].dispatch(mnow);
    }
    let admission_allocs = crate::alloc_probe::allocs() - alloc_before;

    let victim_fs_p99_us = hist[0].percentile(99.0).as_us_f64();
    let victim_tcp_p99_us = hist[1].percentile(99.0).as_us_f64();

    let mut t = Table::new(vec![
        "service",
        "victim p99 (us)",
        "victim dispatched",
        "victim sheds",
        "SLO (us)",
    ]);
    t.row(vec![
        "fs".into(),
        format!("{victim_fs_p99_us:.0}"),
        fs_snap.dispatched.to_string(),
        victim_sheds[0].to_string(),
        format!("{SLO_US:.0}"),
    ]);
    t.row(vec![
        "tcp".into(),
        format!("{victim_tcp_p99_us:.0}"),
        tcp_snap.dispatched.to_string(),
        victim_sheds[1].to_string(),
        format!("{SLO_US:.0}"),
    ]);
    let mut report = t.to_markdown();

    report.push_str("\nFlow-table occupancy / GC ledger (host-wide, both shards):\n\n");
    let mut occ = Table::new(vec![
        "churned tenant ids",
        "dynamic flows admitted",
        "peak active",
        "peak live",
        "live after churn",
        "reclaimed",
        "GC epochs",
        "aggressor sheds",
    ]);
    occ.row(vec![
        ever_seen.to_string(),
        snap.admitted_flows.to_string(),
        peak_active.to_string(),
        peak_live.to_string(),
        live_after.to_string(),
        snap.reclaimed_flows.to_string(),
        format!("{} + {}", gates[0].gc_epoch(), gates[1].gc_epoch()),
        aggr_sheds.to_string(),
    ]);
    report.push_str(&occ.to_markdown());
    report.push_str(&format!(
        "\nSteady-state admission: {admission_allocs} heap allocations across \
         {MEASURED_OPS} hash-hit admissions ({:.4}/op; gate: 0).\n",
        admission_allocs as f64 / MEASURED_OPS as f64
    ));
    report.push_str(&format!(
        "\nOne aggressor floods FS and TCP through {ever_seen} churned tenant \
         ids; the tenant→service→flow tables admit each id lazily and \
         epoch-GC it once idle, so occupancy peaks at {peak_live} entries \
         (vs {ever_seen} ever seen) and settles to {live_after}. The paced \
         victims on both services keep p99 under the {SLO_US:.0} µs SLO with \
         zero sheds — every shed lands on the churned sheddable flood.\n",
    ));

    HierarchyOutcome {
        report,
        victim_fs_p99_us,
        victim_tcp_p99_us,
        paced_sheds: victim_sheds[0] + victim_sheds[1],
        ever_seen,
        peak_active,
        peak_live,
        live_after,
        occupancy_drift,
        admission_allocs,
        admission_ops: MEASURED_OPS,
    }
}

/// Renders all extensions.
pub fn run_all() -> String {
    let mut out = String::from("# Solros-rs — extension experiments\n");
    for (title, body) in [
        ("E1 — TCP latency under load (DES)", latency_under_load()),
        (
            "E2 — shared host cache across co-processors",
            shared_cache(),
        ),
        ("E3 — QoS gate under overload", qos_overload()),
        ("E4 — submission pipeline vs queue depth", queue_depth()),
        ("E5 — fault injection and recovery", fault_recovery()),
        ("E6 — extent-lease data plane", lease_data_plane().report),
        (
            "E7 — sharded control-plane scalability",
            control_plane_scaling().report,
        ),
        (
            "E8 — symmetric reply wave and TCP send coalescing",
            reply_wave().report,
        ),
        (
            "E9 — domain failover under a fault storm",
            domain_failover().report,
        ),
        (
            "E10 — hierarchical QoS under tenant-id churn",
            hierarchical_qos().report,
        ),
    ] {
        out.push_str(&format!("\n## {title}\n\n"));
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_hurts_the_slow_stack_first() {
        // At 10 kreq/s the Phi stack runs at ~70% utilization and its tail
        // inflates; Solros at the same load barely queues.
        let solros = simulate_loaded(StackKind::Solros, 10e3, 6_000, 1);
        let phi = simulate_loaded(StackKind::PhiLinux, 10e3, 6_000, 1);
        let s99 = solros.percentile(99.0).as_us_f64();
        let p99 = phi.percentile(99.0).as_us_f64();
        assert!(p99 > 4.0 * s99, "phi p99 {p99} vs solros {s99}");
        // And at light load the gap is just the service-time gap (<~8x).
        let solros_light = simulate_loaded(StackKind::Solros, 1e3, 6_000, 1);
        let phi_light = simulate_loaded(StackKind::PhiLinux, 1e3, 6_000, 1);
        let ratio_light =
            phi_light.percentile(99.0).as_us_f64() / solros_light.percentile(99.0).as_us_f64();
        assert!(ratio_light < 8.0, "light-load ratio {ratio_light}");
    }

    #[test]
    fn deterministic_simulation() {
        let a = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        let b = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn qos_bounds_victim_tail_under_flood() {
        let off = simulate_overload(false, 64);
        let on = simulate_overload(true, 64);
        // FIFO: the victim waits behind tens of MB of backlog.
        assert!(
            off.victim_p99_us > 4_000.0,
            "fifo should collapse: {:.0}us",
            off.victim_p99_us
        );
        // Gate: bounded by a few quanta of interleaving.
        assert!(
            on.victim_p99_us < 1_000.0,
            "gated p99 {:.0}us not bounded",
            on.victim_p99_us
        );
        // The victim's paced demand (~82 MB/s) is fully served.
        assert!(
            on.victim_mbps > 78.0,
            "victim goodput {:.1}",
            on.victim_mbps
        );
        // The aggressor still gets the leftover capacity, and overload
        // was shed explicitly rather than silently queued forever.
        assert!(
            on.aggr_mbps > 500.0,
            "aggressor starved: {:.1}",
            on.aggr_mbps
        );
        let heavy = simulate_overload(true, 256);
        assert!(heavy.shed > 0, "overload shedding never triggered");
    }

    #[test]
    fn dwrr_shares_track_weights_within_10_percent() {
        let weights = [8u32, 4, 1];
        let total: u32 = weights.iter().sum();
        for (&w, &s) in weights
            .iter()
            .zip(simulate_weighted_shares(&weights).iter())
        {
            let target = w as f64 / total as f64;
            let err = (s - target).abs() / target;
            assert!(err < 0.10, "weight {w}: share {s:.3} vs target {target:.3}");
        }
    }

    #[test]
    fn overload_simulation_is_deterministic() {
        let a = simulate_overload(true, 64);
        let b = simulate_overload(true, 64);
        assert_eq!(a.victim_p99_us, b.victim_p99_us);
        assert_eq!(a.shed, b.shed);
    }

    #[test]
    fn queue_depth_pipelining_scales_throughput() {
        let pts = sweep_queue_depth(&[1, 32], 256);
        let (qd1, qd32) = (&pts[0], &pts[1]);
        assert!(
            qd32.mbps >= 3.0 * qd1.mbps,
            "QD32 {:.1} MB/s vs QD1 {:.1} MB/s: pipelining gained < 3x",
            qd32.mbps,
            qd1.mbps
        );
        // The proxy coalesces each wave into one vectored submission, so
        // doorbells and interrupts per op must collapse with depth.
        assert!(
            qd32.doorbells_per_op < 0.5 * qd1.doorbells_per_op,
            "doorbells/op {:.3} vs {:.3}",
            qd32.doorbells_per_op,
            qd1.doorbells_per_op
        );
        assert!(
            qd32.interrupts_per_op < 0.5 * qd1.interrupts_per_op,
            "interrupts/op {:.3} vs {:.3}",
            qd32.interrupts_per_op,
            qd1.interrupts_per_op
        );
    }

    #[test]
    fn cache_sharing_scales_hit_rate() {
        // Run the small/large comparison directly (4-card boot is cheap).
        let report = shared_cache();
        assert!(report.contains("| 4 |"), "{report}");
        // Parse hit rates and check monotonic improvement 1 -> 4 cards.
        let rate = |n: &str| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with(&format!("| {n} |")))
                .and_then(|l| l.split('|').nth(2))
                .map(|c| c.trim().trim_end_matches('%').parse().unwrap())
                .unwrap()
        };
        assert!(
            rate("4") > rate("1"),
            "sharing should raise the hit rate: {report}"
        );
    }

    #[test]
    fn multi_tenant_ledger_accounts_and_sheds_bulk_only() {
        let flows = simulate_multi_tenant();
        assert_eq!(flows.len(), 3);
        for f in &flows {
            assert!(f.accounted(), "flow {} leaks requests", f.name);
        }
        assert_eq!(
            flows[0].shed + flows[1].shed,
            0,
            "paced tenants must never shed"
        );
        assert!(flows[2].shed > 0, "bulk best-effort must absorb shedding");
        assert!(
            flows[0].wait.percentile(99.0) <= flows[2].wait.percentile(99.0),
            "the weighted gate must keep the High tenant's tail below bulk's"
        );
    }

    #[test]
    fn tenant_depth_sweep_sheds_best_effort_at_depth() {
        let shallow = simulate_tenant_depth(4);
        let deep = simulate_tenant_depth(64);
        for f in shallow.iter().chain(deep.iter()) {
            assert!(f.accounted(), "flow {} leaks requests", f.name);
        }
        let shed = |flows: &[FlowSnapshot]| flows.iter().map(|f| f.shed).sum::<u64>();
        assert!(
            shed(&deep) > shed(&shallow),
            "deeper shared queues must shed more: {} vs {}",
            shed(&deep),
            shed(&shallow)
        );
        assert!(
            deep[0].wait.percentile(99.0) < deep[2].wait.percentile(99.0),
            "High must wait less than BestEffort at depth"
        );
    }

    #[test]
    fn lease_bypass_and_recall_coherence() {
        let o = lease_data_plane();
        assert!(
            o.leased_rpcs_per_op < 0.05,
            "leased hot reads still cost {:.3} RPCs/op",
            o.leased_rpcs_per_op
        );
        assert_eq!(
            o.stale_generation_reads, 0,
            "a leased op completed against a silently stale mapping"
        );
        assert!(o.ledger_clean, "recall ledger dirty after the storm");
    }

    #[test]
    fn fault_scenarios_recover_clean() {
        let scenarios = fault_scenarios();
        for s in &scenarios {
            assert!(
                s.report.clean(),
                "{}: hung={} leaked={}",
                s.name,
                s.report.hung_tags,
                s.report.leaked_credits
            );
        }
        // Faults disabled: nothing injected, nothing retried, full goodput.
        assert_eq!(scenarios[0].report.injected, 0);
        assert_eq!(scenarios[0].report.retried, 0);
        assert_eq!(scenarios[0].report.goodput(), 1.0);
        // Armed sweeps: bursts fire and the retry layer absorbs them all.
        for s in &scenarios[1..3] {
            assert!(s.report.injected > 0, "{}: plan armed nothing", s.name);
            assert!(s.report.retried > 0, "{}: nothing was retried", s.name);
            assert_eq!(s.report.goodput(), 1.0, "{}: reads failed", s.name);
        }
        // Link-reset scenarios: pending tags drained, link revived.
        for s in &scenarios[3..] {
            assert_eq!(s.report.resets, 1, "{}", s.name);
            assert!(s.report.drained > 0, "{}: nothing drained", s.name);
            assert!(s.report.completed > 0, "{}: link never revived", s.name);
        }
    }

    #[test]
    fn reply_wave_publishes_collapse_with_depth() {
        let pts = sweep_reply_wave(&[1, 32], 192);
        assert_eq!(pts[0].replies, 192, "every op gets exactly one reply");
        assert_eq!(pts[1].replies, 192, "every op gets exactly one reply");
        // QD1: one settle wave per call — the per-op baseline.
        assert!(
            pts[0].publishes_per_op() >= 0.9,
            "QD1 should pay ~1 publish/op, got {:.3}",
            pts[0].publishes_per_op()
        );
        // QD32: the whole wave settles in a handful of batched enqueues.
        assert!(
            pts[1].publishes_per_op() <= 0.25,
            "QD32 reply publishes/op {:.3} (want <= 0.25)",
            pts[1].publishes_per_op()
        );
    }

    #[test]
    fn tcp_send_coalescing_batches_and_never_leaks() {
        let o = tcp_send_coalescing(&[1, 32], 192);
        assert_eq!(o.tag_leaks, 0, "pending tags after quiescence");
        assert_eq!(o.credit_leaks, 0, "credits held after quiescence");
        assert_eq!(o.event_drops, 0, "events dropped");
        assert_eq!(o.bytes_mismatch, 0, "coalescing lost payload bytes");
        let deep = &o.points[1];
        assert_eq!(deep.staged_sends, 192, "all small sends must stage");
        assert!(
            deep.backend_writes * 4 <= deep.staged_sends,
            "QD32 coalescing under 4x: {} writes for {} sends",
            deep.backend_writes,
            deep.staged_sends
        );
        assert!(
            (deep.reply_publishes as f64) / (deep.replies as f64) <= 0.25,
            "QD32 reply publishes/op {:.3}",
            (deep.reply_publishes as f64) / (deep.replies as f64)
        );
    }

    #[test]
    fn control_sweep_is_deterministic() {
        let a = sweep_control_point(4);
        let b = sweep_control_point(4);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.kops, b.kops);
        assert_eq!(
            (a.lag_p50, a.lag_p99, a.lag_max),
            (b.lag_p50, b.lag_p99, b.lag_max)
        );
    }

    #[test]
    fn sharded_control_plane_scales_and_never_diverges() {
        let one = sweep_control_point(1);
        let eight = sweep_control_point(8);
        assert_eq!(one.divergence + eight.divergence, 0, "replicas diverged");
        let speedup = eight.kops / one.kops;
        assert!(
            speedup >= 3.0,
            "8-domain control plane only {speedup:.2}x over 1-domain"
        );
        // Lag is bounded by the sync cadence: a replica syncing every
        // 3 rounds can trail at most 3 rounds of appends from every
        // domain (plus its own unapplied round).
        let bound = (3 * 8 * E7_ROUND_OPS) as u64;
        assert!(
            eight.lag_max <= bound,
            "lag {} blew the cadence bound {bound}",
            eight.lag_max
        );
    }
}
