//! Extension experiments beyond the paper's figures.
//!
//! * [`latency_under_load`] — the paper measures unloaded ping-pong
//!   latency (Figure 1b); here a discrete-event M/D/1-style simulation
//!   sweeps offered load and shows *where each stack's tail collapses*:
//!   the stock Phi saturates an order of magnitude earlier than Solros.
//! * [`shared_cache`] — §4.3.2's shared-something claim, quantified: when
//!   several co-processors read a Zipf-popular working set, the host-side
//!   cache that one card warmed serves the others.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::Table;
use solros_simkit::{DetRng, Engine, FifoResource, Histogram, SimTime};

/// Simulates `n` Poisson arrivals of 64-byte requests at `rate` req/s
/// through one server of the given stack; returns the latency histogram.
pub fn simulate_loaded(stack: StackKind, rate: f64, n: usize, seed: u64) -> Histogram {
    let perf = NetPerf::paper_default();
    // Server-side processing is half a ping-pong pass; the wire and
    // client side add a fixed offset that does not queue.
    let service = perf.stack_time(stack, 64) / 2;
    let fixed = perf.wire_time(64) * 2;

    let mut engine = Engine::new();
    let server = Rc::new(RefCell::new(FifoResource::new("stack")));
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let mut rng = DetRng::seed(seed);

    let mut at = SimTime::ZERO;
    for _ in 0..n {
        at += SimTime::from_secs_f64(rng.exp(1.0 / rate));
        let server = Rc::clone(&server);
        let hist = Rc::clone(&hist);
        engine.schedule_at(at, move |engine, now| {
            let done = server.borrow_mut().acquire(now, service);
            let hist = Rc::clone(&hist);
            engine.schedule_at(done, move |_, finished| {
                hist.borrow_mut().record(finished - now + fixed);
            });
        });
    }
    engine.run();
    Rc::try_unwrap(hist)
        .ok()
        .expect("engine drained")
        .into_inner()
}

/// Extension E1: p99 latency vs offered load for the three stacks.
pub fn latency_under_load() -> String {
    let mut t = Table::new(vec![
        "offered load (kreq/s)",
        "Host p99 (us)",
        "Phi-Solros p99 (us)",
        "Phi-Linux p99 (us)",
    ]);
    let n = 8_000;
    for rate_k in [1.0f64, 5.0, 10.0, 13.0, 25.0, 50.0] {
        let mut row = vec![format!("{rate_k}")];
        for stack in [StackKind::Host, StackKind::Solros, StackKind::PhiLinux] {
            let h = simulate_loaded(stack, rate_k * 1e3, n, 42);
            let p99 = h.percentile(99.0);
            // Past saturation the queue grows without bound; report that
            // honestly instead of a meaningless number.
            let perf = NetPerf::paper_default();
            let cap = 2.0 / perf.stack_time(stack, 64).as_secs_f64();
            row.push(if rate_k * 1e3 >= cap {
                "saturated".into()
            } else {
                format!("{:.0}", p99.as_us_f64())
            });
        }
        t.row(row);
    }
    let mut out = t.to_markdown();
    let perf = NetPerf::paper_default();
    out.push_str(&format!(
        "\nService capacities: Host ≈ {:.0}k, Solros ≈ {:.0}k, Phi-Linux ≈ {:.0}k req/s — \
         delegating the stack to the host buys an order of magnitude of headroom \
         before the tail collapses.\n",
        2.0 / perf.stack_time(StackKind::Host, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::Solros, 64).as_secs_f64() / 1e3,
        2.0 / perf.stack_time(StackKind::PhiLinux, 64).as_secs_f64() / 1e3,
    ));
    out
}

/// Extension E2: the shared host-side buffer cache across co-processors
/// (functional run on the real system).
pub fn shared_cache() -> String {
    use solros::control::Solros;
    use solros_machine::MachineConfig;

    let files = 40usize;
    let file_bytes = 64 * 1024usize;
    let reads_per_cp = 120usize;

    let run = |coprocs: usize| -> (f64, u64, u64) {
        let sys = Solros::boot(MachineConfig {
            sockets: 1, // Same socket: P2P allowed, so hits are real wins.
            coprocs,
            ssd_blocks: 16_384,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: files * file_bytes / 4096 + 64,
        });
        // Populate via the host view, then drop every cached page so all
        // warming comes from the measured reads.
        let host = sys.host_fs();
        let mut inos = Vec::new();
        for f in 0..files {
            let ino = host.create(&format!("/lib{f}")).unwrap();
            host.write(ino, 0, &vec![f as u8; file_bytes]).unwrap();
            inos.push(ino);
        }
        for &ino in &inos {
            host.cache().invalidate_ino(ino);
        }
        let h0 = host.cache().stats().hits;
        let m0 = host.cache().stats().misses;
        std::thread::scope(|s| {
            for cp in 0..coprocs {
                let fs = Arc::clone(sys.data_plane(cp).fs());
                s.spawn(move || {
                    let mut rng = DetRng::seed(cp as u64);
                    for _ in 0..reads_per_cp {
                        let f = rng.zipf(files, 0.9);
                        let (h, _) = fs.open(&format!("/lib{f}"), false, false, true).unwrap();
                        let _ = fs.read_to_vec(h, 0, file_bytes).unwrap();
                    }
                });
            }
        });
        let hits = host.cache().stats().hits - h0;
        let misses = host.cache().stats().misses - m0;
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        let dev_reads = sys.machine().nvme.stats().blocks_read;
        sys.shutdown();
        (rate, hits, dev_reads)
    };

    let mut t = Table::new(vec![
        "co-processors",
        "cache hit rate",
        "hits",
        "device blocks read",
    ]);
    for n in [1usize, 2, 4] {
        let (rate, hits, dev) = run(n);
        t.row(vec![
            n.to_string(),
            format!("{:.1}%", rate * 100.0),
            hits.to_string(),
            dev.to_string(),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nEvery co-processor reads the same Zipf-popular library (O_BUFFER path). \
         More cards share one host cache, so the hit rate climbs while device \
         reads per delivered byte fall — the shared-something architecture of §4.\n",
    );
    out
}

/// Renders both extensions.
pub fn run_all() -> String {
    let mut out = String::from("# Solros-rs — extension experiments\n");
    for (title, body) in [
        ("E1 — TCP latency under load (DES)", latency_under_load()),
        (
            "E2 — shared host cache across co-processors",
            shared_cache(),
        ),
    ] {
        out.push_str(&format!("\n## {title}\n\n"));
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_hurts_the_slow_stack_first() {
        // At 10 kreq/s the Phi stack runs at ~70% utilization and its tail
        // inflates; Solros at the same load barely queues.
        let solros = simulate_loaded(StackKind::Solros, 10e3, 6_000, 1);
        let phi = simulate_loaded(StackKind::PhiLinux, 10e3, 6_000, 1);
        let s99 = solros.percentile(99.0).as_us_f64();
        let p99 = phi.percentile(99.0).as_us_f64();
        assert!(p99 > 4.0 * s99, "phi p99 {p99} vs solros {s99}");
        // And at light load the gap is just the service-time gap (<~8x).
        let solros_light = simulate_loaded(StackKind::Solros, 1e3, 6_000, 1);
        let phi_light = simulate_loaded(StackKind::PhiLinux, 1e3, 6_000, 1);
        let ratio_light =
            phi_light.percentile(99.0).as_us_f64() / solros_light.percentile(99.0).as_us_f64();
        assert!(ratio_light < 8.0, "light-load ratio {ratio_light}");
    }

    #[test]
    fn deterministic_simulation() {
        let a = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        let b = simulate_loaded(StackKind::Host, 5e3, 2_000, 9);
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn cache_sharing_scales_hit_rate() {
        // Run the small/large comparison directly (4-card boot is cheap).
        let report = shared_cache();
        assert!(report.contains("| 4 |"), "{report}");
        // Parse hit rates and check monotonic improvement 1 -> 4 cards.
        let rate = |n: &str| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with(&format!("| {n} |")))
                .and_then(|l| l.split('|').nth(2))
                .map(|c| c.trim().trim_end_matches('%').parse().unwrap())
                .unwrap()
        };
        assert!(
            rate("4") > rate("1"),
            "sharing should raise the hit rate: {report}"
        );
    }
}
