//! Figure 1b: TCP latency distribution for 64-byte messages.
//!
//! Paper result: the host answers in tens of microseconds, Solros adds a
//! bounded forwarding cost, and the stock Phi's on-card TCP stack has
//! both a much higher median and a heavy tail — 7× worse 99th-percentile
//! latency than Solros.

use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::Table;
use solros_simkit::{DetRng, Histogram};

/// Samples per curve.
pub const SAMPLES: usize = 20_000;

/// Builds the three latency histograms.
pub fn histograms(seed: u64) -> [(&'static str, Histogram); 3] {
    let p = NetPerf::paper_default();
    let mut rng = DetRng::seed(seed);
    let mut out = [
        ("Host", Histogram::new()),
        ("Phi-Solros", Histogram::new()),
        ("Phi-Linux", Histogram::new()),
    ];
    for _ in 0..SAMPLES {
        out[0].1.record(p.sample_rtt(StackKind::Host, 64, &mut rng));
        out[1]
            .1
            .record(p.sample_rtt(StackKind::Solros, 64, &mut rng));
        out[2]
            .1
            .record(p.sample_rtt(StackKind::PhiLinux, 64, &mut rng));
    }
    out
}

/// Regenerates the figure: percentile table + CDF samples.
pub fn run() -> String {
    let hists = histograms(42);
    let mut t = Table::new(vec![
        "percentile",
        "Host (us)",
        "Phi-Solros (us)",
        "Phi-Linux (us)",
    ]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9] {
        let mut row = vec![format!("p{p}")];
        for (_, h) in &hists {
            row.push(format!("{:.1}", h.percentile(p).as_us_f64()));
        }
        t.row(row);
    }
    let mut out = t.to_markdown();

    // CDF samples on the paper's log x-axis (10 us .. 2000 us).
    let mut cdf = Table::new(vec!["latency (us)", "Host", "Phi-Solros", "Phi-Linux"]);
    for us in [10u64, 20, 40, 60, 100, 200, 400, 700, 1000, 2000] {
        let mut row = vec![us.to_string()];
        for (_, h) in &hists {
            row.push(format!(
                "{:.1}%",
                h.cdf_at(solros_simkit::SimTime::from_us(us)) * 100.0
            ));
        }
        cdf.row(row);
    }
    out.push('\n');
    out.push_str(&cdf.to_markdown());

    let ratio =
        hists[2].1.percentile(99.0).as_secs_f64() / hists[1].1.percentile(99.0).as_secs_f64();
    out.push_str(&format!(
        "\np99 Phi-Linux / Phi-Solros: {ratio:.1}x (paper: ~7x)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_and_tail_ratio() {
        let h = histograms(7);
        // Median ordering: Host < Solros < PhiLinux.
        assert!(h[0].1.percentile(50.0) < h[1].1.percentile(50.0));
        assert!(h[1].1.percentile(50.0) < h[2].1.percentile(50.0));
        // The paper's 7x p99 claim (accept 4-12x).
        let ratio = h[2].1.percentile(99.0).as_secs_f64() / h[1].1.percentile(99.0).as_secs_f64();
        assert!((4.0..=12.0).contains(&ratio), "p99 ratio {ratio}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = histograms(3);
        let b = histograms(3);
        for i in 0..3 {
            assert_eq!(a[i].1.percentile(99.0), b[i].1.percentile(99.0));
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("| p99 |"));
        assert!(r.contains("p99 Phi-Linux / Phi-Solros"));
    }
}
