//! Figure 15 (reconstructed): shared listening socket scaling across
//! co-processors (§4.4.3).
//!
//! Functional part: boot real systems with 1, 2, and 4 co-processors,
//! drive a connection storm from the simulated client machine, and verify
//! that round-robin balancing distributes connections evenly. Timed part:
//! aggregate request throughput scales with the number of co-processors
//! because each added card brings its own request-handling capacity while
//! the host stack/proxy stays off the critical path.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::Table;

/// Connections in the functional storm.
pub const CONNS: u64 = 48;

/// Runs the functional storm on `n` co-processors; returns per-coproc
/// accepted counts.
pub fn storm(n: usize) -> Vec<u64> {
    let cfg = MachineConfig {
        sockets: 2,
        coprocs: n,
        ssd_blocks: 4_096,
        coproc_window_bytes: 1 << 20,
        host_cache_pages: 64,
    };
    let sys = Solros::boot(cfg);
    let mut listeners = Vec::new();
    for i in 0..n {
        listeners.push(sys.data_plane(i).net().listen(7070, 256).unwrap());
    }
    let fabric = Arc::clone(sys.network());
    for c in 0..CONNS {
        loop {
            if fabric.client_connect(7070, c).is_ok() {
                break;
            }
            std::thread::yield_now();
        }
    }
    // Wait for the proxy to assign every connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let total: u64 = (0..n)
            .map(|i| sys.tcp_proxy_stats(0).accepted[i].load(Ordering::Relaxed))
            .sum();
        if total >= CONNS || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::yield_now();
    }
    let counts: Vec<u64> = (0..n)
        .map(|i| sys.tcp_proxy_stats(0).accepted[i].load(Ordering::Relaxed))
        .collect();
    drop(listeners);
    sys.shutdown();
    counts
}

/// Modeled aggregate request rate (kreq/s) for 64-byte requests.
pub fn modeled_kreqs(n: usize) -> f64 {
    let p = NetPerf::paper_default();
    // Each co-processor handles requests at the Solros per-message rate;
    // the host proxy forwards for all of them (it has cores to spare).
    let per_coproc = 1.0 / p.stack_time(StackKind::Solros, 64).as_secs_f64();
    n as f64 * per_coproc / 1e3
}

/// Regenerates the figure.
pub fn run() -> String {
    let mut t = Table::new(vec![
        "co-processors",
        "accepted (per coproc)",
        "spread",
        "modeled kreq/s",
    ]);
    for n in [1usize, 2, 4] {
        let counts = storm(n);
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        t.row(vec![
            n.to_string(),
            format!("{counts:?}"),
            spread.to_string(),
            format!("{:.1}", modeled_kreqs(n)),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str("\nRound-robin keeps the spread ≤ 1; capacity scales linearly with cards.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_across_two_coprocs() {
        let counts = storm(2);
        assert_eq!(counts.iter().sum::<u64>(), CONNS);
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(spread <= 1, "spread {spread} for {counts:?}");
    }

    #[test]
    fn modeled_scaling_is_linear() {
        let one = modeled_kreqs(1);
        let four = modeled_kreqs(4);
        assert!((four / one - 4.0).abs() < 1e-9);
    }
}
