//! Figure 18 (reconstructed): control-plane OS scalability with multiple
//! co-processors (§6.3).
//!
//! Functional part: boot real systems with 1–4 co-processors, each
//! hammering the file-system proxy concurrently, and verify all RPCs
//! complete with the shared SSD serving everyone. Timed part: aggregate
//! delivered bandwidth scales with cards until the device saturates —
//! the control plane itself (fast host cores, one proxy thread per card)
//! is not the bottleneck.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_simkit::report::Table;

use crate::model::{FsModel, FsStack};

/// Reads per co-processor in the functional check.
pub const OPS: usize = 64;
/// Read size.
pub const BYTES: usize = 64 * 1024;

/// Functional storm: every co-processor reads its own file concurrently;
/// returns per-coproc RPC counts observed by the proxies.
pub fn storm(n: usize) -> Vec<u64> {
    let cfg = MachineConfig {
        sockets: 2,
        coprocs: n,
        ssd_blocks: 65_536,
        coproc_window_bytes: 8 << 20,
        host_cache_pages: 128,
    };
    let sys = Solros::boot(cfg);
    // Seed one file per co-processor via the host view.
    let host_fs = sys.host_fs();
    for i in 0..n {
        let ino = host_fs.create(&format!("/f{i}")).unwrap();
        host_fs
            .write(ino, 0, &vec![i as u8; OPS * BYTES / 8])
            .unwrap();
    }
    std::thread::scope(|s| {
        for i in 0..n {
            let fs = Arc::clone(sys.data_plane(i).fs());
            s.spawn(move || {
                let (handle, size) = fs.open(&format!("/f{i}"), false, false, false).unwrap();
                let mut buf = vec![0u8; BYTES];
                for op in 0..OPS {
                    let off = (op * BYTES) as u64 % size.max(1);
                    let _ = fs.read_at(handle, off, &mut buf).unwrap();
                }
            });
        }
    });
    let counts = (0..n)
        .map(|i| sys.fs_proxy_stats(i).rpcs.load(Ordering::Relaxed))
        .collect();
    sys.shutdown();
    counts
}

/// Modeled aggregate read bandwidth (GB/s) with `n` co-processors each
/// driving 2 threads of 64 KB reads — a moderate per-card demand so the
/// scaling (and its eventual saturation at the SSD) is visible.
pub fn modeled_gbps(n: usize) -> f64 {
    let m = FsModel::paper_default();
    let per = m.throughput(FsStack::Solros, true, 2, 64 << 10);
    (per * n as f64).min(m.nvme.read_bw) / 1e9
}

/// Regenerates the figure.
pub fn run() -> String {
    let mut t = Table::new(vec![
        "co-processors",
        "functional RPCs served",
        "modeled aggregate (GB/s)",
    ]);
    for n in [1usize, 2, 4] {
        let counts = storm(n);
        t.row(vec![
            n.to_string(),
            format!("{counts:?}"),
            format!("{:.2}", modeled_gbps(n)),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nThe shared control plane serves all cards; aggregate bandwidth is capped only by \
         the SSD (2.4 GB/s), not by the proxy.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_coprocs_served_concurrently() {
        let counts = storm(2);
        assert_eq!(counts.len(), 2);
        for (i, c) in counts.iter().enumerate() {
            assert!(*c >= OPS as u64, "coproc {i} served {c} RPCs");
        }
    }

    #[test]
    fn modeled_scaling_saturates_at_device() {
        let one = modeled_gbps(1);
        let two = modeled_gbps(2);
        let four = modeled_gbps(4);
        assert!(two > one, "scaling visible: {one} -> {two}");
        assert!(four <= 2.4 + 1e-9, "device cap respected: {four}");
        assert!(four >= two, "no regression with more cards");
    }
}
