//! Figure 18 (reconstructed): control-plane OS scalability with multiple
//! co-processors (§6.3).
//!
//! Functional part: boot real systems with 1–4 co-processors — the boot
//! path shards the control plane per NUMA domain, each shard holding a
//! replica of the shared listener/balancer state behind the TcpControl
//! operation log — and let every card hammer its file-system proxy while
//! also cycling TCP listeners, verifying all RPCs complete and the
//! replicas never diverge (overruns stay 0). Timed part: aggregate
//! delivered bandwidth scales with cards until the device saturates —
//! the control plane itself (fast host cores, one proxy shard per
//! domain) is not the bottleneck. Experiment E7 gates the sharded
//! control plane's op-throughput scaling under virtual time.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use solros::control::Solros;
use solros::LogStats;
use solros_machine::MachineConfig;
use solros_simkit::report::Table;

use crate::model::{FsModel, FsStack};

/// Reads per co-processor in the functional check.
pub const OPS: usize = 64;
/// Read size.
pub const BYTES: usize = 64 * 1024;
/// TCP listener add/close cycles per co-processor — metadata traffic
/// that rides the sharded control plane's operation log.
pub const LISTEN_CYCLES: usize = 4;

/// What one functional storm observed.
pub struct StormOutcome {
    /// Per-coproc RPC counts observed by the FS proxies.
    pub rpcs: Vec<u64>,
    /// TCP proxy shards the boot path created (one per NUMA domain).
    pub domains: usize,
    /// TCP control-log counters at quiescence; `overruns` is the
    /// replica-divergence tripwire and must be 0.
    pub log: LogStats,
}

/// Functional storm: every co-processor reads its own file and cycles
/// TCP listeners concurrently.
pub fn storm(n: usize) -> StormOutcome {
    let cfg = MachineConfig {
        sockets: 2,
        coprocs: n,
        ssd_blocks: 65_536,
        coproc_window_bytes: 8 << 20,
        host_cache_pages: 128,
    };
    let sys = Solros::boot(cfg);
    // Seed one file per co-processor via the host view.
    let host_fs = sys.host_fs();
    for i in 0..n {
        let ino = host_fs.create(&format!("/f{i}")).unwrap();
        host_fs
            .write(ino, 0, &vec![i as u8; OPS * BYTES / 8])
            .unwrap();
    }
    std::thread::scope(|s| {
        for i in 0..n {
            let fs = Arc::clone(sys.data_plane(i).fs());
            let net = sys.data_plane(i).net().clone();
            s.spawn(move || {
                let (handle, size) = fs.open(&format!("/f{i}"), false, false, false).unwrap();
                let mut buf = vec![0u8; BYTES];
                for op in 0..OPS {
                    let off = (op * BYTES) as u64 % size.max(1);
                    let _ = fs.read_at(handle, off, &mut buf).unwrap();
                }
                // Listener churn through the replicated registry: each
                // cycle appends a ListenerAdd and a ListenerDel that every
                // domain's replica must apply.
                for cycle in 0..LISTEN_CYCLES {
                    let port = 20_000 + (i * LISTEN_CYCLES + cycle) as u16;
                    net.listen(port, 4).unwrap().close().unwrap();
                }
            });
        }
    });
    let rpcs = (0..n)
        .map(|i| sys.fs_proxy_stats(i).rpcs.load(Ordering::Relaxed))
        .collect();
    let outcome = StormOutcome {
        rpcs,
        domains: sys.tcp_domains(),
        log: sys.tcp_control_log_stats(),
    };
    sys.shutdown();
    outcome
}

/// Modeled aggregate read bandwidth (GB/s) with `n` co-processors each
/// driving 2 threads of 64 KB reads — a moderate per-card demand so the
/// scaling (and its eventual saturation at the SSD) is visible.
pub fn modeled_gbps(n: usize) -> f64 {
    let m = FsModel::paper_default();
    let per = m.throughput(FsStack::Solros, true, 2, 64 << 10);
    (per * n as f64).min(m.nvme.read_bw) / 1e9
}

/// Regenerates the figure.
pub fn run() -> String {
    let mut t = Table::new(vec![
        "co-processors",
        "tcp shards",
        "functional RPCs served",
        "ctrl-log appends",
        "replica overruns",
        "modeled aggregate (GB/s)",
    ]);
    for n in [1usize, 2, 4] {
        let o = storm(n);
        t.row(vec![
            n.to_string(),
            o.domains.to_string(),
            format!("{:?}", o.rpcs),
            o.log.appends.to_string(),
            o.log.overruns.to_string(),
            format!("{:.2}", modeled_gbps(n)),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(
        "\nThe control plane is sharded per NUMA domain: each TCP proxy shard serves its \
         domain's cards from a local replica of the listener/balancer state, kept convergent \
         through the TcpControl operation log (overruns must read 0). Aggregate bandwidth is \
         capped only by the SSD (2.4 GB/s), not by the proxies; E7 sweeps the op-throughput \
         scaling of the sharded control plane itself.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_coprocs_served_concurrently() {
        let o = storm(2);
        assert_eq!(o.rpcs.len(), 2);
        for (i, c) in o.rpcs.iter().enumerate() {
            assert!(*c >= OPS as u64, "coproc {i} served {c} RPCs");
        }
        // MachineConfig{sockets: 2} places the two cards on different
        // sockets, so the boot path must have built two proxy shards —
        // and their replicas applied every listener cycle without
        // falling off the log.
        assert_eq!(o.domains, 2);
        assert!(o.log.appends >= (2 * LISTEN_CYCLES * 2) as u64);
        assert_eq!(o.log.overruns, 0);
    }

    #[test]
    fn modeled_scaling_saturates_at_device() {
        let one = modeled_gbps(1);
        let two = modeled_gbps(2);
        let four = modeled_gbps(4);
        assert!(two > one, "scaling visible: {one} -> {two}");
        assert!(four <= 2.4 + 1e-9, "device cap respected: {four}");
        assert!(four >= two, "no regression with more cards");
    }
}
