//! Figure 4: PCIe transfer bandwidth — DMA vs load/store, host- vs
//! Phi-initiated, across transfer sizes.
//!
//! Paper result: DMA wins for large transfers (150×/116× at 8 MB),
//! load/store wins for small ones (2.9×/12.6× at 64 B), and
//! host-initiated transfers beat Phi-initiated ones (2.3× DMA,
//! 1.8× memcpy).

use solros_pcie::cost::{CostModel, Xfer};
use solros_pcie::Side;
use solros_simkit::report::{fmt_size, Table};

/// Transfer sizes on the paper's x-axis.
pub const SIZES: [u64; 9] = [
    64,
    512,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    1 << 20,
    4 << 20,
    8 << 20,
];

/// Effective single-transfer bandwidth (bytes/s).
pub fn bandwidth(model: &CostModel, side: Side, mech: Xfer, bytes: u64) -> f64 {
    bytes as f64 / model.copy_time(side, mech, bytes).as_secs_f64()
}

/// Regenerates the figure (MB/s to match the paper's axes).
pub fn run() -> String {
    let m = CostModel::paper_default();
    let mut t = Table::new(vec![
        "size",
        "Host DMA (MB/s)",
        "Phi DMA (MB/s)",
        "Host ld/st (MB/s)",
        "Phi ld/st (MB/s)",
    ]);
    for bytes in SIZES {
        t.row(vec![
            fmt_size(bytes),
            format!("{:.1}", bandwidth(&m, Side::Host, Xfer::Dma, bytes) / 1e6),
            format!("{:.1}", bandwidth(&m, Side::Coproc, Xfer::Dma, bytes) / 1e6),
            format!(
                "{:.1}",
                bandwidth(&m, Side::Host, Xfer::Memcpy, bytes) / 1e6
            ),
            format!(
                "{:.1}",
                bandwidth(&m, Side::Coproc, Xfer::Memcpy, bytes) / 1e6
            ),
        ]);
    }
    let mut out = t.to_markdown();
    let d = m.copy_time(Side::Host, Xfer::Memcpy, 8 << 20).as_secs_f64()
        / m.copy_time(Side::Host, Xfer::Dma, 8 << 20).as_secs_f64();
    let s = m.copy_time(Side::Host, Xfer::Dma, 64).as_secs_f64()
        / m.copy_time(Side::Host, Xfer::Memcpy, 64).as_secs_f64();
    out.push_str(&format!(
        "\n8MB: host DMA {d:.0}x faster than memcpy (paper: 150x). \
         64B: host memcpy {s:.1}x faster than DMA (paper: 2.9x).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_bandwidth_in_size_for_dma() {
        let m = CostModel::paper_default();
        for side in [Side::Host, Side::Coproc] {
            let mut prev = 0.0;
            for bytes in SIZES {
                let bw = bandwidth(&m, side, Xfer::Dma, bytes);
                assert!(bw >= prev, "{side:?} {bytes}: {bw} < {prev}");
                prev = bw;
            }
        }
    }

    #[test]
    fn plateaus_match_figure_4() {
        let m = CostModel::paper_default();
        // Fig 4a: host DMA plateau ~5.25 GB/s, Phi ~2.3 GB/s.
        let host = bandwidth(&m, Side::Host, Xfer::Dma, 8 << 20);
        let phi = bandwidth(&m, Side::Coproc, Xfer::Dma, 8 << 20);
        assert!((4.8e9..=5.5e9).contains(&host), "host {host}");
        assert!((2.0e9..=2.5e9).contains(&phi), "phi {phi}");
        // Fig 4b: load/store plateaus ~35 / ~19 MB/s.
        let h = bandwidth(&m, Side::Host, Xfer::Memcpy, 8 << 20);
        let p = bandwidth(&m, Side::Coproc, Xfer::Memcpy, 8 << 20);
        assert!((30e6..=40e6).contains(&h), "host memcpy {h}");
        assert!((16e6..=22e6).contains(&p), "phi memcpy {p}");
    }

    #[test]
    fn crossovers_near_adaptive_thresholds() {
        let m = CostModel::paper_default();
        // Below the threshold memcpy wins; above, DMA wins.
        for (side, below, above) in [
            (Side::Host, 512u64, 4 << 10),
            (Side::Coproc, 4 << 10, 64 << 10),
        ] {
            assert!(
                bandwidth(&m, side, Xfer::Memcpy, below) > bandwidth(&m, side, Xfer::Dma, below),
                "{side:?} below"
            );
            assert!(
                bandwidth(&m, side, Xfer::Dma, above) > bandwidth(&m, side, Xfer::Memcpy, above),
                "{side:?} above"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("| 8MB |"));
        assert!(r.contains("paper: 150x"));
    }
}
