//! Figure 14 (reconstructed): network stream throughput vs message size.
//!
//! The provided paper text truncates before this figure; the series
//! follow the abstract's 7× network claim and §4.4's design. Expected
//! shape: the host and Solros track each other (Solros slightly below),
//! both far above the on-Phi TCP stack; all curves grow with message
//! size.

use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::{fmt_size, Table};

/// Message sizes.
pub const SIZES: [u64; 8] = [
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
];

/// Regenerates the figure (MB/s per connection).
pub fn run() -> String {
    let p = NetPerf::paper_default();
    let mut t = Table::new(vec![
        "message",
        "Host (MB/s)",
        "Phi-Solros (MB/s)",
        "Phi-Linux (MB/s)",
    ]);
    for bytes in SIZES {
        t.row(vec![
            fmt_size(bytes),
            format!("{:.1}", p.stream_throughput(StackKind::Host, bytes) / 1e6),
            format!("{:.1}", p.stream_throughput(StackKind::Solros, bytes) / 1e6),
            format!(
                "{:.1}",
                p.stream_throughput(StackKind::PhiLinux, bytes) / 1e6
            ),
        ]);
    }
    let mut out = t.to_markdown();
    let s = p.stream_throughput(StackKind::Solros, 64 << 10);
    let l = p.stream_throughput(StackKind::PhiLinux, 64 << 10);
    out.push_str(&format!(
        "\nSolros vs Phi-Linux at 64KB: {:.1}x (abstract: ~7x for network service)\n",
        s / l
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let p = NetPerf::paper_default();
        for bytes in SIZES {
            let h = p.stream_throughput(StackKind::Host, bytes);
            let s = p.stream_throughput(StackKind::Solros, bytes);
            let l = p.stream_throughput(StackKind::PhiLinux, bytes);
            assert!(h >= s && s > l, "{bytes}: {h} {s} {l}");
        }
        // Headline factor in the mid-size regime.
        let ratio = p.stream_throughput(StackKind::Solros, 16 << 10)
            / p.stream_throughput(StackKind::PhiLinux, 16 << 10);
        assert!((3.0..=15.0).contains(&ratio), "ratio {ratio} (paper ~7x)");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("| 64KB |"));
    }
}
