//! Figure 1a: file random-read throughput vs block size.
//!
//! Paper result: Host and Phi-Solros both saturate the SSD (2.4 GB/s) at
//! large blocks — with Solros slightly ahead thanks to vectored-command
//! coalescing; cross-NUMA P2P is capped near 0.3 GB/s; the stock Phi
//! paths (NFS, virtio) crawl at ~0.1–0.2 GB/s — a ~19× gap.

use solros_simkit::report::{fmt_gbps, fmt_size, Table};

use crate::model::{FsModel, FsStack, ALL_STACKS};

/// Block sizes on the paper's x-axis.
pub const BLOCKS: [u64; 8] = [
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Threads used for the headline curves: a moderate count, so the ramp
/// toward saturation across block sizes is visible as in the paper.
pub const THREADS: usize = 4;

/// Regenerates the figure as a markdown table (GB/s).
pub fn run() -> String {
    let m = FsModel::paper_default();
    let mut headers = vec!["block".to_string()];
    headers.extend(ALL_STACKS.iter().map(|s| s.label().to_string()));
    let mut t = Table::new(headers);
    for bytes in BLOCKS {
        let mut row = vec![fmt_size(bytes)];
        for stack in ALL_STACKS {
            row.push(fmt_gbps(m.throughput(stack, true, THREADS, bytes)));
        }
        t.row(row);
    }
    let mut out = t.to_markdown();
    let solros = m.throughput(FsStack::Solros, true, THREADS, 512 << 10);
    let virtio = m.throughput(FsStack::Virtio, true, THREADS, 512 << 10);
    let nfs = m.throughput(FsStack::Nfs, true, THREADS, 512 << 10);
    out.push_str(&format!(
        "\nSolros vs virtio at 512KB: {:.1}x (paper: ~19x) — vs NFS: {:.1}x (paper: ~14x)\n",
        solros / virtio,
        solros / nfs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FsModel, FsStack};

    #[test]
    fn figure_shape_holds() {
        let m = FsModel::paper_default();
        for bytes in BLOCKS {
            let host = m.throughput(FsStack::Host, true, THREADS, bytes);
            let solros = m.throughput(FsStack::Solros, true, THREADS, bytes);
            let cross = m.throughput(FsStack::SolrosCrossNuma, true, THREADS, bytes);
            let virtio = m.throughput(FsStack::Virtio, true, THREADS, bytes);
            let nfs = m.throughput(FsStack::Nfs, true, THREADS, bytes);
            // Orderings of Figure 1a.
            assert!(solros > cross, "{bytes}: solros {solros} vs cross {cross}");
            assert!(cross > virtio.min(nfs), "{bytes}: cross beats stock paths");
            assert!(host > 5.0 * virtio, "{bytes}: host far above virtio");
            // At saturating sizes Solros >= Host (coalescing).
            if bytes >= 512 << 10 {
                assert!(
                    solros >= host * 0.99,
                    "{bytes}: solros {solros} vs host {host}"
                );
            }
        }
        // The cross-NUMA cliff: capped at ~0.3 GB/s even at 4 MB.
        let cross = m.throughput(FsStack::SolrosCrossNuma, true, THREADS, 4 << 20);
        assert!(cross <= 0.3e9 + 1.0);
    }

    #[test]
    fn headline_factor_near_19x() {
        let m = FsModel::paper_default();
        let solros = m.throughput(FsStack::Solros, true, THREADS, 1 << 20);
        let virtio = m.throughput(FsStack::Virtio, true, THREADS, 1 << 20);
        let ratio = solros / virtio;
        assert!((9.0..=25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("| 512KB |"));
        assert!(r.contains("Phi-Solros"));
    }
}
