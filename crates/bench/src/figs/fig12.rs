//! Figure 12: NVMe random-write throughput vs block size and threads.
//!
//! Paper result: Host and Phi-Solros reach the SSD's 1.2 GB/s write
//! ceiling; the stock Phi paths stay under ~0.1 GB/s.

use crate::figs::fig11;
#[cfg(test)]
use crate::model::{FsModel, FsStack};

/// Regenerates the figure.
pub fn run() -> String {
    fig11::run_rw(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_peaks_match_paper() {
        let m = FsModel::paper_default();
        for stack in [FsStack::Host, FsStack::Solros] {
            let peak = m.throughput(stack, false, 61, 4 << 20);
            assert!((1.1e9..=1.2e9).contains(&peak), "{stack:?} {peak}");
        }
        for stack in [FsStack::Virtio, FsStack::Nfs] {
            let peak = m.throughput(stack, false, 61, 4 << 20);
            assert!(peak < 0.25e9, "{stack:?} {peak} (paper: <0.1-0.2 GB/s)");
        }
    }

    #[test]
    fn writes_never_exceed_reads() {
        let m = FsModel::paper_default();
        for stack in fig11::STACKS {
            for bytes in fig11::BLOCKS {
                let r = m.throughput(stack, true, 61, bytes);
                let w = m.throughput(stack, false, 61, bytes);
                assert!(w <= r * 1.01, "{stack:?} {bytes}: write {w} > read {r}");
            }
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("(b) Phi-Solros"));
    }
}
