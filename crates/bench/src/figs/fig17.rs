//! Figure 17 (reconstructed): image search end-to-end.
//!
//! The abstract's headline: ~2× over the stock Xeon Phi. Image search is
//! compute-heavy (L2 distances over 128-dim descriptors), so even with a
//! slow I/O path the Phi spends about half its time computing — Solros
//! removes the I/O half, not the compute half.

use solros_simkit::report::Table;
use solros_simkit::SimTime;

use crate::model::{FsModel, FsStack};

/// Database size.
pub const DB_BYTES: u64 = 2 << 30;
/// Distance-computation rate on the Phi, all threads (bytes of
/// descriptors per second). Calibrated so compute ≈ half the stock path's
/// runtime, reproducing the 2x headline.
pub const PHI_DISTANCE_BW: f64 = 0.42e9;

/// Query scan runtime: database streamed through the stack while
/// distances compute in parallel (pipelined).
pub fn runtime(m: &FsModel, stack: FsStack) -> SimTime {
    let io_bw = m.throughput(stack, true, 61, 1 << 20);
    let io = DB_BYTES as f64 / io_bw;
    let compute = DB_BYTES as f64 / PHI_DISTANCE_BW;
    SimTime::from_secs_f64(io.max(compute))
}

/// Regenerates the figure.
pub fn run() -> String {
    let m = FsModel::paper_default();
    let solros = runtime(&m, FsStack::Solros);
    let mut t = Table::new(vec!["stack", "scan time (s)", "speedup"]);
    for stack in [FsStack::Solros, FsStack::Virtio, FsStack::Nfs] {
        let rt = runtime(&m, stack);
        t.row(vec![
            stack.label().to_string(),
            format!("{:.2}", rt.as_secs_f64()),
            format!("{:.1}x", rt.as_secs_f64() / solros.as_secs_f64()),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(&format!(
        "\nSolros vs stock Phi (virtio): {:.1}x (paper: ~2x — compute-bound workload)\n",
        runtime(&m, FsStack::Virtio).as_secs_f64() / solros.as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_near_2x() {
        let m = FsModel::paper_default();
        let ratio =
            runtime(&m, FsStack::Virtio).as_secs_f64() / runtime(&m, FsStack::Solros).as_secs_f64();
        assert!((1.5..=3.0).contains(&ratio), "ratio {ratio} (paper ~2x)");
    }

    #[test]
    fn compute_bound_on_solros_io_bound_on_stock() {
        let m = FsModel::paper_default();
        let compute = DB_BYTES as f64 / PHI_DISTANCE_BW;
        let io_solros = DB_BYTES as f64 / m.throughput(FsStack::Solros, true, 61, 1 << 20);
        let io_virtio = DB_BYTES as f64 / m.throughput(FsStack::Virtio, true, 61, 1 << 20);
        assert!(io_solros < compute, "Solros is compute-bound");
        assert!(io_virtio > compute, "stock path is I/O-bound");
    }

    #[test]
    fn smaller_gain_than_text_indexing() {
        let m = FsModel::paper_default();
        let img =
            runtime(&m, FsStack::Virtio).as_secs_f64() / runtime(&m, FsStack::Solros).as_secs_f64();
        let text = crate::figs::fig16::runtime(&m, FsStack::Virtio).as_secs_f64()
            / crate::figs::fig16::runtime(&m, FsStack::Solros).as_secs_f64();
        assert!(
            text > 3.0 * img,
            "indexing gain {text} should dwarf image-search gain {img}"
        );
    }
}
