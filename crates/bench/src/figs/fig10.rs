//! Figure 10: unidirectional ring bandwidth vs element size under the
//! three copy mechanisms (memcpy, DMA, adaptive), eight threads.
//!
//! Paper result: memcpy wins for small elements, DMA for large ones, and
//! the adaptive scheme tracks the better of the two everywhere. The
//! receiver pulls (masters at the sender), so the initiator is the
//! receiving side — Phi→Host uses host-initiated copies, Host→Phi uses
//! the slower Phi-initiated ones.

use solros_pcie::cost::{CostModel, Xfer};
use solros_pcie::Side;
use solros_simkit::report::{fmt_size, Table};

/// Element sizes on the paper's x-axis.
pub const SIZES: [u64; 8] = [
    512,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
];

/// Concurrent copier threads (the paper uses eight).
pub const THREADS: usize = 8;

/// The copy mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Always load/store.
    Memcpy,
    /// Always DMA.
    Dma,
    /// The §4.2.4 threshold scheme.
    Adaptive,
}

/// Aggregate pull bandwidth (bytes/s) for elements of `bytes`.
///
/// Copies decouple from queue operations (§4.2.2), so `THREADS` copies
/// proceed concurrently — DMA limited by the engine count, memcpy by the
/// threads — and the PCIe link is the final ceiling.
pub fn bandwidth(model: &CostModel, puller: Side, mode: Mode, bytes: u64) -> f64 {
    let mech = match mode {
        Mode::Memcpy => Xfer::Memcpy,
        Mode::Dma => Xfer::Dma,
        Mode::Adaptive => model.adaptive_choice(puller, bytes),
    };
    let per_copy = model.copy_time(puller, mech, bytes);
    let parallel = match mech {
        Xfer::Dma => THREADS.min(model.dma(puller).channels),
        Xfer::Memcpy => THREADS,
    };
    let raw = bytes as f64 * parallel as f64 / per_copy.as_secs_f64();
    let link = match puller {
        Side::Host => model.link_to_host_bw, // Pulling Phi -> Host.
        Side::Coproc => model.link_to_coproc_bw,
    };
    raw.min(link)
}

fn direction_table(model: &CostModel, puller: Side) -> Table {
    let mut t = Table::new(vec![
        "element",
        "memcpy (MB/s)",
        "DMA (MB/s)",
        "adaptive (MB/s)",
    ]);
    for bytes in SIZES {
        t.row(vec![
            fmt_size(bytes),
            format!("{:.1}", bandwidth(model, puller, Mode::Memcpy, bytes) / 1e6),
            format!("{:.1}", bandwidth(model, puller, Mode::Dma, bytes) / 1e6),
            format!(
                "{:.1}",
                bandwidth(model, puller, Mode::Adaptive, bytes) / 1e6
            ),
        ]);
    }
    t
}

/// Regenerates both directions of the figure.
pub fn run() -> String {
    let m = CostModel::paper_default();
    let mut out = String::from("(a) Xeon Phi -> Host (host pulls)\n\n");
    out.push_str(&direction_table(&m, Side::Host).to_markdown());
    out.push_str("\n(b) Host -> Xeon Phi (Phi pulls)\n\n");
    out.push_str(&direction_table(&m, Side::Coproc).to_markdown());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_tracks_the_winner() {
        let m = CostModel::paper_default();
        for puller in [Side::Host, Side::Coproc] {
            for bytes in SIZES {
                let mc = bandwidth(&m, puller, Mode::Memcpy, bytes);
                let dma = bandwidth(&m, puller, Mode::Dma, bytes);
                let ad = bandwidth(&m, puller, Mode::Adaptive, bytes);
                // Figure 10's claim: adaptive performs well regardless of
                // size (within ~2.2x of the better mechanism; the fixed
                // thresholds are not exact crossovers).
                assert!(
                    ad >= mc.max(dma) / 2.2,
                    "{puller:?} {bytes}: adaptive {ad} vs best {}",
                    mc.max(dma)
                );
            }
        }
    }

    #[test]
    fn memcpy_small_dma_large() {
        let m = CostModel::paper_default();
        for puller in [Side::Host, Side::Coproc] {
            assert!(
                bandwidth(&m, puller, Mode::Memcpy, 512) > bandwidth(&m, puller, Mode::Dma, 512),
                "{puller:?} small"
            );
            assert!(
                bandwidth(&m, puller, Mode::Dma, 4 << 20)
                    > bandwidth(&m, puller, Mode::Memcpy, 4 << 20),
                "{puller:?} large"
            );
        }
    }

    #[test]
    fn host_pull_beats_phi_pull() {
        let m = CostModel::paper_default();
        for bytes in SIZES {
            let a = bandwidth(&m, Side::Host, Mode::Adaptive, bytes);
            let b = bandwidth(&m, Side::Coproc, Mode::Adaptive, bytes);
            assert!(a >= b, "{bytes}: host pull {a} vs phi pull {b}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("(a) Xeon Phi -> Host"));
        assert!(r.contains("| 4MB |"));
    }
}
