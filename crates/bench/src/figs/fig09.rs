//! Figure 9: ring buffer over PCIe with lazy vs eager control variables.
//!
//! Hybrid methodology: the *real* ring implementation runs functionally
//! with T producer and T consumer threads while the PCIe transaction
//! ledger records exactly what crossed the bus; the virtual time is then
//! composed from the counted transactions and the calibrated per-
//! transaction costs. The masters sit at the sender (as in the paper), so
//! all counted remote traffic belongs to the pulling side.
//!
//! Paper result: the lazy (replicated) scheme improves throughput 4×
//! (Phi→Host) and 1.4× (Host→Phi), by reducing PCIe transactions.

use std::sync::Arc;

use solros_pcie::cost::CostModel;
use solros_pcie::counter::CounterSnapshot;
use solros_pcie::{PcieCounters, Side};
use solros_ringbuf::ring::{RingBuf, RingConfig};
use solros_simkit::report::Table;
use solros_simkit::SimTime;

/// Thread counts on the x-axis.
pub const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Elements per producer thread per run.
const OPS_PER_THREAD: u32 = 500;

/// One functional run; returns `(ops, counted PCIe traffic)`.
pub fn run_functional(producer_side: Side, threads: usize, lazy: bool) -> (u64, CounterSnapshot) {
    let counters = Arc::new(PcieCounters::new());
    let consumer_side = producer_side.peer();
    // 8 MiB ring: the whole run fits, so the consumer sees a deep backlog
    // and its batched pull amortizes as in a streaming workload.
    let mut cfg = RingConfig::over_pcie(8 << 20, producer_side, producer_side, consumer_side);
    cfg.lazy_control = lazy;
    let ring = RingBuf::new(cfg, Arc::clone(&counters));
    let (tx, rx) = ring.endpoints();
    let total = threads as u64 * OPS_PER_THREAD as u64;
    // Phase 1: all producers stream their elements in.
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            s.spawn(move || {
                let payload = [9u8; 64];
                for _ in 0..OPS_PER_THREAD {
                    tx.send_blocking(&payload).unwrap();
                }
            });
        }
    });
    // Phase 2: consumers drain.
    std::thread::scope(|s| {
        for _ in 0..threads {
            let rx = rx.clone();
            let each = OPS_PER_THREAD as usize;
            s.spawn(move || {
                for _ in 0..each {
                    let _ = rx.recv_blocking();
                }
            });
        }
    });
    (total, counters.snapshot())
}

/// Local per-operation CPU costs, calibrated so the lazy plateaus land
/// near the paper's (~1 Mops/s pulling into the host, ~0.4 Mops/s pulling
/// into the Phi). Enqueue is cheaper than dequeue (no copy-out).
fn local_cost(side: Side, is_dequeue: bool) -> SimTime {
    match (side, is_dequeue) {
        (Side::Host, false) => SimTime::from_ns(250),
        (Side::Host, true) => SimTime::from_ns(350),
        (Side::Coproc, false) => SimTime::from_ns(850),
        (Side::Coproc, true) => SimTime::from_ns(2_600),
    }
}

/// Composes virtual throughput (ops/s) from counted transactions.
///
/// The consumer side pays all counted remote traffic (masters are at the
/// producer); each side additionally pays a local CPU cost per operation
/// of which a share parallelizes across its threads (copies do; the
/// combiner's queue pass does not). Producer and consumer pipeline, so
/// the slower side bounds throughput.
pub fn virtual_throughput(
    model: &CostModel,
    producer_side: Side,
    threads: usize,
    ops: u64,
    traffic: &CounterSnapshot,
) -> f64 {
    let consumer_side = producer_side.peer();
    let scaled = |base: SimTime| base * (0.6 + 0.4 / threads.clamp(1, 8) as f64);
    let dma = model.dma(consumer_side);
    let remote = model.ctrl_read * traffic.ctrl_reads
        + model.ctrl_write * traffic.ctrl_writes
        + model.rmw * traffic.rmw_ops
        + dma.setup * traffic.dma_ops
        + SimTime::from_secs_f64(traffic.dma_bytes as f64 / dma.bytes_per_sec)
        // A line transaction is a non-posted read / posted write.
        + model.ctrl_read * traffic.read_lines
        + model.ctrl_write * traffic.write_lines;
    let producer_time = scaled(local_cost(producer_side, false)) * ops;
    let consumer_time = scaled(local_cost(consumer_side, true)) * ops + remote;
    let bound = producer_time.max(consumer_time);
    ops as f64 / bound.as_secs_f64()
}

fn series(producer_side: Side, lazy: bool) -> Vec<f64> {
    let model = CostModel::paper_default();
    THREADS
        .iter()
        .map(|&t| {
            let (ops, traffic) = run_functional(producer_side, t, lazy);
            virtual_throughput(&model, producer_side, t, ops, &traffic)
        })
        .collect()
}

/// Regenerates the figure (kilo-ops/s).
pub fn run() -> String {
    let a_lazy = series(Side::Coproc, true);
    let a_eager = series(Side::Coproc, false);
    let b_lazy = series(Side::Host, true);
    let b_eager = series(Side::Host, false);
    let mut t = Table::new(vec![
        "threads",
        "Phi->Host lazy (kops/s)",
        "Phi->Host eager",
        "Host->Phi lazy",
        "Host->Phi eager",
    ]);
    for (i, &n) in THREADS.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            format!("{:.0}", a_lazy[i] / 1e3),
            format!("{:.0}", a_eager[i] / 1e3),
            format!("{:.0}", b_lazy[i] / 1e3),
            format!("{:.0}", b_eager[i] / 1e3),
        ]);
    }
    let mut out = t.to_markdown();
    let last = THREADS.len() - 1;
    out.push_str(&format!(
        "\nlazy/eager at {} threads: Phi->Host {:.1}x (paper: 4x), Host->Phi {:.1}x (paper: 1.4x)\n",
        THREADS[last],
        a_lazy[last] / a_eager[last],
        b_lazy[last] / b_eager[last]
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_beats_eager_in_both_directions() {
        let model = CostModel::paper_default();
        for side in [Side::Coproc, Side::Host] {
            let (ops, lazy) = run_functional(side, 8, true);
            let (_, eager) = run_functional(side, 8, false);
            let tl = virtual_throughput(&model, side, 8, ops, &lazy);
            let te = virtual_throughput(&model, side, 8, ops, &eager);
            assert!(tl > te, "{side:?}: lazy {tl} vs eager {te}");
            // Fewer PCIe transactions is the mechanism.
            assert!(
                lazy.total_transactions() < eager.total_transactions(),
                "{side:?}: lazy txns {} vs eager {}",
                lazy.total_transactions(),
                eager.total_transactions()
            );
        }
    }

    #[test]
    fn direction_asymmetry_matches_paper() {
        let model = CostModel::paper_default();
        // Phi->Host (host pulls, fast DMA) beats Host->Phi (Phi pulls).
        let (ops_a, ta) = run_functional(Side::Coproc, 8, true);
        let (ops_b, tb) = run_functional(Side::Host, 8, true);
        let a = virtual_throughput(&model, Side::Coproc, 8, ops_a, &ta);
        let b = virtual_throughput(&model, Side::Host, 8, ops_b, &tb);
        assert!(a > b, "Phi->Host {a} vs Host->Phi {b}");
        // And the lazy/eager gap is bigger in the Phi->Host direction
        // (paper: 4x vs 1.4x).
        let (_, ea) = run_functional(Side::Coproc, 8, false);
        let (_, eb) = run_functional(Side::Host, 8, false);
        let gap_a = a / virtual_throughput(&model, Side::Coproc, 8, ops_a, &ea);
        let gap_b = b / virtual_throughput(&model, Side::Host, 8, ops_b, &eb);
        assert!(
            gap_a > gap_b,
            "gap(Phi->Host) {gap_a} should exceed gap(Host->Phi) {gap_b}"
        );
        assert!((2.0..=8.0).contains(&gap_a), "paper shows ~4x; got {gap_a}");
        assert!(
            (1.1..=3.5).contains(&gap_b),
            "paper shows ~1.4x; got {gap_b}"
        );
    }

    #[test]
    fn lazy_plateaus_near_paper_magnitudes() {
        let model = CostModel::paper_default();
        let (ops_a, ta) = run_functional(Side::Coproc, 16, true);
        let a = virtual_throughput(&model, Side::Coproc, 16, ops_a, &ta);
        let (ops_b, tb) = run_functional(Side::Host, 16, true);
        let b = virtual_throughput(&model, Side::Host, 16, ops_b, &tb);
        // Paper: ~1,000 kops/s and ~400 kops/s plateaus.
        assert!((0.6e6..=2.0e6).contains(&a), "Phi->Host plateau {a}");
        assert!((0.25e6..=0.8e6).contains(&b), "Host->Phi plateau {b}");
    }
}
