//! Table 1: lines of code.
//!
//! The paper reports the size of its Linux-kernel modifications per
//! module; the faithful analog here is the size of each crate of this
//! reproduction (which had to build the substrates from scratch rather
//! than patch a kernel).

use std::path::Path;

use solros_simkit::report::Table;

/// Counts non-empty lines of `.rs` files under `dir`, recursively.
pub fn count_rs_lines(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            total += count_rs_lines(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(s) = std::fs::read_to_string(&path) {
                total += s.lines().filter(|l| !l.trim().is_empty()).count() as u64;
            }
        }
    }
    total
}

/// The workspace root (derived from this crate's manifest dir).
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf()
}

/// Regenerates the table.
pub fn run() -> String {
    let root = workspace_root();
    let mut t = Table::new(vec!["module", "lines of Rust"]);
    let mut total = 0;
    let crates = [
        ("transport service (ringbuf)", "crates/ringbuf"),
        ("PCIe fabric model", "crates/pcie"),
        ("NVMe device", "crates/nvme"),
        ("file system", "crates/fs"),
        ("RPC protocol", "crates/proto"),
        ("network fabric", "crates/netdev"),
        ("machine assembly", "crates/machine"),
        ("Solros core (proxies + stubs)", "crates/core"),
        ("baselines", "crates/baseline"),
        ("applications", "crates/apps"),
        ("simulation kit", "crates/simkit"),
        ("benchmark harness", "crates/bench"),
        ("integration tests", "tests"),
        ("examples", "examples"),
    ];
    for (label, rel) in crates {
        let n = count_rs_lines(&root.join(rel));
        total += n;
        t.row(vec![label.to_string(), n.to_string()]);
    }
    t.row(vec!["total".to_string(), total.to_string()]);
    let mut out = t.to_markdown();
    out.push_str("\n(The paper's Table 1 reports 18,844 added lines across its kernel modules.)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_this_workspace() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "root {root:?}");
        let ring = count_rs_lines(&root.join("crates/ringbuf"));
        assert!(ring > 500, "ringbuf lines {ring}");
        assert_eq!(count_rs_lines(Path::new("/nonexistent-dir-xyz")), 0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("| total |"));
        assert!(r.contains("transport service"));
    }
}
