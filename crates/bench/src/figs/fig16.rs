//! Figure 16 (reconstructed): text indexing end-to-end runtime.
//!
//! The abstract's headline: Solros improves text indexing by ~19× over
//! the stock Xeon Phi. Composition: the indexer streams the corpus
//! through the I/O stack and tokenizes on the Phi's 244 threads;
//! I/O and compute pipeline, so runtime ≈ max(I/O time, compute time) +
//! per-file overheads. On the stock paths the ~0.2 GB/s I/O ceiling
//! dominates everything; on Solros the SSD's 2.4 GB/s makes tokenization
//! the bottleneck.

use solros_simkit::report::Table;
use solros_simkit::SimTime;

use crate::model::{FsModel, FsStack};

/// Corpus size (the paper indexes a multi-GB text dump).
pub const CORPUS_BYTES: u64 = 2 << 30;
/// Number of corpus files (a dump split into large shards).
pub const FILES: u64 = 64;
/// Tokenization rate on the Xeon Phi, all threads (bytes/s).
pub const PHI_TOKENIZE_BW: f64 = 4.0e9;

/// Per-file metadata overhead (open + stat) per stack.
fn per_file(m: &FsModel, stack: FsStack) -> SimTime {
    match stack {
        FsStack::Host => m.cpu.host_fs_time(1) * 2,
        FsStack::Solros | FsStack::SolrosCrossNuma => (m.cpu.stub_time(1) + m.rpc_overhead) * 2,
        FsStack::Virtio => m.virtio.op_time(true, 4096) * 2,
        FsStack::Nfs => m.nfs.op_time(true, 4096) * 2,
    }
}

/// End-to-end indexing runtime on a stack (61 reader threads, 1 MB reads).
///
/// On Solros the I/O stack runs on the *host*, so reads and tokenization
/// pipeline: runtime ≈ max(io, compute). On the co-processor-centric
/// stacks the full I/O stack executes on the same Phi cores as the
/// tokenizer, so the two phases contend and serialize: runtime ≈
/// io + compute (the coupling the paper's split-OS design removes).
pub fn runtime(m: &FsModel, stack: FsStack) -> SimTime {
    let io_bw = m.throughput(stack, true, 61, 1 << 20);
    let io = SimTime::from_secs_f64(CORPUS_BYTES as f64 / io_bw);
    let compute = SimTime::from_secs_f64(CORPUS_BYTES as f64 / PHI_TOKENIZE_BW);
    let meta = per_file(m, stack) * FILES;
    match stack {
        FsStack::Host | FsStack::Solros | FsStack::SolrosCrossNuma => io.max(compute) + meta,
        FsStack::Virtio | FsStack::Nfs => io + compute + meta,
    }
}

/// Regenerates the figure.
pub fn run() -> String {
    let m = FsModel::paper_default();
    let mut t = Table::new(vec!["stack", "runtime (s)", "speedup vs stack"]);
    let solros = runtime(&m, FsStack::Solros);
    for stack in [FsStack::Solros, FsStack::Virtio, FsStack::Nfs] {
        let rt = runtime(&m, stack);
        t.row(vec![
            stack.label().to_string(),
            format!("{:.2}", rt.as_secs_f64()),
            format!("{:.1}x", rt.as_secs_f64() / solros.as_secs_f64()),
        ]);
    }
    let mut out = t.to_markdown();
    let virtio = runtime(&m, FsStack::Virtio);
    out.push_str(&format!(
        "\nSolros vs stock Phi (virtio): {:.1}x (paper: ~19x)\n",
        virtio.as_secs_f64() / solros.as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_in_paper_band() {
        let m = FsModel::paper_default();
        let solros = runtime(&m, FsStack::Solros).as_secs_f64();
        let virtio = runtime(&m, FsStack::Virtio).as_secs_f64();
        let nfs = runtime(&m, FsStack::Nfs).as_secs_f64();
        let rv = virtio / solros;
        let rn = nfs / solros;
        // The paper reports 19x; the composable part of the gap (I/O
        // ceiling + CPU coupling + metadata chatter) yields 10-15x here —
        // the residual is attributed to effects we do not model (page
        // cache pollution, scheduler interference on the Phi).
        assert!((8.0..=25.0).contains(&rv), "vs virtio {rv} (paper ~19x)");
        assert!(rn > 8.0, "vs nfs {rn}");
    }

    #[test]
    fn solros_removes_the_io_bottleneck() {
        let m = FsModel::paper_default();
        let io_solros = CORPUS_BYTES as f64 / m.throughput(FsStack::Solros, true, 61, 1 << 20);
        let io_virtio = CORPUS_BYTES as f64 / m.throughput(FsStack::Virtio, true, 61, 1 << 20);
        let compute = CORPUS_BYTES as f64 / PHI_TOKENIZE_BW;
        // Stock: I/O dwarfs compute. Solros: they are comparable.
        assert!(io_virtio > 5.0 * compute, "virtio io {io_virtio}");
        assert!(io_solros < 2.5 * compute, "solros io {io_solros}");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("Phi-Solros"));
    }
}
