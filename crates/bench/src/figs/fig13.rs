//! Figure 13: latency breakdown of the I/O subsystems.
//!
//! (a) 512 KB random read: Phi-virtio spends milliseconds in the
//! Phi-resident file system and the CPU-copy transport; Phi-Solros's
//! stub + RPC + zero-copy storage finishes in ~0.5 ms. The paper:
//! zero-copy NVMe DMA is 171× faster than virtio's CPU copy, and the
//! stub spends 5× less time than the full FS on the Phi.
//!
//! (b) 64-byte TCP message: the stock Phi's time is dominated by its own
//! network stack; Solros pays a small proxy/transport overhead on top of
//! the host's fast stack.

use solros_baseline::VirtioPerf;
use solros_netdev::perf::StackKind;
use solros_netdev::NetPerf;
use solros_simkit::report::Table;
use solros_simkit::SimTime;

use crate::model::FsModel;

/// The profiled request sizes (matching the paper's fio/latency setup).
pub const FS_BYTES: u64 = 512 * 1024;
/// TCP message size.
pub const NET_BYTES: u64 = 64;

/// Returns the (a)-panel component times.
pub fn fs_breakdown() -> [(&'static str, SimTime, SimTime); 3] {
    let v = VirtioPerf::paper_default();
    let m = FsModel::paper_default();
    let (vfs, vtrans, vstore) = v.breakdown(true, FS_BYTES);
    let (sfs, strans, sstore) = m.solros_breakdown(true, FS_BYTES);
    [
        ("File system", vfs, sfs),
        ("Block/Transport", vtrans, strans),
        ("Storage", vstore, sstore),
    ]
}

/// Returns the (b)-panel component times: `(component, Phi-Linux, Solros)`.
pub fn net_breakdown() -> [(&'static str, SimTime, SimTime); 2] {
    let n = NetPerf::paper_default();
    let phi_stack = n.stack_time(StackKind::PhiLinux, NET_BYTES);
    let host_stack = n.stack_time(StackKind::Host, NET_BYTES);
    let solros_forward = n.solros_forward * 2;
    [
        ("Network stack", phi_stack, host_stack),
        ("Proxy/Transport", SimTime::ZERO, solros_forward),
    ]
}

/// Regenerates both panels.
pub fn run() -> String {
    let mut out = String::from("(a) 512KB random read (ms)\n\n");
    let mut t = Table::new(vec!["component", "Phi-virtio", "Phi-Solros"]);
    let fs = fs_breakdown();
    for (name, v, s) in fs {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", v.as_ms_f64()),
            format!("{:.3}", s.as_ms_f64()),
        ]);
    }
    let vt: SimTime = fs.iter().map(|x| x.1).sum();
    let st: SimTime = fs.iter().map(|x| x.2).sum();
    t.row(vec![
        "total".into(),
        format!("{:.3}", vt.as_ms_f64()),
        format!("{:.3}", st.as_ms_f64()),
    ]);
    out.push_str(&t.to_markdown());

    out.push_str("\n(b) 64B TCP message processing (us)\n\n");
    let mut t = Table::new(vec!["component", "Phi-Linux", "Phi-Solros"]);
    let net = net_breakdown();
    for (name, p, s) in net {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", p.as_us_f64()),
            format!("{:.1}", s.as_us_f64()),
        ]);
    }
    out.push_str(&t.to_markdown());

    let fs_ratio = vt.as_secs_f64() / st.as_secs_f64();
    out.push_str(&format!(
        "\nvirtio/Solros total: {fs_ratio:.1}x (paper: ~14x). \
         Solros stub vs full-FS-on-Phi: {:.1}x cheaper (paper: 5x).\n",
        fs[0].1.as_secs_f64() / fs[0].2.as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_panel_matches_paper() {
        let fs = fs_breakdown();
        let virtio_total: SimTime = fs.iter().map(|x| x.1).sum();
        let solros_total: SimTime = fs.iter().map(|x| x.2).sum();
        // Paper: ~6.5 ms vs ~0.45 ms.
        assert!(
            (4.0..=9.0).contains(&virtio_total.as_ms_f64()),
            "virtio {virtio_total}"
        );
        assert!(
            (0.3..=0.8).contains(&solros_total.as_ms_f64()),
            "solros {solros_total}"
        );
        // Stub 5x cheaper than the full FS on the Phi.
        let stub_ratio = fs[0].1.as_secs_f64() / fs[0].2.as_secs_f64();
        assert!((4.0..=7.0).contains(&stub_ratio), "stub {stub_ratio}");
        // Zero-copy transport is two orders faster than the CPU copy.
        let copy_ratio = fs[1].1.as_secs_f64() / fs[1].2.as_secs_f64();
        assert!(copy_ratio > 50.0, "transport {copy_ratio} (paper: 171x)");
    }

    #[test]
    fn net_panel_matches_paper() {
        let net = net_breakdown();
        let phi: SimTime = net.iter().map(|x| x.1).sum();
        let solros: SimTime = net.iter().map(|x| x.2).sum();
        assert!(phi > solros * 3, "phi {phi} vs solros {solros}");
        // Solros's proxy/transport is visible but smaller than its stack.
        assert!(net[1].2 > SimTime::ZERO);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("| Storage |"));
        assert!(r.contains("Proxy/Transport"));
    }
}
