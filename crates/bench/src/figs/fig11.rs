//! Figure 11: NVMe random-read throughput vs block size and threads.
//!
//! Paper result: Host and Phi-Solros reach the SSD's 2.4 GB/s with enough
//! threads and large enough blocks; Phi-Linux over virtio or NFS stays
//! around 0.2 GB/s no matter what.

use solros_simkit::report::{fmt_gbps, fmt_size, Table};

use crate::model::{FsModel, FsStack};

/// Block sizes (paper x-axis).
pub const BLOCKS: [u64; 8] = [
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Thread counts (paper curves).
pub const THREADS: [usize; 5] = [1, 4, 8, 32, 61];

/// The four stacks Figure 11 plots.
pub const STACKS: [FsStack; 4] = [
    FsStack::Host,
    FsStack::Solros,
    FsStack::Virtio,
    FsStack::Nfs,
];

/// Builds one stack's table (GB/s; columns = thread counts).
pub fn stack_table(m: &FsModel, stack: FsStack, is_read: bool) -> Table {
    let mut headers = vec!["block".to_string()];
    headers.extend(THREADS.iter().map(|t| format!("{t}thr")));
    let mut table = Table::new(headers);
    for bytes in BLOCKS {
        let mut row = vec![fmt_size(bytes)];
        for &t in &THREADS {
            row.push(fmt_gbps(m.throughput(stack, is_read, t, bytes)));
        }
        table.row(row);
    }
    table
}

/// Regenerates the figure (four sub-tables like the paper's four panels).
pub fn run() -> String {
    run_rw(true)
}

/// Shared renderer for Figures 11 (reads) and 12 (writes).
pub fn run_rw(is_read: bool) -> String {
    let m = FsModel::paper_default();
    let mut out = String::new();
    for (panel, stack) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(STACKS) {
        out.push_str(&format!("{panel} {}\n\n", stack.label()));
        out.push_str(&stack_table(&m, stack, is_read).to_markdown());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_monotone_in_threads_and_block_size() {
        let m = FsModel::paper_default();
        for stack in STACKS {
            for bytes in BLOCKS {
                let mut prev = 0.0;
                for &t in &THREADS {
                    let x = m.throughput(stack, true, t, bytes);
                    assert!(x + 1.0 >= prev, "{stack:?} {bytes} {t}: {x} < {prev}");
                    prev = x;
                }
            }
            for &t in &THREADS {
                let mut prev = 0.0;
                for bytes in BLOCKS {
                    let x = m.throughput(stack, true, t, bytes);
                    assert!(x + 1.0 >= prev, "{stack:?} {t} {bytes}: {x} < {prev}");
                    prev = x;
                }
            }
        }
    }

    #[test]
    fn panels_match_paper_peaks() {
        let m = FsModel::paper_default();
        // (a)/(b): saturate the device.
        for stack in [FsStack::Host, FsStack::Solros] {
            let peak = m.throughput(stack, true, 61, 4 << 20);
            assert!((2.3e9..=2.4e9).contains(&peak), "{stack:?} {peak}");
        }
        // (c)/(d): stock Phi stuck around 0.2 GB/s.
        for stack in [FsStack::Virtio, FsStack::Nfs] {
            let peak = m.throughput(stack, true, 61, 4 << 20);
            assert!(peak < 0.3e9, "{stack:?} {peak}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("(a) Host"));
        assert!(r.contains("(d) Phi-Linux (NFS)"));
    }
}
