//! Figure 8: ring-buffer scalability — combining vs two-lock queues.
//!
//! This is a *real* concurrency measurement on the build machine (the
//! only experiment where wall-clock time is meaningful): each thread
//! alternates an enqueue and a dequeue of a 64-byte element, exactly the
//! paper's pair benchmark, on (a) the Solros combining ring, (b) the
//! Michael–Scott two-lock queue with ticket locks, and (c) with MCS
//! locks. Paper result at 61 threads: Solros 4.1× over ticket and 1.5×
//! over MCS.
//!
//! Absolute numbers depend on this machine's core count; the assertions
//! only check that the combining ring stays competitive under the highest
//! contention.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use solros_pcie::{PcieCounters, Side};
use solros_ringbuf::locks::{McsLock, RawLock, TicketLock};
use solros_ringbuf::ring::{RingBuf, RingConfig};
use solros_ringbuf::TwoLockQueue;
use solros_simkit::report::Table;

/// Thread counts on the paper's x-axis (clamped by the host's parallelism
/// in the report, but all counts run regardless).
pub const THREADS: [usize; 7] = [1, 2, 4, 8, 16, 32, 61];

/// Measurement window per cell.
const WINDOW: Duration = Duration::from_millis(120);

fn run_pairs(threads: usize, body: impl Fn(&AtomicBool, &AtomicU64) + Sync) -> f64 {
    let stop = AtomicBool::new(false);
    let pairs = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| body(&stop, &pairs));
        }
        std::thread::sleep(WINDOW);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    pairs.load(Ordering::Relaxed) as f64 / elapsed
}

/// Pair throughput (pairs/s) of the Solros combining ring.
pub fn measure_ring(threads: usize) -> f64 {
    let counters = Arc::new(PcieCounters::new());
    let ring = RingBuf::new(RingConfig::local(1 << 20, Side::Host), counters);
    let (tx, rx) = ring.endpoints();
    let payload = [7u8; 64];
    run_pairs(threads, |stop, pairs| {
        let tx = tx.clone();
        let rx = rx.clone();
        while !stop.load(Ordering::Relaxed) {
            while tx.send(&payload).is_err() {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::hint::spin_loop();
            }
            loop {
                match rx.recv() {
                    Ok(_) => break,
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            pairs.fetch_add(1, Ordering::Relaxed);
        }
    })
}

/// Pair throughput of a two-lock queue under lock `L`.
pub fn measure_twolock<L: RawLock>(threads: usize) -> f64 {
    let q = TwoLockQueue::<L>::new();
    run_pairs(threads, |stop, pairs| {
        while !stop.load(Ordering::Relaxed) {
            q.enqueue(vec![7u8; 64]);
            loop {
                if q.dequeue().is_some() {
                    break;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::hint::spin_loop();
            }
            pairs.fetch_add(1, Ordering::Relaxed);
        }
    })
}

/// Analytic companion, calibrated to the paper's Figure 8 plateaus, for
/// hosts (like single-core CI boxes) that cannot exhibit real contention.
///
/// Cache-coherence cost model per queue operation on the Phi's ring
/// interconnect: a ticket lock's release invalidates every waiter's line
/// (cost grows linearly in contenders, ~42 ns per waiter); an MCS handoff
/// touches a constant two remote lines; the combiner amortizes the shared
/// state across a batch, costing one `atomic_swap` plus a local flag spin
/// per operation. Calibration targets: at 61 threads the paper measures
/// Solros ≈ 4.1× ticket and ≈ 1.5× MCS.
pub fn modeled_pairs_per_sec(threads: usize) -> (f64, f64, f64) {
    let n = threads as f64;
    let base = 250e-9; // Uncontended queue-op cost on a Phi core.
    let contended = 1.0 - 1.0 / n; // Fraction of ops that contend.
    let ticket = 2.0 * (base + 42e-9 * n);
    let mcs = 2.0 * (base + 700e-9 * contended);
    let solros = 2.0 * (base + 420e-9 * contended);
    (1.0 / solros, 1.0 / ticket, 1.0 / mcs)
}

/// Renders the analytic companion table.
pub fn modeled() -> String {
    let mut t = Table::new(vec![
        "threads",
        "Solros (kops/s, modeled)",
        "Two-lock ticket",
        "Two-lock MCS",
    ]);
    for n in THREADS {
        let (s, ti, m) = modeled_pairs_per_sec(n);
        t.row(vec![
            n.to_string(),
            format!("{:.0}", s / 1e3),
            format!("{:.0}", ti / 1e3),
            format!("{:.0}", m / 1e3),
        ]);
    }
    let (s, ti, m) = modeled_pairs_per_sec(61);
    let mut out = t.to_markdown();
    out.push_str(&format!(
        "
modeled at 61 threads: Solros/ticket = {:.1}x (paper: 4.1x),          Solros/MCS = {:.1}x (paper: 1.5x)
",
        s / ti,
        s / m
    ));
    out
}

/// Regenerates the figure (kilo-pairs/s, measured).
pub fn run() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = Table::new(vec![
        "threads",
        "Solros (kops/s)",
        "Two-lock ticket (kops/s)",
        "Two-lock MCS (kops/s)",
    ]);
    let mut last = (0.0, 0.0, 0.0);
    for n in THREADS {
        let ring = measure_ring(n);
        let ticket = measure_twolock::<TicketLock>(n);
        let mcs = measure_twolock::<McsLock>(n);
        last = (ring, ticket, mcs);
        t.row(vec![
            n.to_string(),
            format!("{:.0}", ring / 1e3),
            format!("{:.0}", ticket / 1e3),
            format!("{:.0}", mcs / 1e3),
        ]);
    }
    let mut out = t.to_markdown();
    out.push_str(&format!(
        "\nmachine parallelism: {cores}. At 61 threads: Solros/ticket = {:.1}x \
         (paper: 4.1x), Solros/MCS = {:.1}x (paper: 1.5x)\n",
        last.0 / last.1,
        last.0 / last.2
    ));
    if cores < 4 {
        out.push_str(
            "WARNING: this machine lacks real parallelism; oversubscribed \
             wall-clock numbers measure the scheduler, not the algorithms. \
             Run on a many-core box to observe the paper's crossover.\n",
        );
    }
    out.push_str("\nAnalytic companion (coherence-cost model, Fig 8 calibration):\n\n");
    out.push_str(&modeled());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_curves_match_paper_factors() {
        let (s, ti, m) = modeled_pairs_per_sec(61);
        assert!((3.5..=4.8).contains(&(s / ti)), "ticket factor {}", s / ti);
        assert!((1.3..=1.7).contains(&(s / m)), "mcs factor {}", s / m);
        // At one thread the three designs are comparable (no contention).
        let (s1, t1, m1) = modeled_pairs_per_sec(1);
        assert!(s1 / t1 < 1.5 && s1 / m1 < 1.5 && t1 / s1 < 1.5);
        // Ticket degrades monotonically with contenders.
        let (_, t8, _) = modeled_pairs_per_sec(8);
        assert!(t8 > ti);
    }

    #[test]
    fn combining_competitive_under_contention() {
        // Wall-clock comparisons on shared CI machines are noisy, and the
        // combining design only pays off under real contention (at low
        // thread counts a two-lock queue is legitimately faster). Assert
        // the loose invariant only: both designs make progress and the
        // ring is within 5x of the ticket queue at this machine's
        // parallelism.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let n = cores.min(32);
        let ring = measure_ring(n);
        let ticket = measure_twolock::<TicketLock>(n);
        assert!(ring > 0.0 && ticket > 0.0, "both designs make progress");
        if cores >= 4 {
            // Only meaningful with real parallelism; oversubscribed
            // single-core runs measure the scheduler, not the algorithms.
            assert!(
                ring * 5.0 > ticket,
                "ring {ring} vs ticket {ticket} at {n} threads"
            );
        }
    }
}
