//! One module per regenerated table/figure of the paper's evaluation.

pub mod fig01a;
pub mod fig01b;
pub mod fig04;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod tab01;

/// A figure/table regenerator.
pub type Regenerator = fn() -> String;

/// Every experiment, in paper order: `(title, regenerator)`.
pub const ALL: &[(&str, Regenerator)] = &[
    (
        "Figure 1a — file random read throughput vs block size",
        fig01a::run,
    ),
    ("Figure 1b — TCP latency, 64-byte messages", fig01b::run),
    (
        "Figure 4 — PCIe transfer bandwidth (DMA vs load/store)",
        fig04::run,
    ),
    (
        "Figure 8 — ring buffer scalability (measured, this machine)",
        fig08::run,
    ),
    (
        "Figure 9 — lazy vs eager control-variable updates over PCIe",
        fig09::run,
    ),
    (
        "Figure 10 — copy mechanism vs element size (8 threads)",
        fig10::run,
    ),
    ("Figure 11 — NVMe random read throughput", fig11::run),
    ("Figure 12 — NVMe random write throughput", fig12::run),
    ("Figure 13 — I/O latency breakdown", fig13::run),
    ("Table 1 — lines of code (this reproduction)", tab01::run),
    (
        "Figure 14* — network stream throughput vs message size",
        fig14::run,
    ),
    ("Figure 15* — shared listening socket scaling", fig15::run),
    ("Figure 16* — text indexing", fig16::run),
    ("Figure 17* — image search", fig17::run),
    ("Figure 18* — control-plane scalability", fig18::run),
];
