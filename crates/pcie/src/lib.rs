#![warn(missing_docs)]

//! PCIe fabric model for Solros-rs.
//!
//! The paper's transport, file-system, and network services are built on
//! system-mapped PCIe windows: a device (Xeon Phi, NVMe SSD, NIC) exposes
//! its physical memory into the host physical address space, and either
//! side moves data with load/store instructions (one 64-byte PCIe
//! transaction per cache line) or DMA engines (§4.1–§4.2.1 of the paper).
//!
//! This crate reproduces that substrate in software:
//!
//! * [`mem::SharedRegion`] — a chunk of "device memory" that both sides can
//!   map, with atomic control slots carved out of it (the moral equivalent
//!   of Intel SCIF's `scif_mmap`).
//! * [`window::Window`] / [`window::WindowHandle`] — a mapped view of a
//!   region from one side of the bus, counting every PCIe transaction it
//!   would have issued on real hardware.
//! * [`counter::PcieCounters`] — the transaction ledger used by the
//!   benchmark harness to convert operation counts into virtual time.
//! * [`cost::CostModel`] — transfer-time model calibrated against Figure 4
//!   of the paper (DMA vs. load/store, host- vs. Phi-initiated).
//! * [`topo::Topology`] — PCIe/QPI topology used by the control-plane OS to
//!   decide P2P vs. host-staged data paths (Figure 1a's cross-NUMA cliff).

pub mod cost;
pub mod counter;
pub mod mem;
pub mod topo;
pub mod window;

pub use cost::{CostModel, Xfer};
pub use counter::{CounterSnapshot, PcieCounters};
pub use mem::SharedRegion;
pub use topo::{DeviceId, P2pPath, Topology};
pub use window::{RemoteAtomicU64, Window, WindowHandle};

/// Which side of the PCIe bus an agent executes on.
///
/// Costs are asymmetric: the host has faster cores, a faster DMA engine and
/// memory controller (§4.2.1), so the initiator of a transfer matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The host processor (control-plane OS).
    Host,
    /// A co-processor (data-plane OS), e.g. a Xeon Phi.
    Coproc,
}

impl Side {
    /// Returns the opposite side.
    pub fn peer(self) -> Side {
        match self {
            Side::Host => Side::Coproc,
            Side::Coproc => Side::Host,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_peer() {
        assert_eq!(Side::Host.peer(), Side::Coproc);
        assert_eq!(Side::Coproc.peer(), Side::Host);
    }
}
