//! PCIe/QPI topology.
//!
//! The control-plane OS owns a global view of the machine: which socket
//! each PCIe device hangs off, and therefore whether a peer-to-peer
//! transfer between two devices stays inside one root complex or must be
//! relayed across the QPI interconnect. Figure 1a of the paper shows why
//! this matters: cross-NUMA P2P is capped at ~300 MB/s, so the file-system
//! proxy demotes such transfers to buffered (host-staged) I/O (§4.3.2).

use std::collections::HashMap;

/// Identifies a PCIe device in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceId {
    /// A co-processor card (index).
    Coproc(u8),
    /// An NVMe SSD (index).
    Nvme(u8),
    /// A network interface card (index).
    Nic(u8),
}

/// The kind of path P2P traffic between two devices takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2pPath {
    /// Both devices sit under the same root complex; full-speed P2P.
    SameSocket,
    /// The transfer is relayed by a processor across QPI; severely capped.
    CrossSocket,
}

/// The machine's PCIe attachment map.
///
/// # Examples
///
/// ```
/// use solros_pcie::{DeviceId, P2pPath, Topology};
///
/// let mut topo = Topology::new(2);
/// topo.attach(DeviceId::Coproc(0), 0);
/// topo.attach(DeviceId::Coproc(1), 1);
/// topo.attach(DeviceId::Nvme(0), 0);
/// assert_eq!(
///     topo.p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(0)),
///     P2pPath::SameSocket
/// );
/// assert_eq!(
///     topo.p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(1)),
///     P2pPath::CrossSocket
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    sockets: u8,
    attachment: HashMap<DeviceId, u8>,
}

impl Topology {
    /// Creates a topology with `sockets` NUMA domains.
    ///
    /// # Panics
    ///
    /// Panics if `sockets == 0`.
    pub fn new(sockets: u8) -> Self {
        assert!(sockets > 0, "a machine has at least one socket");
        Self {
            sockets,
            attachment: HashMap::new(),
        }
    }

    /// The paper's testbed: two sockets, four Xeon Phis (two per socket),
    /// one NVMe SSD and the NIC on socket 0.
    pub fn paper_testbed() -> Self {
        let mut t = Topology::new(2);
        t.attach(DeviceId::Coproc(0), 0);
        t.attach(DeviceId::Coproc(1), 0);
        t.attach(DeviceId::Coproc(2), 1);
        t.attach(DeviceId::Coproc(3), 1);
        t.attach(DeviceId::Nvme(0), 0);
        t.attach(DeviceId::Nic(0), 0);
        t
    }

    /// Returns the number of sockets.
    pub fn sockets(&self) -> u8 {
        self.sockets
    }

    /// Attaches `dev` to `socket`, replacing any previous attachment.
    ///
    /// # Panics
    ///
    /// Panics if `socket` does not exist.
    pub fn attach(&mut self, dev: DeviceId, socket: u8) {
        assert!(socket < self.sockets, "socket {socket} out of range");
        self.attachment.insert(dev, socket);
    }

    /// Returns the socket a device is attached to, if known.
    pub fn socket_of(&self, dev: DeviceId) -> Option<u8> {
        self.attachment.get(&dev).copied()
    }

    /// Returns all devices attached to a socket, sorted for determinism.
    pub fn devices_on(&self, socket: u8) -> Vec<DeviceId> {
        let mut v: Vec<_> = self
            .attachment
            .iter()
            .filter(|(_, s)| **s == socket)
            .map(|(d, _)| *d)
            .collect();
        v.sort();
        v
    }

    /// Returns all attached co-processors, sorted by index.
    pub fn coprocs(&self) -> Vec<DeviceId> {
        let mut v: Vec<_> = self
            .attachment
            .keys()
            .filter(|d| matches!(d, DeviceId::Coproc(_)))
            .copied()
            .collect();
        v.sort();
        v
    }

    /// Classifies the P2P path between two devices.
    ///
    /// # Panics
    ///
    /// Panics if either device is not attached (the control plane always
    /// knows its own topology; asking about an unknown device is a bug).
    pub fn p2p_path(&self, a: DeviceId, b: DeviceId) -> P2pPath {
        let sa = self
            .socket_of(a)
            .unwrap_or_else(|| panic!("{a:?} not attached"));
        let sb = self
            .socket_of(b)
            .unwrap_or_else(|| panic!("{b:?} not attached"));
        if sa == sb {
            P2pPath::SameSocket
        } else {
            P2pPath::CrossSocket
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_layout() {
        let t = Topology::paper_testbed();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.coprocs().len(), 4);
        assert_eq!(t.socket_of(DeviceId::Nvme(0)), Some(0));
        // SSD and Phi 0/1 share a socket; Phi 2/3 are across QPI.
        assert_eq!(
            t.p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(0)),
            P2pPath::SameSocket
        );
        assert_eq!(
            t.p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(2)),
            P2pPath::CrossSocket
        );
        assert_eq!(
            t.p2p_path(DeviceId::Nic(0), DeviceId::Coproc(3)),
            P2pPath::CrossSocket
        );
    }

    #[test]
    fn devices_on_sorted() {
        let t = Topology::paper_testbed();
        let s0 = t.devices_on(0);
        assert_eq!(
            s0,
            vec![
                DeviceId::Coproc(0),
                DeviceId::Coproc(1),
                DeviceId::Nvme(0),
                DeviceId::Nic(0)
            ]
        );
    }

    #[test]
    fn reattach_moves_device() {
        let mut t = Topology::new(2);
        t.attach(DeviceId::Coproc(0), 0);
        t.attach(DeviceId::Coproc(0), 1);
        assert_eq!(t.socket_of(DeviceId::Coproc(0)), Some(1));
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn unknown_device_panics() {
        let t = Topology::new(1);
        let _ = t.p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_socket_panics() {
        let mut t = Topology::new(1);
        t.attach(DeviceId::Nvme(0), 1);
    }
}
