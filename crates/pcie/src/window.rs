//! System-mapped PCIe windows.
//!
//! A [`Window`] is a [`SharedRegion`] ("device memory") plus the side it
//! physically lives on. A [`WindowHandle`] is one agent's mapped view of
//! it: accesses from the region's home side are local and free; accesses
//! from the other side model PCIe traffic and are charged to a
//! [`PcieCounters`] ledger — load/store copies count one transaction per
//! 64-byte line, DMA copies count one DMA operation, and control-variable
//! accesses through [`RemoteAtomicU64`] count reads/writes/RMWs
//! individually.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::{CostModel, Xfer, LINE};
use crate::counter::PcieCounters;
use crate::mem::SharedRegion;
use crate::Side;

/// A shared region pinned to one side of the bus.
pub struct Window {
    region: Arc<SharedRegion>,
    home: Side,
    counters: Arc<PcieCounters>,
    /// Fault injection: remaining remote accesses to delay.
    stall_budget: AtomicU64,
    /// Delay per injected stall, in nanoseconds.
    stall_ns: AtomicU64,
    /// Fault injection: remaining remote bulk writes to silently drop.
    drop_writes: AtomicU64,
}

impl Window {
    /// Creates a window over freshly allocated memory on `home`.
    pub fn new(len: usize, home: Side, counters: Arc<PcieCounters>) -> Arc<Self> {
        Arc::new(Self {
            region: Arc::new(SharedRegion::new(len)),
            home,
            counters,
            stall_budget: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            drop_writes: AtomicU64::new(0),
        })
    }

    /// Arms the stall injector: the next `n` *remote* bulk accesses
    /// (copies, DMA, element and staging transfers) through any handle of
    /// this window sleep for `each` first, modeling bus congestion or a
    /// link retraining pause. Local accesses never stall.
    pub fn inject_stalls(&self, n: u64, each: std::time::Duration) {
        self.stall_ns
            .store(each.as_nanos() as u64, Ordering::SeqCst);
        self.stall_budget.store(n, Ordering::SeqCst);
    }

    /// Arms the dropped-write injector: the next `n` *remote* bulk writes
    /// (load/store, DMA, or element writes) are charged to the ledger but
    /// never reach memory — a lost posted write. Control-variable stores
    /// are unaffected, so the corruption is in data, not bookkeeping.
    pub fn inject_dropped_writes(&self, n: u64) {
        self.drop_writes.store(n, Ordering::SeqCst);
    }

    fn consume_stall(&self) {
        let hit = self
            .stall_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if hit {
            let ns = self.stall_ns.load(Ordering::SeqCst);
            if ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(ns));
            }
        }
    }

    fn consume_drop(&self) -> bool {
        self.drop_writes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Returns the side the backing memory lives on.
    pub fn home(&self) -> Side {
        self.home
    }

    /// Returns the region length in bytes.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Returns false; windows are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the transaction ledger this window charges.
    pub fn counters(&self) -> &Arc<PcieCounters> {
        &self.counters
    }

    /// Maps the window from `accessor`'s side.
    pub fn map(self: &Arc<Self>, accessor: Side) -> WindowHandle {
        WindowHandle {
            window: Arc::clone(self),
            accessor,
        }
    }
}

/// One agent's mapped view of a [`Window`].
#[derive(Clone)]
pub struct WindowHandle {
    window: Arc<Window>,
    accessor: Side,
}

impl WindowHandle {
    /// Returns the accessing side.
    pub fn accessor(&self) -> Side {
        self.accessor
    }

    /// Returns true when accesses cross the PCIe bus.
    pub fn is_remote(&self) -> bool {
        self.accessor != self.window.home
    }

    /// Returns the underlying window.
    pub fn window(&self) -> &Arc<Window> {
        &self.window
    }

    /// Returns the region length in bytes.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns false; windows are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Load/store copy out of the window.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::read`]: the range must not be
    /// concurrently written and must not overlap atomic slots.
    pub unsafe fn read(&self, off: usize, dst: &mut [u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            self.window
                .counters
                .read_lines
                .fetch_add(CostModel::lines(dst.len() as u64), Ordering::Relaxed);
        }
        // SAFETY: forwarded contract.
        unsafe { self.window.region.read(off, dst) }
    }

    /// Load/store copy into the window.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::write`].
    pub unsafe fn write(&self, off: usize, src: &[u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            self.window
                .counters
                .write_lines
                .fetch_add(CostModel::lines(src.len() as u64), Ordering::Relaxed);
            if self.window.consume_drop() {
                return;
            }
        }
        // SAFETY: forwarded contract.
        unsafe { self.window.region.write(off, src) }
    }

    /// DMA copy out of the window (one DMA operation).
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::read`].
    pub unsafe fn dma_read(&self, off: usize, dst: &mut [u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            self.window.counters.dma_ops.fetch_add(1, Ordering::Relaxed);
            self.window
                .counters
                .dma_bytes
                .fetch_add(dst.len() as u64, Ordering::Relaxed);
        }
        // SAFETY: forwarded contract.
        unsafe { self.window.region.read(off, dst) }
    }

    /// DMA copy into the window (one DMA operation).
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::write`].
    pub unsafe fn dma_write(&self, off: usize, src: &[u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            self.window.counters.dma_ops.fetch_add(1, Ordering::Relaxed);
            self.window
                .counters
                .dma_bytes
                .fetch_add(src.len() as u64, Ordering::Relaxed);
            if self.window.consume_drop() {
                return;
            }
        }
        // SAFETY: forwarded contract.
        unsafe { self.window.region.write(off, src) }
    }

    /// Adaptive copy out (the §4.2.4 scheme): load/store below the
    /// initiator's threshold, DMA above it.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::read`].
    pub unsafe fn adaptive_read(&self, model: &CostModel, off: usize, dst: &mut [u8]) {
        if dst.len() as u64 <= model.adaptive_threshold(self.accessor) {
            // SAFETY: forwarded contract.
            unsafe { self.read(off, dst) }
        } else {
            // SAFETY: forwarded contract.
            unsafe { self.dma_read(off, dst) }
        }
    }

    /// Adaptive copy in; see [`Self::adaptive_read`].
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedRegion::write`].
    pub unsafe fn adaptive_write(&self, model: &CostModel, off: usize, src: &[u8]) {
        if src.len() as u64 <= model.adaptive_threshold(self.accessor) {
            // SAFETY: forwarded contract.
            unsafe { self.write(off, src) }
        } else {
            // SAFETY: forwarded contract.
            unsafe { self.dma_write(off, src) }
        }
    }

    /// Reads an element payload with word-atomic loads (safe to race with
    /// atomic writers to the same ring memory), charged per `mech`.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not 8-byte aligned or the padded range is out
    /// of bounds.
    pub fn read_elem(&self, mech: Xfer, off: usize, dst: &mut [u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            match mech {
                Xfer::Memcpy => {
                    self.window
                        .counters
                        .read_lines
                        .fetch_add(CostModel::lines(dst.len() as u64), Ordering::Relaxed);
                }
                Xfer::Dma => {
                    self.window.counters.dma_ops.fetch_add(1, Ordering::Relaxed);
                    self.window
                        .counters
                        .dma_bytes
                        .fetch_add(dst.len() as u64, Ordering::Relaxed);
                }
            }
        }
        let whole = dst.len() / 8 * 8;
        self.window.region.read_words_atomic(off, &mut dst[..whole]);
        let tail = dst.len() - whole;
        if tail > 0 {
            let mut word = [0u8; 8];
            self.window.region.read_words_atomic(off + whole, &mut word);
            dst[whole..].copy_from_slice(&word[..tail]);
        }
    }

    /// Writes an element payload with word-atomic stores; see
    /// [`Self::read_elem`] for counting and panics.
    pub fn write_elem(&self, mech: Xfer, off: usize, src: &[u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            match mech {
                Xfer::Memcpy => {
                    self.window
                        .counters
                        .write_lines
                        .fetch_add(CostModel::lines(src.len() as u64), Ordering::Relaxed);
                }
                Xfer::Dma => {
                    self.window.counters.dma_ops.fetch_add(1, Ordering::Relaxed);
                    self.window
                        .counters
                        .dma_bytes
                        .fetch_add(src.len() as u64, Ordering::Relaxed);
                }
            }
            if self.window.consume_drop() {
                return;
            }
        }
        self.window.region.write_words_atomic(off, src);
    }

    /// Bulk-stages a span of ring memory with one DMA operation (the
    /// consumer-side batched pull). Word-atomic, so it may race with
    /// producers still filling parts of the span; the caller validates
    /// per-element readiness from the staged headers.
    ///
    /// # Panics
    ///
    /// Panics if `off`/`dst.len()` are not 8-byte aligned or out of bounds.
    pub fn stage_read(&self, off: usize, dst: &mut [u8]) {
        if self.is_remote() {
            self.window.consume_stall();
            self.window.counters.dma_ops.fetch_add(1, Ordering::Relaxed);
            self.window
                .counters
                .dma_bytes
                .fetch_add(dst.len() as u64, Ordering::Relaxed);
        }
        self.window.region.read_words_atomic(off, dst);
    }

    /// Returns a counting handle to the atomic control slot at `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off` is unaligned or out of bounds.
    pub fn ctrl(&self, off: usize) -> RemoteAtomicU64<'_> {
        RemoteAtomicU64 {
            slot: self.window.region.atomic_u64(off),
            counters: if self.is_remote() {
                Some(&self.window.counters)
            } else {
                None
            },
        }
    }
}

/// A control variable viewed through a PCIe window.
///
/// Local views (accessor == home) are free; remote views charge the ledger
/// per operation, which is how the lazy-update experiment quantifies its
/// savings (Figure 9).
pub struct RemoteAtomicU64<'a> {
    slot: &'a AtomicU64,
    counters: Option<&'a Arc<PcieCounters>>,
}

impl RemoteAtomicU64<'_> {
    /// Atomically loads the value (one non-posted PCIe read if remote).
    pub fn load(&self) -> u64 {
        if let Some(c) = self.counters {
            c.ctrl_reads.fetch_add(1, Ordering::Relaxed);
        }
        self.slot.load(Ordering::Acquire)
    }

    /// Atomically stores a value (one posted PCIe write if remote).
    pub fn store(&self, v: u64) {
        if let Some(c) = self.counters {
            c.ctrl_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.slot.store(v, Ordering::Release);
    }

    /// Atomic swap — one of the two instructions Solros requires of the
    /// platform (§4).
    pub fn swap(&self, v: u64) -> u64 {
        if let Some(c) = self.counters {
            c.rmw_ops.fetch_add(1, Ordering::Relaxed);
        }
        self.slot.swap(v, Ordering::AcqRel)
    }

    /// Atomic compare-and-swap — the other required instruction. Returns
    /// `Ok(previous)` on success and `Err(actual)` on failure.
    pub fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        if let Some(c) = self.counters {
            c.rmw_ops.fetch_add(1, Ordering::Relaxed);
        }
        self.slot
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomic fetch-add (emulatable with a CAS loop; counted as one RMW).
    pub fn fetch_add(&self, v: u64) -> u64 {
        if let Some(c) = self.counters {
            c.rmw_ops.fetch_add(1, Ordering::Relaxed);
        }
        self.slot.fetch_add(v, Ordering::AcqRel)
    }
}

/// Number of bytes in a PCIe line transaction, re-exported for callers
/// computing expected counter values.
pub const LINE_BYTES: u64 = LINE;

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(home: Side) -> (Arc<Window>, Arc<PcieCounters>) {
        let counters = Arc::new(PcieCounters::new());
        let w = Window::new(4096, home, Arc::clone(&counters));
        (w, counters)
    }

    #[test]
    fn local_access_is_free() {
        let (w, c) = setup(Side::Host);
        let h = w.map(Side::Host);
        assert!(!h.is_remote());
        // SAFETY: single-threaded test; range clear of atomic slots.
        unsafe {
            h.write(0, &[1u8; 256]);
            let mut out = [0u8; 256];
            h.read(0, &mut out);
        }
        h.ctrl(512).store(3);
        let _ = h.ctrl(512).load();
        assert_eq!(c.snapshot().total_transactions(), 0);
    }

    #[test]
    fn remote_memcpy_counts_lines() {
        let (w, c) = setup(Side::Coproc);
        let h = w.map(Side::Host);
        assert!(h.is_remote());
        // SAFETY: single-threaded test.
        unsafe {
            h.write(0, &[7u8; 130]); // 3 lines (130 bytes).
            let mut out = [0u8; 64];
            h.read(0, &mut out); // 1 line.
            assert_eq!(out, [7u8; 64]);
        }
        let s = c.snapshot();
        assert_eq!(s.write_lines, 3);
        assert_eq!(s.read_lines, 1);
        assert_eq!(s.dma_ops, 0);
    }

    #[test]
    fn remote_dma_counts_ops_and_bytes() {
        let (w, c) = setup(Side::Coproc);
        let h = w.map(Side::Host);
        // SAFETY: single-threaded test.
        unsafe {
            h.dma_write(0, &vec![9u8; 2048]);
            let mut out = vec![0u8; 2048];
            h.dma_read(0, &mut out);
            assert_eq!(out[0], 9);
        }
        let s = c.snapshot();
        assert_eq!(s.dma_ops, 2);
        assert_eq!(s.dma_bytes, 4096);
        assert_eq!(s.read_lines + s.write_lines, 0);
    }

    #[test]
    fn adaptive_picks_mechanism_by_threshold() {
        let (w, c) = setup(Side::Coproc);
        let h = w.map(Side::Host);
        let m = CostModel::paper_default();
        // SAFETY: single-threaded test.
        unsafe {
            h.adaptive_write(&m, 0, &[0u8; 512]); // below 1 KB: memcpy.
            h.adaptive_write(&m, 0, &vec![0u8; 4096]); // above: DMA.
        }
        let s = c.snapshot();
        assert_eq!(s.write_lines, 8);
        assert_eq!(s.dma_ops, 1);

        // The co-processor threshold is 16 KB: a 4 KB write is memcpy.
        let h2 = w.map(Side::Coproc); // local though; use a host-homed window.
        assert!(!h2.is_remote());
        let (w2, c2) = setup(Side::Host);
        let h3 = w2.map(Side::Coproc);
        // SAFETY: single-threaded test.
        unsafe { h3.adaptive_write(&m, 0, &vec![0u8; 4096]) };
        assert_eq!(c2.snapshot().write_lines, 64);
        assert_eq!(c2.snapshot().dma_ops, 0);
    }

    #[test]
    fn injected_stall_delays_remote_access_only() {
        let (w, _c) = setup(Side::Coproc);
        w.inject_stalls(1, std::time::Duration::from_millis(20));
        // Local access: never stalls, budget untouched.
        let local = w.map(Side::Coproc);
        let t0 = std::time::Instant::now();
        // SAFETY: single-threaded test.
        unsafe { local.write(0, &[1u8; 64]) };
        assert!(t0.elapsed() < std::time::Duration::from_millis(15));
        // Remote access: pays the stall once, then runs at full speed.
        let remote = w.map(Side::Host);
        let t0 = std::time::Instant::now();
        // SAFETY: single-threaded test.
        unsafe { remote.write(0, &[2u8; 64]) };
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        // SAFETY: single-threaded test.
        unsafe { remote.write(0, &[3u8; 64]) };
        assert!(t0.elapsed() < std::time::Duration::from_millis(15));
    }

    #[test]
    fn injected_dropped_write_loses_data_but_counts_traffic() {
        let (w, c) = setup(Side::Coproc);
        let remote = w.map(Side::Host);
        // SAFETY: single-threaded test.
        unsafe { remote.write(0, &[0xAAu8; 64]) };
        w.inject_dropped_writes(1);
        // SAFETY: single-threaded test.
        unsafe { remote.write(0, &[0xBBu8; 64]) };
        let mut out = [0u8; 64];
        // SAFETY: single-threaded test.
        unsafe { remote.read(0, &mut out) };
        assert_eq!(out, [0xAAu8; 64], "dropped write never landed");
        // The lost write still crossed the bus as far as the ledger knows.
        assert_eq!(c.snapshot().write_lines, 2);
        // The next write goes through.
        // SAFETY: single-threaded test.
        unsafe { remote.write(0, &[0xCCu8; 64]) };
        // SAFETY: single-threaded test.
        unsafe { remote.read(0, &mut out) };
        assert_eq!(out, [0xCCu8; 64]);
    }

    #[test]
    fn ctrl_ops_counted_when_remote() {
        let (w, c) = setup(Side::Coproc);
        let remote = w.map(Side::Host);
        let ctrl = remote.ctrl(0);
        ctrl.store(5);
        assert_eq!(ctrl.load(), 5);
        assert_eq!(ctrl.swap(9), 5);
        assert_eq!(ctrl.compare_exchange(9, 10), Ok(9));
        assert_eq!(ctrl.compare_exchange(9, 11), Err(10));
        assert_eq!(ctrl.fetch_add(1), 10);
        let s = c.snapshot();
        assert_eq!(s.ctrl_reads, 1);
        assert_eq!(s.ctrl_writes, 1);
        assert_eq!(s.rmw_ops, 4);

        // The local view shares the same slot but is free.
        let local = w.map(Side::Coproc);
        assert_eq!(local.ctrl(0).load(), 11);
        assert_eq!(c.snapshot().ctrl_reads, 1);
    }
}
