//! PCIe transaction accounting.
//!
//! Every remote access through a [`crate::WindowHandle`] increments these
//! counters, mirroring what a PCIe protocol analyzer would see on real
//! hardware. The benchmark harness converts snapshots into virtual time via
//! [`crate::CostModel`], which is how the lazy-update experiment (Figure 9)
//! demonstrates its reduction in PCIe transactions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe PCIe transaction counters.
#[derive(Debug, Default)]
pub struct PcieCounters {
    /// 64-byte read transactions issued by load instructions.
    pub read_lines: AtomicU64,
    /// 64-byte write transactions issued by store instructions.
    pub write_lines: AtomicU64,
    /// DMA operations (each pays one channel setup).
    pub dma_ops: AtomicU64,
    /// Total bytes moved by DMA.
    pub dma_bytes: AtomicU64,
    /// Remote control-variable reads (one PCIe round trip each).
    pub ctrl_reads: AtomicU64,
    /// Remote control-variable writes (one posted transaction each).
    pub ctrl_writes: AtomicU64,
    /// Remote atomic read-modify-write operations (swap / CAS).
    pub rmw_ops: AtomicU64,
}

impl PcieCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a consistent-enough snapshot for reporting (individual loads
    /// are atomic; exactness across fields is not required by any caller).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            read_lines: self.read_lines.load(Ordering::Relaxed),
            write_lines: self.write_lines.load(Ordering::Relaxed),
            dma_ops: self.dma_ops.load(Ordering::Relaxed),
            dma_bytes: self.dma_bytes.load(Ordering::Relaxed),
            ctrl_reads: self.ctrl_reads.load(Ordering::Relaxed),
            ctrl_writes: self.ctrl_writes.load(Ordering::Relaxed),
            rmw_ops: self.rmw_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.read_lines.store(0, Ordering::Relaxed);
        self.write_lines.store(0, Ordering::Relaxed);
        self.dma_ops.store(0, Ordering::Relaxed);
        self.dma_bytes.store(0, Ordering::Relaxed);
        self.ctrl_reads.store(0, Ordering::Relaxed);
        self.ctrl_writes.store(0, Ordering::Relaxed);
        self.rmw_ops.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`PcieCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// See [`PcieCounters::read_lines`].
    pub read_lines: u64,
    /// See [`PcieCounters::write_lines`].
    pub write_lines: u64,
    /// See [`PcieCounters::dma_ops`].
    pub dma_ops: u64,
    /// See [`PcieCounters::dma_bytes`].
    pub dma_bytes: u64,
    /// See [`PcieCounters::ctrl_reads`].
    pub ctrl_reads: u64,
    /// See [`PcieCounters::ctrl_writes`].
    pub ctrl_writes: u64,
    /// See [`PcieCounters::rmw_ops`].
    pub rmw_ops: u64,
}

impl CounterSnapshot {
    /// Returns `self - earlier` field-wise (saturating), i.e. the traffic
    /// between two snapshots.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            read_lines: self.read_lines.saturating_sub(earlier.read_lines),
            write_lines: self.write_lines.saturating_sub(earlier.write_lines),
            dma_ops: self.dma_ops.saturating_sub(earlier.dma_ops),
            dma_bytes: self.dma_bytes.saturating_sub(earlier.dma_bytes),
            ctrl_reads: self.ctrl_reads.saturating_sub(earlier.ctrl_reads),
            ctrl_writes: self.ctrl_writes.saturating_sub(earlier.ctrl_writes),
            rmw_ops: self.rmw_ops.saturating_sub(earlier.rmw_ops),
        }
    }

    /// Total number of discrete PCIe transactions (lines + control accesses
    /// + RMWs + one per DMA op).
    pub fn total_transactions(&self) -> u64 {
        self.read_lines
            + self.write_lines
            + self.ctrl_reads
            + self.ctrl_writes
            + self.rmw_ops
            + self.dma_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = PcieCounters::new();
        c.read_lines.fetch_add(3, Ordering::Relaxed);
        c.dma_ops.fetch_add(1, Ordering::Relaxed);
        c.dma_bytes.fetch_add(4096, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.read_lines, 3);
        assert_eq!(s.dma_ops, 1);
        assert_eq!(s.dma_bytes, 4096);
        assert_eq!(s.total_transactions(), 4);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn since_diff() {
        let a = CounterSnapshot {
            read_lines: 10,
            ctrl_writes: 4,
            ..Default::default()
        };
        let b = CounterSnapshot {
            read_lines: 25,
            ctrl_writes: 4,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.read_lines, 15);
        assert_eq!(d.ctrl_writes, 0);
        // Saturating: reversed diff clamps at zero.
        assert_eq!(a.since(&b).read_lines, 0);
    }
}
