//! Shared device memory regions.
//!
//! A [`SharedRegion`] models the physical memory a PCIe device exports
//! through a window (§4.1): a flat byte range that *both* sides of the bus
//! may read and write concurrently. Bulk data moves are non-atomic (like
//! real DMA/load-store traffic); 8-byte-aligned slots can additionally be
//! used as atomic control variables (the paper's ring-buffer `head`/`tail`
//! and the two required atomic instructions, `atomic_swap` and
//! `compare_and_swap`).

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;

/// A shared memory region addressable from both sides of the PCIe bus.
///
/// Synchronization discipline is the caller's responsibility, exactly as
/// with real shared device memory: bulk accesses to a byte range must not
/// overlap concurrent accesses to the same range, and any offset used as an
/// atomic control slot (via [`SharedRegion::atomic_u64`]) must *only* ever
/// be accessed through that method. The Solros transport layer enforces
/// this by reserving a control header at the front of every region and
/// handing out disjoint element ranges guarded by per-element state flags.
///
/// # Examples
///
/// ```
/// use solros_pcie::SharedRegion;
///
/// let region = SharedRegion::new(4096);
/// // SAFETY: single-threaded here; ranges do not overlap atomic slots.
/// unsafe {
///     region.write(128, b"hello");
///     let mut buf = [0u8; 5];
///     region.read(128, &mut buf);
///     assert_eq!(&buf, b"hello");
/// }
/// ```
pub struct SharedRegion {
    cells: Box<[UnsafeCell<u64>]>,
    len: usize,
}

// SAFETY: `SharedRegion` hands out raw shared access on purpose (it models
// physical memory). All mutation goes through `unsafe` methods whose
// contracts forbid data races, or through `AtomicU64` references.
unsafe impl Send for SharedRegion {}
// SAFETY: see above; concurrent access is governed by the documented
// contracts of `read`/`write`/`atomic_u64`.
unsafe impl Sync for SharedRegion {}

impl SharedRegion {
    /// Allocates a zeroed region of at least `len` bytes (rounded up to a
    /// multiple of 8 for alignment).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "empty region");
        let words = len.div_ceil(8);
        let cells: Box<[UnsafeCell<u64>]> = (0..words).map(|_| UnsafeCell::new(0)).collect();
        Self {
            cells,
            len: words * 8,
        }
    }

    /// Returns the region length in bytes (a multiple of 8).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns false; regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.cells.as_ptr() as *mut u8
    }

    /// Copies `dst.len()` bytes starting at `off` into `dst`.
    ///
    /// # Safety
    ///
    /// The byte range `[off, off + dst.len())` must not be concurrently
    /// written by any other thread, and must not overlap an offset in use
    /// as an atomic slot.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub unsafe fn read(&self, off: usize, dst: &mut [u8]) {
        assert!(
            off.checked_add(dst.len())
                .is_some_and(|end| end <= self.len),
            "read out of bounds: {off}+{} > {}",
            dst.len(),
            self.len
        );
        // SAFETY: bounds checked above; non-overlap guaranteed by caller.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(off), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Copies `src` into the region starting at `off`.
    ///
    /// # Safety
    ///
    /// The byte range `[off, off + src.len())` must not be concurrently
    /// read or written by any other thread, and must not overlap an offset
    /// in use as an atomic slot.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub unsafe fn write(&self, off: usize, src: &[u8]) {
        assert!(
            off.checked_add(src.len())
                .is_some_and(|end| end <= self.len),
            "write out of bounds: {off}+{} > {}",
            src.len(),
            self.len
        );
        // SAFETY: bounds checked above; non-overlap guaranteed by caller.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base().add(off), src.len());
        }
    }

    /// Copies `dst.len()` bytes starting at `off` into `dst` using
    /// word-granular atomic loads, so it may safely race with concurrent
    /// atomic writes to any slot in the range (each word reads as some
    /// previously-stored value — exactly the guarantee a DMA engine
    /// snapshotting live ring memory has).
    ///
    /// # Panics
    ///
    /// Panics if `off` or `dst.len()` is not 8-byte aligned, or the range
    /// is out of bounds.
    pub fn read_words_atomic(&self, off: usize, dst: &mut [u8]) {
        assert!(
            off.is_multiple_of(8) && dst.len().is_multiple_of(8),
            "unaligned atomic bulk read"
        );
        assert!(
            off.checked_add(dst.len())
                .is_some_and(|end| end <= self.len),
            "atomic bulk read out of bounds"
        );
        for (i, chunk) in dst.chunks_exact_mut(8).enumerate() {
            let ptr = self.cells[off / 8 + i].get();
            // SAFETY: `ptr` is valid and aligned for the region's
            // lifetime; atomic access races safely with any other atomic
            // access to the same word.
            let word =
                unsafe { AtomicU64::from_ptr(ptr) }.load(std::sync::atomic::Ordering::Acquire);
            chunk.copy_from_slice(&word.to_le_bytes());
        }
    }

    /// Stores `src` starting at `off` using word-granular atomic stores,
    /// zero-padding the trailing partial word. Safe against concurrent
    /// atomic readers of the same words.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not 8-byte aligned or the padded range is out
    /// of bounds.
    pub fn write_words_atomic(&self, off: usize, src: &[u8]) {
        assert!(off.is_multiple_of(8), "unaligned atomic bulk write");
        let padded = src.len().div_ceil(8) * 8;
        assert!(
            off.checked_add(padded).is_some_and(|end| end <= self.len),
            "atomic bulk write out of bounds"
        );
        for (i, chunk) in src.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let ptr = self.cells[off / 8 + i].get();
            // SAFETY: `ptr` is valid and aligned for the region's
            // lifetime; atomic stores race safely with atomic accesses.
            unsafe { AtomicU64::from_ptr(ptr) }.store(
                u64::from_le_bytes(word),
                std::sync::atomic::Ordering::Release,
            );
        }
    }

    /// Returns an atomic view of the 8 bytes at `off`.
    ///
    /// The slot must be accessed exclusively through the returned atomic
    /// (never via [`read`](Self::read)/[`write`](Self::write)) for as long
    /// as it serves as a control variable.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not 8-byte aligned or out of bounds.
    pub fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        assert!(off.is_multiple_of(8), "unaligned atomic slot at {off}");
        assert!(off + 8 <= self.len, "atomic slot out of bounds at {off}");
        let ptr = self.cells[off / 8].get();
        // SAFETY: `ptr` is valid for the region's lifetime, 8-byte aligned
        // (it is an `UnsafeCell<u64>`), and the method contract requires
        // all access to this slot to go through atomics.
        unsafe { AtomicU64::from_ptr(ptr) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn len_rounds_up() {
        assert_eq!(SharedRegion::new(1).len(), 8);
        assert_eq!(SharedRegion::new(8).len(), 8);
        assert_eq!(SharedRegion::new(9).len(), 16);
    }

    #[test]
    fn roundtrip() {
        let r = SharedRegion::new(64);
        let data = [0xABu8; 32];
        // SAFETY: single-threaded test, no atomic slots in range.
        unsafe {
            r.write(8, &data);
            let mut out = [0u8; 32];
            r.read(8, &mut out);
            assert_eq!(out, data);
        }
    }

    #[test]
    fn zero_initialized() {
        let r = SharedRegion::new(128);
        let mut out = [1u8; 128];
        // SAFETY: single-threaded test.
        unsafe { r.read(0, &mut out) };
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_oob_panics() {
        let r = SharedRegion::new(16);
        let mut buf = [0u8; 9];
        // SAFETY: panics before any access.
        unsafe { r.read(8, &mut buf) };
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_atomic_panics() {
        let r = SharedRegion::new(16);
        let _ = r.atomic_u64(4);
    }

    #[test]
    fn atomics_are_shared() {
        let r = Arc::new(SharedRegion::new(64));
        let a = r.atomic_u64(0);
        a.store(7, Ordering::SeqCst);
        assert_eq!(r.atomic_u64(0).load(Ordering::SeqCst), 7);

        let r2 = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            r2.atomic_u64(0).fetch_add(5, Ordering::SeqCst);
        });
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn concurrent_disjoint_bulk_access() {
        let r = Arc::new(SharedRegion::new(1 << 16));
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let off = i as usize * 8192;
                    let data = vec![i; 4096];
                    // SAFETY: each thread touches a disjoint 8 KiB range.
                    unsafe {
                        r.write(off, &data);
                        let mut out = vec![0u8; 4096];
                        r.read(off, &mut out);
                        assert_eq!(out, data);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
