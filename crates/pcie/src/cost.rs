//! PCIe transfer cost model, calibrated against Figure 4 of the paper.
//!
//! The paper measures four transfer regimes over PCIe Gen2 x16 between a
//! Xeon E5-2670 v3 host and a Xeon Phi: {DMA, load/store} × {host-initiated,
//! Phi-initiated}. The headline calibration points (all from §4.2.1 and
//! Figure 4):
//!
//! * 8 MB DMA is 150× (host) / 116× (Phi) faster than `memcpy`;
//! * 64 B `memcpy` is 2.9× (host) / 12.6× (Phi) faster than DMA;
//! * host-initiated transfers beat Phi-initiated ones: 2.3× for DMA and
//!   1.8× for `memcpy` (steady state);
//! * the adaptive copy thresholds Solros uses are 1 KB (host) and 16 KB
//!   (Phi) (§4.2.4);
//! * load/store saturates near 35 MB/s from the host (Figure 4b);
//! * a peer-to-peer path that crosses a NUMA boundary is capped at
//!   ~300 MB/s because one processor relays PCIe packets over QPI
//!   (Figure 1a).
//!
//! `memcpy` has two regimes: small transfers ride the write-combining
//! buffers at a fast marginal rate; past a window the sustained load/store
//! rate dominates. This is what lets both "64 B memcpy beats DMA by only
//! 2.9×" and "the memcpy/DMA crossover sits at 1 KB" hold simultaneously,
//! as they do on the real hardware.

use solros_simkit::time::transfer_time;
use solros_simkit::SimTime;

use crate::Side;

/// PCIe cache-line (and thus load/store transaction) size in bytes.
pub const LINE: u64 = 64;

/// A transfer mechanism choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Xfer {
    /// Load/store instructions on the mapped window: one PCIe transaction
    /// per 64-byte line; no setup cost.
    Memcpy,
    /// A DMA engine: channel setup cost, then streaming at full bandwidth.
    Dma,
}

/// Per-side memcpy parameters (two-regime model, see module docs).
#[derive(Debug, Clone, Copy)]
pub struct MemcpyParams {
    /// Fixed per-call overhead (function call, fences).
    pub base: SimTime,
    /// Marginal cost per byte inside the write-combining window.
    pub fast_ns_per_byte: f64,
    /// Size of the fast window in bytes.
    pub fast_window: u64,
    /// Marginal cost per byte beyond the window (sustained rate).
    pub slow_ns_per_byte: f64,
}

impl MemcpyParams {
    /// Time to move `bytes` with load/store instructions.
    pub fn time(&self, bytes: u64) -> SimTime {
        let fast = bytes.min(self.fast_window);
        let slow = bytes - fast;
        let ns = fast as f64 * self.fast_ns_per_byte + slow as f64 * self.slow_ns_per_byte;
        self.base + SimTime::from_ns(ns.ceil() as u64)
    }

    /// Sustained bandwidth in bytes/second (the Figure 4b asymptote).
    pub fn sustained_bw(&self) -> f64 {
        1e9 / self.slow_ns_per_byte
    }
}

/// Per-side DMA parameters.
#[derive(Debug, Clone, Copy)]
pub struct DmaParams {
    /// Channel setup + descriptor + completion overhead per operation.
    pub setup: SimTime,
    /// Streaming bandwidth in bytes/second.
    pub bytes_per_sec: f64,
    /// Number of DMA channels on this side (both Xeon and Xeon Phi have 8).
    pub channels: usize,
}

impl DmaParams {
    /// Time for one DMA operation moving `bytes`.
    pub fn time(&self, bytes: u64) -> SimTime {
        self.setup + transfer_time(bytes, self.bytes_per_sec)
    }
}

/// The full calibrated model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Host-initiated memcpy.
    pub host_memcpy: MemcpyParams,
    /// Phi-initiated memcpy.
    pub coproc_memcpy: MemcpyParams,
    /// Host-initiated DMA.
    pub host_dma: DmaParams,
    /// Phi-initiated DMA.
    pub coproc_dma: DmaParams,
    /// Latency of a remote control-variable read (PCIe round trip).
    pub ctrl_read: SimTime,
    /// Latency of a remote control-variable posted write.
    pub ctrl_write: SimTime,
    /// Latency of a remote atomic read-modify-write.
    pub rmw: SimTime,
    /// Adaptive copy threshold when the host initiates (bytes).
    pub host_adaptive_threshold: u64,
    /// Adaptive copy threshold when the co-processor initiates (bytes).
    pub coproc_adaptive_threshold: u64,
    /// Per-direction PCIe link ceiling, co-processor → host (bytes/s).
    pub link_to_host_bw: f64,
    /// Per-direction PCIe link ceiling, host → co-processor (bytes/s).
    pub link_to_coproc_bw: f64,
    /// Bandwidth cap for P2P traffic relayed across a NUMA boundary (QPI).
    pub cross_numa_p2p_bw: f64,
    /// Extra latency for each cross-NUMA relayed transfer.
    pub cross_numa_latency: SimTime,
}

impl CostModel {
    /// The model calibrated to the paper's testbed (see module docs).
    pub fn paper_default() -> Self {
        CostModel {
            // Calibrated so that: memcpy(64B) = 2.06us (2.9x faster than a
            // 6us DMA), memcpy(1KB) ~ DMA(1KB) (the 1 KB threshold), and
            // the sustained rate is 35 MB/s (Fig 4b).
            host_memcpy: MemcpyParams {
                base: SimTime::from_ns(1_800),
                fast_ns_per_byte: 4.1,
                fast_window: 4 * 1024,
                slow_ns_per_byte: 28.6, // 35 MB/s sustained
            },
            // Calibrated so that: memcpy(64B) = 3.3us (12.6x faster than a
            // 42us DMA), crossover near 16 KB, sustained 19.4 MB/s
            // (35 / 1.8, the paper's host-vs-Phi memcpy ratio).
            coproc_memcpy: MemcpyParams {
                base: SimTime::from_ns(3_150),
                fast_ns_per_byte: 2.9,
                fast_window: 16 * 1024,
                slow_ns_per_byte: 51.5, // 19.4 MB/s sustained
            },
            // Host DMA: ~5.25 GB/s streaming (Fig 4a plateau), 6us setup.
            host_dma: DmaParams {
                setup: SimTime::from_us(6),
                bytes_per_sec: 5.25e9,
                channels: 8,
            },
            // Phi DMA: host rate / 2.3 (the initiator asymmetry), and the
            // "longer initialization of the DMA channel" (§4.2.4): 42us.
            coproc_dma: DmaParams {
                setup: SimTime::from_us(42),
                bytes_per_sec: 5.25e9 / 2.3,
                channels: 8,
            },
            // A dependent (non-posted) PCIe read round trip ~0.9us; posted
            // writes ~0.25us; remote RMW needs a round trip plus lock phase.
            ctrl_read: SimTime::from_ns(900),
            ctrl_write: SimTime::from_ns(250),
            rmw: SimTime::from_ns(1_300),
            host_adaptive_threshold: 1024,
            coproc_adaptive_threshold: 16 * 1024,
            // §6: "maximum bandwidth from Xeon Phi to host is 6.5 GB/s and
            // the other direction 6.0 GB/s".
            link_to_host_bw: 6.5e9,
            link_to_coproc_bw: 6.0e9,
            // Figure 1a: cross-NUMA P2P capped at ~300 MB/s.
            cross_numa_p2p_bw: 300e6,
            cross_numa_latency: SimTime::from_us(2),
        }
    }

    /// Returns the memcpy parameters for the given initiator.
    pub fn memcpy(&self, initiator: Side) -> &MemcpyParams {
        match initiator {
            Side::Host => &self.host_memcpy,
            Side::Coproc => &self.coproc_memcpy,
        }
    }

    /// Returns the DMA parameters for the given initiator.
    pub fn dma(&self, initiator: Side) -> &DmaParams {
        match initiator {
            Side::Host => &self.host_dma,
            Side::Coproc => &self.coproc_dma,
        }
    }

    /// Time to move `bytes` with the given mechanism and initiator.
    pub fn copy_time(&self, initiator: Side, mech: Xfer, bytes: u64) -> SimTime {
        match mech {
            Xfer::Memcpy => self.memcpy(initiator).time(bytes),
            Xfer::Dma => self.dma(initiator).time(bytes),
        }
    }

    /// The adaptive copy threshold Solros uses for this initiator (§4.2.4).
    pub fn adaptive_threshold(&self, initiator: Side) -> u64 {
        match initiator {
            Side::Host => self.host_adaptive_threshold,
            Side::Coproc => self.coproc_adaptive_threshold,
        }
    }

    /// The mechanism the adaptive scheme picks for a transfer of `bytes`.
    pub fn adaptive_choice(&self, initiator: Side, bytes: u64) -> Xfer {
        if bytes <= self.adaptive_threshold(initiator) {
            Xfer::Memcpy
        } else {
            Xfer::Dma
        }
    }

    /// Time for the adaptive copy of `bytes`.
    pub fn adaptive_time(&self, initiator: Side, bytes: u64) -> SimTime {
        self.copy_time(initiator, self.adaptive_choice(initiator, bytes), bytes)
    }

    /// Number of 64-byte line transactions for a load/store copy of `bytes`.
    pub fn lines(bytes: u64) -> u64 {
        bytes.div_ceil(LINE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::paper_default()
    }

    #[test]
    fn small_memcpy_beats_dma_by_paper_ratios() {
        let m = m();
        let host_ratio = m.copy_time(Side::Host, Xfer::Dma, 64).as_secs_f64()
            / m.copy_time(Side::Host, Xfer::Memcpy, 64).as_secs_f64();
        assert!((2.5..=3.3).contains(&host_ratio), "host ratio {host_ratio}");

        let phi_ratio = m.copy_time(Side::Coproc, Xfer::Dma, 64).as_secs_f64()
            / m.copy_time(Side::Coproc, Xfer::Memcpy, 64).as_secs_f64();
        assert!((10.0..=15.0).contains(&phi_ratio), "phi ratio {phi_ratio}");
    }

    #[test]
    fn large_dma_beats_memcpy_by_paper_ratios() {
        let m = m();
        let sz = 8 * 1024 * 1024;
        let host_ratio = m.copy_time(Side::Host, Xfer::Memcpy, sz).as_secs_f64()
            / m.copy_time(Side::Host, Xfer::Dma, sz).as_secs_f64();
        assert!(
            (130.0..=170.0).contains(&host_ratio),
            "host ratio {host_ratio}"
        );

        let phi_ratio = m.copy_time(Side::Coproc, Xfer::Memcpy, sz).as_secs_f64()
            / m.copy_time(Side::Coproc, Xfer::Dma, sz).as_secs_f64();
        assert!(
            (100.0..=135.0).contains(&phi_ratio),
            "phi ratio {phi_ratio}"
        );
    }

    #[test]
    fn host_initiation_is_faster() {
        let m = m();
        let sz = 4 * 1024 * 1024;
        let dma = m.copy_time(Side::Coproc, Xfer::Dma, sz).as_secs_f64()
            / m.copy_time(Side::Host, Xfer::Dma, sz).as_secs_f64();
        assert!((2.0..=2.6).contains(&dma), "dma asymmetry {dma}");

        let mc = m.copy_time(Side::Coproc, Xfer::Memcpy, sz).as_secs_f64()
            / m.copy_time(Side::Host, Xfer::Memcpy, sz).as_secs_f64();
        assert!((1.6..=2.0).contains(&mc), "memcpy asymmetry {mc}");
    }

    #[test]
    fn crossover_near_thresholds() {
        let m = m();
        // At the threshold the two mechanisms should be within ~2x of each
        // other (the paper picks round numbers, not exact crossovers).
        for side in [Side::Host, Side::Coproc] {
            let t = m.adaptive_threshold(side);
            let mc = m.copy_time(side, Xfer::Memcpy, t).as_secs_f64();
            let dma = m.copy_time(side, Xfer::Dma, t).as_secs_f64();
            let ratio = mc / dma;
            assert!((0.5..=2.0).contains(&ratio), "{side:?} ratio {ratio}");
            // Below threshold memcpy clearly wins; above, DMA clearly wins.
            assert!(m.copy_time(side, Xfer::Memcpy, 64) < m.copy_time(side, Xfer::Dma, 64));
            let big = 4 * 1024 * 1024;
            assert!(m.copy_time(side, Xfer::Dma, big) < m.copy_time(side, Xfer::Memcpy, big));
        }
    }

    #[test]
    fn adaptive_picks_best_of_both() {
        let m = m();
        for side in [Side::Host, Side::Coproc] {
            for sz in [64u64, 512, 4096, 65536, 1 << 20, 8 << 20] {
                let adaptive = m.adaptive_time(side, sz);
                let best =
                    m.copy_time(side, Xfer::Memcpy, sz)
                        .min(m.copy_time(side, Xfer::Dma, sz));
                // Adaptive is within 2.2x of the oracle for every size (the
                // paper's fixed thresholds are not exact crossovers).
                assert!(
                    adaptive.as_secs_f64() <= best.as_secs_f64() * 2.2,
                    "{side:?} {sz}: adaptive {adaptive} vs best {best}"
                );
            }
        }
    }

    #[test]
    fn sustained_memcpy_rates() {
        let m = m();
        let host = m.host_memcpy.sustained_bw();
        assert!((33e6..=37e6).contains(&host), "host {host}");
        let ratio = host / m.coproc_memcpy.sustained_bw();
        assert!((1.7..=1.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn line_count() {
        assert_eq!(CostModel::lines(1), 1);
        assert_eq!(CostModel::lines(64), 1);
        assert_eq!(CostModel::lines(65), 2);
        assert_eq!(CostModel::lines(4096), 64);
    }
}
