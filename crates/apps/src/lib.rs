#![warn(missing_docs)]

//! Realistic I/O-intensive applications (§6.2 of the paper).
//!
//! The paper evaluates Solros on two applications whose working sets live
//! on the NVMe SSD and whose compute is data-parallel (a good fit for the
//! co-processor):
//!
//! * **Text indexing** ([`text_index`]): build an inverted index over a
//!   document corpus — tokenization is embarrassingly parallel, but every
//!   byte must come off the disk. Solros improves it ~19× over the stock
//!   Xeon Phi because the stock I/O path is the bottleneck.
//! * **Image search** ([`image_search`]): nearest-neighbour search over a
//!   database of image feature vectors — heavier compute per byte, so the
//!   I/O-path improvement yields ~2×.
//!
//! Both applications are written against
//! [`solros_baseline::FileStore`], so the identical application body runs
//! on the Solros data plane, Phi-virtio, Phi-NFS, and the host-centric
//! mediation path.

pub mod corpus;
pub mod image_search;
pub mod text_index;

pub use corpus::{generate_corpus, CorpusSpec};
pub use image_search::{ImageDb, SearchResult};
pub use text_index::{distributed_index, read_index, write_index, IndexStats, TextIndexer};
