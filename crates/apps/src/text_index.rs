//! Inverted-index construction (the paper's text-indexing workload).
//!
//! Worker threads claim documents from a shared queue, read them through
//! the stack under test ([`solros_baseline::FileStore`]), tokenize, and
//! build per-thread partial indexes that are merged at the end — the
//! classic map/reduce indexing shape the Phi's many threads are good at,
//! as long as the I/O path can feed them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_baseline::FileStore;
use solros_proto::rpc_error::RpcErr;

/// Index construction results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Documents indexed.
    pub docs: usize,
    /// Total tokens seen.
    pub tokens: u64,
    /// Distinct terms.
    pub unique_terms: usize,
    /// Bytes read through the stack.
    pub bytes_read: u64,
}

/// The inverted index: term → postings `(doc, count)`, doc-sorted.
pub type Index = HashMap<String, Vec<(usize, u32)>>;

/// A multi-threaded inverted-index builder over a [`FileStore`].
pub struct TextIndexer<S: FileStore + ?Sized> {
    store: Arc<S>,
    threads: usize,
    /// Read granularity (one stack request per chunk).
    chunk: usize,
}

impl<S: FileStore + ?Sized + 'static> TextIndexer<S> {
    /// Creates an indexer with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(store: Arc<S>, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        Self {
            store,
            threads,
            chunk: 256 * 1024,
        }
    }

    /// Indexes every file under `dir`; returns the index and statistics.
    pub fn run(&self, dir: &str) -> Result<(Index, IndexStats), RpcErr> {
        let names = self.store.readdir(dir)?;
        let paths: Vec<String> = names.iter().map(|n| format!("{dir}/{n}")).collect();
        let next = Arc::new(AtomicUsize::new(0));
        let bytes_read = Arc::new(AtomicU64::new(0));
        let tokens = Arc::new(AtomicU64::new(0));
        let merged: Arc<Mutex<Index>> = Arc::new(Mutex::new(HashMap::new()));
        let first_err: Arc<Mutex<Option<RpcErr>>> = Arc::new(Mutex::new(None));

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let store = Arc::clone(&self.store);
                let paths = &paths;
                let next = Arc::clone(&next);
                let bytes_read = Arc::clone(&bytes_read);
                let tokens = Arc::clone(&tokens);
                let merged = Arc::clone(&merged);
                let first_err = Arc::clone(&first_err);
                let chunk = self.chunk;
                scope.spawn(move || {
                    let mut local: Index = HashMap::new();
                    loop {
                        let doc = next.fetch_add(1, Ordering::Relaxed);
                        if doc >= paths.len() || first_err.lock().is_some() {
                            break;
                        }
                        match Self::index_one(&*store, &paths[doc], doc, chunk, &mut local) {
                            Ok((b, t)) => {
                                bytes_read.fetch_add(b, Ordering::Relaxed);
                                tokens.fetch_add(t, Ordering::Relaxed);
                            }
                            Err(e) => {
                                first_err.lock().get_or_insert(e);
                                break;
                            }
                        }
                    }
                    // Merge the partial index.
                    let mut g = merged.lock();
                    for (term, postings) in local {
                        g.entry(term).or_default().extend(postings);
                    }
                });
            }
        });

        if let Some(e) = *first_err.lock() {
            return Err(e);
        }
        let mut index = Arc::try_unwrap(merged)
            .map_err(|_| RpcErr::Io)?
            .into_inner();
        for postings in index.values_mut() {
            postings.sort_unstable();
        }
        let stats = IndexStats {
            docs: paths.len(),
            tokens: tokens.load(Ordering::Relaxed),
            unique_terms: index.len(),
            bytes_read: bytes_read.load(Ordering::Relaxed),
        };
        Ok((index, stats))
    }

    /// Reads and tokenizes one document into `local`.
    pub(crate) fn index_one(
        store: &S,
        path: &str,
        doc: usize,
        chunk: usize,
        local: &mut Index,
    ) -> Result<(u64, u64), RpcErr> {
        let (handle, size) = store.open(path, false)?;
        // The size is known from open, so the whole document's chunk
        // reads are issued as one pipelined batch (a queue-depth the
        // Solros proxy coalesces; other stacks walk them sequentially).
        let reqs: Vec<(u64, usize)> = (0..size)
            .step_by(chunk.max(1))
            .map(|off| (off, chunk.min((size - off) as usize)))
            .collect();
        let mut text = Vec::with_capacity(size as usize);
        for piece in store.read_at_batch(handle, &reqs)? {
            text.extend_from_slice(&piece);
        }
        let mut counts: HashMap<&str, u32> = HashMap::new();
        let text_str = std::str::from_utf8(&text).map_err(|_| RpcErr::Io)?;
        let mut tokens = 0u64;
        for tok in text_str.split_ascii_whitespace() {
            *counts.entry(tok).or_insert(0) += 1;
            tokens += 1;
        }
        for (term, count) in counts {
            local
                .entry(term.to_string())
                .or_default()
                .push((doc, count));
        }
        Ok((text.len() as u64, tokens))
    }
}

/// Serializes an index to a file through the stack under test and
/// returns the byte count. Terms are written sorted, so the encoding is
/// deterministic: `[u32 terms] ([u16 len][term][u32 n] ([u32 doc][u32 count])*)*`.
pub fn write_index<S: FileStore + ?Sized>(
    index: &Index,
    store: &S,
    path: &str,
) -> Result<u64, RpcErr> {
    let mut terms: Vec<&String> = index.keys().collect();
    terms.sort();
    let mut buf = Vec::new();
    buf.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for term in terms {
        let postings = &index[term];
        buf.extend_from_slice(&(term.len() as u16).to_le_bytes());
        buf.extend_from_slice(term.as_bytes());
        buf.extend_from_slice(&(postings.len() as u32).to_le_bytes());
        for &(doc, count) in postings {
            buf.extend_from_slice(&(doc as u32).to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
    }
    let handle = store.create(path)?;
    let mut off = 0u64;
    for chunk in buf.chunks(256 * 1024) {
        store.write_at(handle, off, chunk)?;
        off += chunk.len() as u64;
    }
    Ok(off)
}

/// Loads an index previously written by [`write_index`].
pub fn read_index<S: FileStore + ?Sized>(store: &S, path: &str) -> Result<Index, RpcErr> {
    let (handle, size) = store.open(path, false)?;
    const CHUNK: usize = 256 * 1024;
    let reqs: Vec<(u64, usize)> = (0..size)
        .step_by(CHUNK)
        .map(|off| (off, CHUNK.min((size - off) as usize)))
        .collect();
    let mut buf = Vec::with_capacity(size as usize);
    for (piece, &(_, want)) in store.read_at_batch(handle, &reqs)?.iter().zip(&reqs) {
        if piece.len() != want {
            return Err(RpcErr::Io);
        }
        buf.extend_from_slice(piece);
    }
    let take_u32 = |b: &[u8], p: &mut usize| -> Result<u32, RpcErr> {
        let v = b
            .get(*p..*p + 4)
            .ok_or(RpcErr::Io)?
            .try_into()
            .map_err(|_| RpcErr::Io)?;
        *p += 4;
        Ok(u32::from_le_bytes(v))
    };
    let mut p = 0usize;
    let n_terms = take_u32(&buf, &mut p)?;
    let mut index: Index = HashMap::with_capacity(n_terms as usize);
    for _ in 0..n_terms {
        let len = u16::from_le_bytes(
            buf.get(p..p + 2)
                .ok_or(RpcErr::Io)?
                .try_into()
                .map_err(|_| RpcErr::Io)?,
        ) as usize;
        p += 2;
        let term = std::str::from_utf8(buf.get(p..p + len).ok_or(RpcErr::Io)?)
            .map_err(|_| RpcErr::Io)?
            .to_string();
        p += len;
        let n = take_u32(&buf, &mut p)?;
        let mut postings = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let doc = take_u32(&buf, &mut p)? as usize;
            let count = take_u32(&buf, &mut p)?;
            postings.push((doc, count));
        }
        index.insert(term, postings);
    }
    if p != buf.len() {
        return Err(RpcErr::Io);
    }
    Ok(index)
}

/// Builds one inverted index with the documents sharded across several
/// stacks (e.g. one [`FileStore`] per co-processor over the shared Solros
/// file system), merging the partial indexes — the multi-card scaling
/// shape of §6.2/§6.3.
pub fn distributed_index<S: FileStore + ?Sized + 'static>(
    stores: &[Arc<S>],
    dir: &str,
    threads_per_store: usize,
) -> Result<(Index, IndexStats), RpcErr> {
    assert!(!stores.is_empty(), "need at least one store");
    let names = stores[0].readdir(dir)?;
    let mut merged: Index = HashMap::new();
    let mut stats = IndexStats {
        docs: 0,
        tokens: 0,
        unique_terms: 0,
        bytes_read: 0,
    };
    // Shard by document index modulo the number of stores. Each shard is
    // indexed with global document ids, so the merged result is identical
    // to a single-store run.
    let results: Vec<Result<(Index, u64, u64, usize), RpcErr>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stores
            .iter()
            .enumerate()
            .map(|(shard, store)| {
                let names = &names;
                let store = Arc::clone(store);
                let n_shards = stores.len();
                scope.spawn(move || {
                    let mut local: Index = HashMap::new();
                    let mut bytes = 0u64;
                    let mut tokens = 0u64;
                    let mut docs = 0usize;
                    for (doc, name) in names.iter().enumerate() {
                        if doc % n_shards != shard {
                            continue;
                        }
                        let path = format!("{dir}/{name}");
                        let (b, t) =
                            TextIndexer::index_one(&*store, &path, doc, 256 * 1024, &mut local)?;
                        bytes += b;
                        tokens += t;
                        docs += 1;
                    }
                    // Suppress the unused warning for single-threaded shards.
                    let _ = threads_per_store;
                    Ok((local, bytes, tokens, docs))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard panicked"))
            .collect()
    });
    for r in results {
        let (local, bytes, tokens, docs) = r?;
        stats.bytes_read += bytes;
        stats.tokens += tokens;
        stats.docs += docs;
        for (term, postings) in local {
            merged.entry(term).or_default().extend(postings);
        }
    }
    for postings in merged.values_mut() {
        postings.sort_unstable();
    }
    stats.unique_terms = merged.len();
    Ok((merged, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, word, CorpusSpec};
    use solros_baseline::VirtioFs;
    use solros_fs::FileSystem;
    use solros_nvme::NvmeDevice;

    fn store() -> Arc<VirtioFs> {
        Arc::new(VirtioFs::new(Arc::new(
            FileSystem::mkfs(NvmeDevice::new(32_768), 512).unwrap(),
        )))
    }

    #[test]
    fn index_matches_corpus() {
        let s = store();
        let spec = CorpusSpec::small();
        let total = generate_corpus(&*s, "/corpus", &spec).unwrap();
        let indexer = TextIndexer::new(Arc::clone(&s), 4);
        let (index, stats) = indexer.run("/corpus").unwrap();
        assert_eq!(stats.docs, spec.docs);
        assert_eq!(stats.bytes_read, total);
        assert!(stats.tokens > 0);
        assert!(stats.unique_terms > 50);
        // The most common Zipf word appears in every document.
        let top = index.get(&word(0)).expect("top word indexed");
        assert_eq!(top.len(), spec.docs);
        // Postings are doc-sorted and counts positive.
        for postings in index.values() {
            assert!(postings.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(postings.iter().all(|&(_, c)| c > 0));
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let s = store();
        let spec = CorpusSpec::small();
        generate_corpus(&*s, "/c", &spec).unwrap();
        let (i1, s1) = TextIndexer::new(Arc::clone(&s), 1).run("/c").unwrap();
        let (i8, s8) = TextIndexer::new(Arc::clone(&s), 8).run("/c").unwrap();
        assert_eq!(s1, s8);
        assert_eq!(i1, i8);
    }

    #[test]
    fn distributed_sharding_matches_single_store() {
        let s1 = store();
        let spec = CorpusSpec::small();
        generate_corpus(&*s1, "/c", &spec).unwrap();
        let (single, single_stats) = TextIndexer::new(Arc::clone(&s1), 2).run("/c").unwrap();
        // "Two co-processors": two handles onto the same store here; the
        // integration suite runs the real multi-data-plane version.
        let shards = vec![Arc::clone(&s1), Arc::clone(&s1)];
        let (dist, dist_stats) = crate::text_index::distributed_index(&shards, "/c", 2).unwrap();
        assert_eq!(single, dist);
        assert_eq!(single_stats.tokens, dist_stats.tokens);
        assert_eq!(single_stats.docs, dist_stats.docs);
        assert_eq!(single_stats.bytes_read, dist_stats.bytes_read);
    }

    #[test]
    fn index_persists_through_the_stack() {
        let s = store();
        let spec = CorpusSpec::small();
        generate_corpus(&*s, "/c", &spec).unwrap();
        let (index, _) = TextIndexer::new(Arc::clone(&s), 2).run("/c").unwrap();
        let bytes = crate::text_index::write_index(&index, &*s, "/index.bin").unwrap();
        assert!(bytes > 1_000);
        let loaded = crate::text_index::read_index(&*s, "/index.bin").unwrap();
        assert_eq!(loaded, index);
        // A truncated index file is rejected, not misparsed.
        let (h, size) = s.open("/index.bin", false).unwrap();
        let _ = (h, size);
        let s2 = store();
        let hh = s2.create("/short").unwrap();
        s2.write_at(hh, 0, &1000u32.to_le_bytes()).unwrap();
        assert!(crate::text_index::read_index(&*s2, "/short").is_err());
    }

    #[test]
    fn missing_dir_errors() {
        let s = store();
        let r = TextIndexer::new(s, 2).run("/nope");
        assert_eq!(r.unwrap_err(), RpcErr::NotFound);
    }
}
