//! Feature-vector image search (the paper's image-search workload).
//!
//! The database is a flat file of fixed-dimension `f32` feature vectors
//! (one per image). A query scans the database in chunks read through the
//! stack under test, computes L2 distances in parallel, and keeps the
//! global top-k — heavy SIMD-friendly compute per byte, which is why the
//! paper sees a smaller (≈2×) I/O-path speedup here than for indexing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_baseline::FileStore;
use solros_proto::rpc_error::RpcErr;
use solros_simkit::DetRng;

/// Feature dimension (SIFT-like descriptors).
pub const DIM: usize = 128;
/// Bytes per vector.
pub const VEC_BYTES: usize = DIM * 4;
/// Pipelined sub-reads each worker splits one database batch into.
const SUB_READS: usize = 8;

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Image (vector) index in the database.
    pub id: usize,
    /// Squared L2 distance to the query.
    pub distance: f32,
}

/// A feature-vector database stored through a [`FileStore`].
pub struct ImageDb<S: FileStore + ?Sized> {
    store: Arc<S>,
    path: String,
    /// Vectors per stack read request.
    pub batch: usize,
}

impl<S: FileStore + ?Sized + 'static> ImageDb<S> {
    /// Opens (without validating) a database at `path`.
    pub fn new(store: Arc<S>, path: &str) -> Self {
        Self {
            store,
            path: path.to_string(),
            batch: 512,
        }
    }

    /// Generates and writes a database of `n` vectors; returns total bytes.
    pub fn build(&self, n: usize, seed: u64) -> Result<u64, RpcErr> {
        let handle = self.store.create(&self.path)?;
        let mut rng = DetRng::seed(seed);
        let mut off = 0u64;
        let chunk_vecs = 1024;
        let mut buf = Vec::with_capacity(chunk_vecs * VEC_BYTES);
        let mut remaining = n;
        while remaining > 0 {
            let now = remaining.min(chunk_vecs);
            buf.clear();
            for _ in 0..now {
                for _ in 0..DIM {
                    let v = rng.unit() as f32;
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            self.store.write_at(handle, off, &buf)?;
            off += buf.len() as u64;
            remaining -= now;
        }
        Ok(off)
    }

    /// Returns the vector count from the file size.
    pub fn len(&self) -> Result<usize, RpcErr> {
        Ok(self.store.size_of(&self.path)? as usize / VEC_BYTES)
    }

    /// Returns true when the database is empty.
    pub fn is_empty(&self) -> Result<bool, RpcErr> {
        Ok(self.len()? == 0)
    }

    /// Reconstructs the vector with index `id` (deterministic; used by
    /// tests to craft queries with a known nearest neighbour).
    pub fn vector_for_seed(n: usize, seed: u64, id: usize) -> Vec<f32> {
        let mut rng = DetRng::seed(seed);
        let mut v = vec![0f32; DIM];
        for i in 0..=id.min(n - 1) {
            for slot in v.iter_mut() {
                *slot = rng.unit() as f32;
            }
            if i == id {
                break;
            }
        }
        v
    }

    /// Finds the `k` nearest vectors to `query` using `threads` workers.
    /// Returns hits sorted by ascending distance; also reports bytes read.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        threads: usize,
    ) -> Result<(Vec<SearchResult>, u64), RpcErr> {
        assert_eq!(query.len(), DIM, "query dimension mismatch");
        assert!(threads > 0 && k > 0);
        let n = self.len()?;
        let (handle, _) = self.store.open(&self.path, false)?;
        let next_batch = Arc::new(AtomicUsize::new(0));
        let bytes_read = Arc::new(AtomicU64::new(0));
        let best: Arc<Mutex<Vec<SearchResult>>> = Arc::new(Mutex::new(Vec::new()));
        let first_err: Arc<Mutex<Option<RpcErr>>> = Arc::new(Mutex::new(None));
        let batches = n.div_ceil(self.batch);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let store = Arc::clone(&self.store);
                let next_batch = Arc::clone(&next_batch);
                let bytes_read = Arc::clone(&bytes_read);
                let best = Arc::clone(&best);
                let first_err = Arc::clone(&first_err);
                let batch = self.batch;
                scope.spawn(move || {
                    let mut local: Vec<SearchResult> = Vec::new();
                    let mut buf = vec![0u8; batch * VEC_BYTES];
                    loop {
                        let b = next_batch.fetch_add(1, Ordering::Relaxed);
                        if b >= batches || first_err.lock().is_some() {
                            break;
                        }
                        let start_vec = b * batch;
                        let count = batch.min(n - start_vec);
                        let want = count * VEC_BYTES;
                        let off = (start_vec * VEC_BYTES) as u64;
                        // Split the batch into pipelined sub-reads so stacks
                        // with a submission queue keep several requests in
                        // flight per batch instead of one serial round trip.
                        let sub = (want / SUB_READS).max(VEC_BYTES);
                        let reqs: Vec<(u64, usize)> = (0..want)
                            .step_by(sub)
                            .map(|rel| (off + rel as u64, sub.min(want - rel)))
                            .collect();
                        match store.read_at_batch(handle, &reqs) {
                            Ok(pieces) => {
                                let mut at = 0usize;
                                for piece in &pieces {
                                    buf[at..at + piece.len()].copy_from_slice(piece);
                                    at += piece.len();
                                }
                                if at != want {
                                    first_err.lock().get_or_insert(RpcErr::Io);
                                    break;
                                }
                            }
                            Err(e) => {
                                first_err.lock().get_or_insert(e);
                                break;
                            }
                        }
                        bytes_read.fetch_add(want as u64, Ordering::Relaxed);
                        for v in 0..count {
                            let base = v * VEC_BYTES;
                            let mut dist = 0f32;
                            for d in 0..DIM {
                                let raw: [u8; 4] = buf[base + d * 4..base + d * 4 + 4]
                                    .try_into()
                                    .expect("4 bytes");
                                let x = f32::from_le_bytes(raw);
                                let delta = x - query[d];
                                dist += delta * delta;
                            }
                            local.push(SearchResult {
                                id: start_vec + v,
                                distance: dist,
                            });
                            // Keep the local candidate set small.
                            if local.len() >= 4 * k {
                                local.sort_by(|a, b| a.distance.total_cmp(&b.distance));
                                local.truncate(k);
                            }
                        }
                    }
                    best.lock().extend(local);
                });
            }
        });

        if let Some(e) = *first_err.lock() {
            return Err(e);
        }
        let mut all = Arc::try_unwrap(best).map_err(|_| RpcErr::Io)?.into_inner();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        Ok((all, bytes_read.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_baseline::VirtioFs;
    use solros_fs::FileSystem;
    use solros_nvme::NvmeDevice;

    fn store() -> Arc<VirtioFs> {
        Arc::new(VirtioFs::new(Arc::new(
            FileSystem::mkfs(NvmeDevice::new(65_536), 1024).unwrap(),
        )))
    }

    #[test]
    fn exact_match_is_found_first() {
        let s = store();
        let db = ImageDb::new(Arc::clone(&s), "/db");
        let n = 600;
        db.build(n, 7).unwrap();
        assert_eq!(db.len().unwrap(), n);
        // Query with vector 123 itself: distance 0 at id 123.
        let q = ImageDb::<VirtioFs>::vector_for_seed(n, 7, 123);
        let (hits, bytes) = db.search(&q, 5, 4).unwrap();
        assert_eq!(hits[0].id, 123);
        assert!(hits[0].distance < 1e-9);
        assert_eq!(hits.len(), 5);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert_eq!(bytes as usize, n * VEC_BYTES);
    }

    #[test]
    fn thread_count_invariant() {
        let s = store();
        let db = ImageDb::new(Arc::clone(&s), "/db");
        db.build(300, 9).unwrap();
        let q = ImageDb::<VirtioFs>::vector_for_seed(300, 9, 42);
        let (h1, _) = db.search(&q, 8, 1).unwrap();
        let (h8, _) = db.search(&q, 8, 8).unwrap();
        assert_eq!(h1, h8);
    }

    #[test]
    fn missing_db_errors() {
        let s = store();
        let db = ImageDb::new(s, "/missing");
        let q = vec![0f32; DIM];
        assert!(db.search(&q, 1, 1).is_err());
    }
}
