//! Synthetic document corpus generation.
//!
//! Documents are drawn from a Zipf-distributed vocabulary so term
//! frequencies look like natural text (a few very common words, a long
//! tail), which gives the inverted index realistic posting-list shapes.

use solros_baseline::FileStore;
use solros_proto::rpc_error::RpcErr;
use solros_simkit::DetRng;

/// Corpus shape parameters.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of documents.
    pub docs: usize,
    /// Approximate bytes per document.
    pub doc_bytes: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf skew in `(0, 1)`.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// A small corpus for tests.
    pub fn small() -> Self {
        CorpusSpec {
            docs: 20,
            doc_bytes: 8_000,
            vocab: 500,
            skew: 0.8,
            seed: 42,
        }
    }
}

/// Deterministically generates the word with index `i`.
pub fn word(i: usize) -> String {
    // Base-26 encoding gives distinct, realistic-looking tokens.
    let mut n = i + 1;
    let mut s = String::new();
    while n > 0 {
        s.push((b'a' + ((n - 1) % 26) as u8) as char);
        n = (n - 1) / 26;
    }
    s
}

/// Generates one document's text.
pub fn document_text(spec: &CorpusSpec, doc: usize) -> String {
    let mut rng = DetRng::seed(spec.seed ^ (doc as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut text = String::with_capacity(spec.doc_bytes + 16);
    while text.len() < spec.doc_bytes {
        let w = rng.zipf(spec.vocab, spec.skew);
        text.push_str(&word(w));
        text.push(' ');
    }
    text
}

/// Writes the corpus under `dir` (one file per document, named `doc-N`).
/// Returns total bytes written.
pub fn generate_corpus<S: FileStore + ?Sized>(
    store: &S,
    dir: &str,
    spec: &CorpusSpec,
) -> Result<u64, RpcErr> {
    match store.mkdir(dir) {
        Ok(()) | Err(RpcErr::Exists) => {}
        Err(e) => return Err(e),
    }
    let mut total = 0u64;
    for d in 0..spec.docs {
        let text = document_text(spec, d);
        let path = format!("{dir}/doc-{d}");
        let handle = store.create(&path)?;
        store.write_at(handle, 0, text.as_bytes())?;
        total += text.len() as u64;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000 {
            assert!(seen.insert(word(i)), "duplicate word for {i}");
        }
        assert_eq!(word(0), "a");
        assert_eq!(word(25), "z");
        assert_eq!(word(26), "aa");
    }

    #[test]
    fn documents_are_deterministic_and_sized() {
        let spec = CorpusSpec::small();
        let a = document_text(&spec, 3);
        let b = document_text(&spec, 3);
        assert_eq!(a, b);
        assert!(a.len() >= spec.doc_bytes);
        assert!(a.len() < spec.doc_bytes + 64);
        let c = document_text(&spec, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_makes_common_words_common() {
        let spec = CorpusSpec {
            doc_bytes: 50_000,
            ..CorpusSpec::small()
        };
        let text = document_text(&spec, 0);
        let the = word(0);
        let rare = word(spec.vocab - 1);
        let count = |w: &str| text.split(' ').filter(|t| *t == w).count();
        assert!(count(&the) > count(&rare) * 3, "skew not visible");
    }
}
