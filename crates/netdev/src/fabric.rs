//! Connection fabric: listeners, establishment, byte streams, teardown.
//!
//! The fabric is symmetric: each connection has a *server* end (terminated
//! by whichever TCP stack runs on the machine under test) and a *client*
//! end (the remote load-generating machine). Data is a byte stream per
//! direction, like TCP after reassembly.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Connection identifier.
pub type ConnId = u64;

/// Which end of a connection is acting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndKind {
    /// The machine under test (where the TCP stack terminates).
    Server,
    /// The remote client machine.
    Client,
}

impl EndKind {
    fn peer(self) -> EndKind {
        match self {
            EndKind::Server => EndKind::Client,
            EndKind::Client => EndKind::Server,
        }
    }
}

/// Fabric errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkError {
    /// No listener on the port.
    ConnRefused,
    /// Port already has a listener.
    AddrInUse,
    /// Unknown connection.
    NotConnected,
    /// The peer closed its end; no more data will arrive.
    Closed,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ConnRefused => write!(f, "connection refused"),
            NetworkError::AddrInUse => write!(f, "address in use"),
            NetworkError::NotConnected => write!(f, "not connected"),
            NetworkError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for NetworkError {}

struct Stream {
    bytes: VecDeque<u8>,
    /// Writer closed: once drained, reads return `Closed`.
    fin: bool,
}

impl Stream {
    fn new() -> Self {
        Self {
            bytes: VecDeque::new(),
            fin: false,
        }
    }
}

struct Conn {
    /// Client → server byte stream.
    to_server: Stream,
    /// Server → client byte stream.
    to_client: Stream,
    /// Remote host id (for `Accepted` events).
    client_addr: u64,
}

struct Listener {
    pending: VecDeque<ConnId>,
    backlog: usize,
}

#[derive(Default)]
struct Inner {
    listeners: HashMap<u16, Listener>,
    conns: HashMap<ConnId, Conn>,
    next_conn: ConnId,
}

/// The simulated network: NIC + remote clients.
///
/// # Examples
///
/// ```
/// use solros_netdev::{EndKind, Network};
///
/// let net = Network::new();
/// net.listen(80, 16).unwrap();
/// let conn = net.client_connect(80, 1).unwrap();
/// assert_eq!(net.poll_accept(80).unwrap(), Some((conn, 1)));
/// net.send(conn, EndKind::Client, b"ping").unwrap();
/// assert_eq!(net.recv(conn, EndKind::Server, 64).unwrap(), b"ping");
/// ```
#[derive(Default)]
pub struct Network {
    inner: Mutex<Inner>,
}

impl Network {
    /// Creates an empty fabric.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a listener on `port`.
    pub fn listen(&self, port: u16, backlog: usize) -> Result<(), NetworkError> {
        let mut g = self.inner.lock();
        if g.listeners.contains_key(&port) {
            return Err(NetworkError::AddrInUse);
        }
        g.listeners.insert(
            port,
            Listener {
                pending: VecDeque::new(),
                backlog: backlog.max(1),
            },
        );
        Ok(())
    }

    /// Removes a listener; pending un-accepted connections are reset.
    pub fn unlisten(&self, port: u16) {
        let mut g = self.inner.lock();
        if let Some(l) = g.listeners.remove(&port) {
            for c in l.pending {
                g.conns.remove(&c);
            }
        }
    }

    /// A remote client connects to `port`; `client_addr` identifies it.
    pub fn client_connect(&self, port: u16, client_addr: u64) -> Result<ConnId, NetworkError> {
        let mut g = self.inner.lock();
        let id = g.next_conn;
        let Some(l) = g.listeners.get_mut(&port) else {
            return Err(NetworkError::ConnRefused);
        };
        if l.pending.len() >= l.backlog {
            return Err(NetworkError::ConnRefused);
        }
        l.pending.push_back(id);
        g.next_conn += 1;
        g.conns.insert(
            id,
            Conn {
                to_server: Stream::new(),
                to_client: Stream::new(),
                client_addr,
            },
        );
        Ok(id)
    }

    /// Server side: takes the next pending connection on `port`, returning
    /// `(conn, client_addr)`.
    pub fn poll_accept(&self, port: u16) -> Result<Option<(ConnId, u64)>, NetworkError> {
        let mut g = self.inner.lock();
        let Some(l) = g.listeners.get_mut(&port) else {
            return Err(NetworkError::NotConnected);
        };
        match l.pending.pop_front() {
            Some(id) => {
                let addr = g.conns.get(&id).map(|c| c.client_addr).unwrap_or(0);
                Ok(Some((id, addr)))
            }
            None => Ok(None),
        }
    }

    fn stream_mut(conn: &mut Conn, from: EndKind) -> &mut Stream {
        match from {
            EndKind::Client => &mut conn.to_server,
            EndKind::Server => &mut conn.to_client,
        }
    }

    /// Sends bytes from one end; returns bytes accepted.
    pub fn send(&self, id: ConnId, from: EndKind, data: &[u8]) -> Result<usize, NetworkError> {
        let mut g = self.inner.lock();
        let conn = g.conns.get_mut(&id).ok_or(NetworkError::NotConnected)?;
        let s = Self::stream_mut(conn, from);
        if s.fin {
            return Err(NetworkError::Closed);
        }
        s.bytes.extend(data.iter().copied());
        Ok(data.len())
    }

    /// Receives up to `max` bytes at one end. Empty result means "no data
    /// yet"; `Err(Closed)` means the peer closed and the stream drained.
    pub fn recv(&self, id: ConnId, at: EndKind, max: usize) -> Result<Vec<u8>, NetworkError> {
        let mut g = self.inner.lock();
        let conn = g.conns.get_mut(&id).ok_or(NetworkError::NotConnected)?;
        let s = Self::stream_mut(conn, at.peer());
        if s.bytes.is_empty() {
            if s.fin {
                // FIN observed; reap once both directions are closed and
                // drained (TIME_WAIT collapses instantly in simulation).
                let both = conn.to_server.fin && conn.to_client.fin;
                let drained = conn.to_server.bytes.is_empty() && conn.to_client.bytes.is_empty();
                if both && drained {
                    g.conns.remove(&id);
                }
                return Err(NetworkError::Closed);
            }
            return Ok(Vec::new());
        }
        let n = max.min(s.bytes.len());
        Ok(s.bytes.drain(..n).collect())
    }

    /// Bytes currently queued toward `at`.
    pub fn pending_bytes(&self, id: ConnId, at: EndKind) -> Result<usize, NetworkError> {
        let mut g = self.inner.lock();
        let conn = g.conns.get_mut(&id).ok_or(NetworkError::NotConnected)?;
        Ok(Self::stream_mut(conn, at.peer()).bytes.len())
    }

    /// Closes one end's write direction (TCP FIN). When both ends have
    /// closed, the connection is reaped.
    pub fn close(&self, id: ConnId, from: EndKind) -> Result<(), NetworkError> {
        let mut g = self.inner.lock();
        let conn = g.conns.get_mut(&id).ok_or(NetworkError::NotConnected)?;
        Self::stream_mut(conn, from).fin = true;
        Ok(())
    }

    /// Number of live connections (tests and leak checks).
    pub fn live_connections(&self) -> usize {
        self.inner.lock().conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuse_without_listener() {
        let net = Network::new();
        assert_eq!(net.client_connect(80, 1), Err(NetworkError::ConnRefused));
    }

    #[test]
    fn addr_in_use() {
        let net = Network::new();
        net.listen(80, 4).unwrap();
        assert_eq!(net.listen(80, 4), Err(NetworkError::AddrInUse));
        net.unlisten(80);
        net.listen(80, 4).unwrap();
    }

    #[test]
    fn backlog_limits_pending() {
        let net = Network::new();
        net.listen(80, 2).unwrap();
        net.client_connect(80, 1).unwrap();
        net.client_connect(80, 2).unwrap();
        assert_eq!(net.client_connect(80, 3), Err(NetworkError::ConnRefused));
        // Accepting frees a slot.
        net.poll_accept(80).unwrap().unwrap();
        net.client_connect(80, 3).unwrap();
    }

    #[test]
    fn byte_stream_semantics() {
        let net = Network::new();
        net.listen(80, 4).unwrap();
        let c = net.client_connect(80, 7).unwrap();
        let (conn, addr) = net.poll_accept(80).unwrap().unwrap();
        assert_eq!((conn, addr), (c, 7));
        net.send(c, EndKind::Client, b"hello ").unwrap();
        net.send(c, EndKind::Client, b"world").unwrap();
        // Stream coalesces; partial reads respect max.
        assert_eq!(net.recv(c, EndKind::Server, 8).unwrap(), b"hello wo");
        assert_eq!(net.recv(c, EndKind::Server, 64).unwrap(), b"rld");
        assert!(net.recv(c, EndKind::Server, 64).unwrap().is_empty());
        // Reply direction.
        net.send(c, EndKind::Server, b"ok").unwrap();
        assert_eq!(net.recv(c, EndKind::Client, 64).unwrap(), b"ok");
    }

    #[test]
    fn close_semantics() {
        let net = Network::new();
        net.listen(80, 4).unwrap();
        let c = net.client_connect(80, 1).unwrap();
        net.poll_accept(80).unwrap().unwrap();
        net.send(c, EndKind::Client, b"bye").unwrap();
        net.close(c, EndKind::Client).unwrap();
        // Server drains remaining data, then sees Closed.
        assert_eq!(net.recv(c, EndKind::Server, 64).unwrap(), b"bye");
        assert_eq!(net.recv(c, EndKind::Server, 64), Err(NetworkError::Closed));
        // Sending into a closed write direction fails.
        assert_eq!(
            net.send(c, EndKind::Client, b"x"),
            Err(NetworkError::Closed)
        );
        // Server can still reply until it closes too.
        net.send(c, EndKind::Server, b"ack").unwrap();
        assert_eq!(net.recv(c, EndKind::Client, 64).unwrap(), b"ack");
        net.close(c, EndKind::Server).unwrap();
        assert_eq!(net.recv(c, EndKind::Client, 64), Err(NetworkError::Closed));
        assert_eq!(net.live_connections(), 0, "fully closed connections reaped");
    }

    #[test]
    fn unlisten_resets_pending() {
        let net = Network::new();
        net.listen(80, 4).unwrap();
        let c = net.client_connect(80, 1).unwrap();
        net.unlisten(80);
        assert_eq!(
            net.send(c, EndKind::Client, b"x"),
            Err(NetworkError::NotConnected)
        );
    }

    #[test]
    fn many_concurrent_connections() {
        let net = Network::new();
        net.listen(9000, 1024).unwrap();
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let net = std::sync::Arc::clone(&net);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let c = net.client_connect(9000, t * 100 + i).unwrap();
                        net.send(c, EndKind::Client, &t.to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut accepted = 0;
        while let Some((conn, addr)) = net.poll_accept(9000).unwrap() {
            let data = net.recv(conn, EndKind::Server, 8).unwrap();
            assert_eq!(u64::from_le_bytes(data.try_into().unwrap()), addr / 100);
            accepted += 1;
        }
        assert_eq!(accepted, 400);
    }
}
