//! Network cost model (timed mode).
//!
//! Calibrated to Figure 1b and the testbed description (§6): a 100 GbE
//! link between client and server; the host's TCP stack handles a 64-byte
//! ping-pong in tens of microseconds; Solros adds a bounded
//! transport-forwarding cost; the stock Xeon Phi runs the whole TCP/IP
//! stack on slow, oversubscribed cores, giving both a much higher median
//! and a heavy scheduler-induced tail — its 99th percentile is ~7× worse
//! than Solros.

use solros_simkit::time::transfer_time;
use solros_simkit::{DetRng, SimTime};

/// Which TCP stack terminates the connection on the machine under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Host Linux stack (the `Host` curve).
    Host,
    /// Solros: host stack + proxy + transport to the co-processor.
    Solros,
    /// Stock co-processor: full TCP/IP on Xeon Phi cores, bridged.
    PhiLinux,
}

/// The network cost model.
#[derive(Debug, Clone)]
pub struct NetPerf {
    /// One-way wire latency (client NIC to server NIC).
    pub wire_latency: SimTime,
    /// Wire bandwidth in bytes/s (100 GbE = 12.5 GB/s).
    pub wire_bw: f64,
    /// Host stack per-message processing cost (rx or tx side).
    pub host_per_msg: SimTime,
    /// Host stack per-byte cost (checksum/copy).
    pub host_ns_per_byte: f64,
    /// Solros transport forwarding per message (proxy + ring + dispatch).
    pub solros_forward: SimTime,
    /// Phi stack per-message processing cost (branchy code on slow cores).
    pub phi_per_msg: SimTime,
    /// Phi stack per-byte cost.
    pub phi_ns_per_byte: f64,
    /// Probability of a scheduling stall on the Phi per message.
    pub phi_stall_p: f64,
    /// Mean stall duration when one occurs (exponential).
    pub phi_stall_mean: SimTime,
    /// Mean of the Solros transport jitter (combining batch variability).
    pub solros_jitter_mean: SimTime,
    /// Mean of the Phi baseline jitter (slow-core scheduling noise).
    pub phi_jitter_mean: SimTime,
}

impl NetPerf {
    /// The Figure 1b calibration.
    pub fn paper_default() -> Self {
        NetPerf {
            wire_latency: SimTime::from_us(4),
            wire_bw: 12.5e9,
            host_per_msg: SimTime::from_us(6),
            host_ns_per_byte: 0.4,
            solros_forward: SimTime::from_us(11),
            phi_per_msg: SimTime::from_us(70),
            phi_ns_per_byte: 4.0,
            phi_stall_p: 0.07,
            phi_stall_mean: SimTime::from_us(300),
            solros_jitter_mean: SimTime::from_us(12),
            phi_jitter_mean: SimTime::from_us(40),
        }
    }

    /// One-way wire time for a message of `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        self.wire_latency + transfer_time(bytes, self.wire_bw)
    }

    /// Server-side processing time for one inbound-plus-outbound message
    /// pass through the given stack (no queueing; add jitter separately).
    pub fn stack_time(&self, stack: StackKind, bytes: u64) -> SimTime {
        match stack {
            StackKind::Host => {
                self.host_per_msg * 2
                    + SimTime::from_ns((bytes as f64 * self.host_ns_per_byte * 2.0) as u64)
            }
            StackKind::Solros => {
                // Host stack does rx+tx, plus forwarding each way over the
                // transport service to/from the co-processor.
                self.stack_time(StackKind::Host, bytes) + self.solros_forward * 2
            }
            StackKind::PhiLinux => {
                self.phi_per_msg * 2
                    + SimTime::from_ns((bytes as f64 * self.phi_ns_per_byte * 2.0) as u64)
            }
        }
    }

    /// Samples one full ping-pong round-trip latency for a `bytes`-sized
    /// message, including the Phi's heavy scheduling tail when applicable.
    pub fn sample_rtt(&self, stack: StackKind, bytes: u64, rng: &mut DetRng) -> SimTime {
        let mut t = self.wire_time(bytes) * 2 + self.stack_time(stack, bytes);
        // Light universal jitter (NIC interrupt moderation etc.).
        t += SimTime::from_ns((rng.exp(1.5e3)) as u64);
        match stack {
            StackKind::Host => {}
            StackKind::Solros => {
                t += SimTime::from_secs_f64(rng.exp(self.solros_jitter_mean.as_secs_f64()));
            }
            StackKind::PhiLinux => {
                t += SimTime::from_secs_f64(rng.exp(self.phi_jitter_mean.as_secs_f64()));
                if rng.chance(self.phi_stall_p) {
                    t += SimTime::from_secs_f64(rng.exp(self.phi_stall_mean.as_secs_f64()));
                }
            }
        }
        t
    }

    /// Sustained per-connection stream throughput (bytes/s) for a one-way
    /// stream of `bytes`-sized messages through the given stack.
    pub fn stream_throughput(&self, stack: StackKind, bytes: u64) -> f64 {
        // Per-message server cost is half a ping-pong pass.
        let per_msg = self.stack_time(stack, bytes) / 2;
        let wire = transfer_time(bytes, self.wire_bw);
        let bottleneck = per_msg.max(wire);
        bytes as f64 / bottleneck.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_simkit::Histogram;

    fn p() -> NetPerf {
        NetPerf::paper_default()
    }

    #[test]
    fn host_beats_solros_beats_phi() {
        let p = p();
        let h = p.stack_time(StackKind::Host, 64);
        let s = p.stack_time(StackKind::Solros, 64);
        let l = p.stack_time(StackKind::PhiLinux, 64);
        assert!(h < s && s < l, "{h} {s} {l}");
    }

    #[test]
    fn tail_ratio_matches_figure_1b() {
        let p = p();
        let mut rng = DetRng::seed(42);
        let mut solros = Histogram::new();
        let mut phi = Histogram::new();
        for _ in 0..20_000 {
            solros.record(p.sample_rtt(StackKind::Solros, 64, &mut rng));
            phi.record(p.sample_rtt(StackKind::PhiLinux, 64, &mut rng));
        }
        let ratio = phi.percentile(99.0).as_secs_f64() / solros.percentile(99.0).as_secs_f64();
        assert!(
            (4.0..=12.0).contains(&ratio),
            "99th percentile ratio {ratio} should be ~7x"
        );
        // Absolute scales sane: Solros median well under 100us, Phi p99
        // around a millisecond (Figure 1b's x-axis range).
        assert!(solros.percentile(50.0) < SimTime::from_us(100));
        assert!(phi.percentile(99.0) > SimTime::from_us(400));
        assert!(phi.percentile(99.0) < SimTime::from_ms(4));
    }

    #[test]
    fn stream_throughput_ordering_and_saturation() {
        let p = p();
        for bytes in [64u64, 1024, 64 * 1024] {
            let h = p.stream_throughput(StackKind::Host, bytes);
            let s = p.stream_throughput(StackKind::Solros, bytes);
            let l = p.stream_throughput(StackKind::PhiLinux, bytes);
            assert!(h >= s && s > l, "{bytes}: {h} {s} {l}");
        }
        // Large messages reach multi-GB/s on the host (a realistic
        // single-stream ceiling; one connection does not fill 100 GbE).
        let big = p.stream_throughput(StackKind::Host, 1 << 20);
        assert!(big > 2e9, "host big-message throughput {big}");
    }

    #[test]
    fn deterministic_sampling() {
        let p = p();
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(
                p.sample_rtt(StackKind::PhiLinux, 64, &mut a),
                p.sample_rtt(StackKind::PhiLinux, 64, &mut b)
            );
        }
    }
}
