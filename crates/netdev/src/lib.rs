#![warn(missing_docs)]

//! Simulated network fabric for Solros-rs.
//!
//! The paper's evaluation drives the server's 100 GbE NIC from a separate
//! client machine (§6). This crate simulates that outside world:
//!
//! * [`fabric::Network`] — the NIC plus remote clients: listeners,
//!   connection establishment, byte-stream delivery, and teardown, with
//!   correct refusal/reset semantics. The TCP *proxy* (in `solros`) and
//!   the baselines' on-Phi TCP stacks both terminate connections here.
//! * [`perf::NetPerf`] — the timed-mode cost model: wire latency and
//!   bandwidth, per-message TCP stack costs on host vs. Xeon Phi cores,
//!   transport-forwarding overheads, and the heavy scheduling-jitter tail
//!   that gives the stock Phi its 7× worse 99th-percentile latency
//!   (Figure 1b).

pub mod fabric;
pub mod perf;

pub use fabric::{ConnId, EndKind, Network, NetworkError};
pub use perf::NetPerf;
