//! Property tests for the block allocation bitmap.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_fs::alloc::Bitmap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Allocated runs never overlap and never exceed the device; frees
    /// restore the exact free count.
    #[test]
    fn never_double_allocates(
        total in 64u64..4096,
        requests in vec(1u32..64, 1..100),
    ) {
        let mut bm = Bitmap::new(total);
        let mut owned: Vec<(u64, u32)> = Vec::new();
        let mut blocks = HashSet::new();
        for want in requests {
            match bm.alloc_run(want) {
                Ok((start, len)) => {
                    prop_assert!(len >= 1 && len <= want);
                    prop_assert!(start + len as u64 <= total);
                    for b in start..start + len as u64 {
                        prop_assert!(blocks.insert(b), "block {b} handed out twice");
                    }
                    owned.push((start, len));
                }
                Err(_) => {
                    // alloc_run returns partial runs, so NoSpace can only
                    // mean a genuinely full device.
                    prop_assert_eq!(bm.free(), total - blocks.len() as u64);
                    prop_assert_eq!(bm.free(), 0, "NoSpace with free blocks");
                }
            }
        }
        // Free everything; the bitmap must be fully free again.
        for (start, len) in owned {
            for b in start..start + len as u64 {
                bm.release(b);
            }
        }
        prop_assert_eq!(bm.free(), total);
        // And a full-device run is allocatable in pieces.
        let mut regot = 0u64;
        while let Ok((_, l)) = bm.alloc_run(total as u32) {
            regot += l as u64;
        }
        prop_assert_eq!(regot, total);
    }

    /// Serialization round-trips the exact allocation state.
    #[test]
    fn bytes_roundtrip(total in 64u64..2048, allocs in vec(1u32..32, 0..40)) {
        let mut bm = Bitmap::new(total);
        for want in allocs {
            let _ = bm.alloc_run(want);
        }
        let copy = Bitmap::from_bytes(&bm.to_bytes(), total);
        prop_assert_eq!(copy.free(), bm.free());
        for b in 0..total {
            prop_assert_eq!(copy.is_set(b), bm.is_set(b), "block {}", b);
        }
    }
}
