//! Host-side shared buffer cache (§4.3.2).
//!
//! A write-through LRU page cache keyed by `(inode, page index)`. Being on
//! the host, it is *shared by all co-processors*: a file that one Xeon Phi
//! reads warms the cache for every other Phi — one of the system-wide
//! optimizations only the control-plane OS can make. Write-through keeps
//! the device authoritative, so concurrent P2P reads (which bypass the
//! cache) never observe stale blocks.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::fs::Ino;

/// Page size (one device block).
pub const PAGE_SIZE: usize = solros_nvme::BLOCK_SIZE;

type Key = (Ino, u64);

struct Entry {
    key: Key,
    page: Box<[u8]>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct LruInner {
    map: HashMap<Key, usize>,
    slots: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // Most recently used.
    tail: usize, // Least recently used.
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruInner {
    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.slots[idx].prev, self.slots[idx].next);
        if p != NIL {
            self.slots[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn insert(&mut self, key: Key, page: Box<[u8]>) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].page = page;
            self.touch(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Evict the LRU entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.evictions += 1;
            victim
        } else if let Some(free) = self.free.pop() {
            free
        } else {
            self.slots.push(Entry {
                key,
                page: Box::from(&[][..]),
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.slots[idx].key = key;
        self.slots[idx].page = page;
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn get(&mut self, key: &Key) -> Option<Vec<u8>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.touch(idx);
                Some(self.slots[idx].page.to_vec())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn remove(&mut self, key: &Key) {
        if let Some(idx) = self.map.remove(key) {
            self.unlink(idx);
            self.slots[idx].page = Box::from(&[][..]);
            self.free.push(idx);
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Pages currently resident.
    pub resident: u64,
}

/// The shared write-through LRU page cache.
///
/// # Examples
///
/// ```
/// use solros_fs::cache::{BufferCache, PAGE_SIZE};
///
/// let cache = BufferCache::new(2);
/// cache.insert(1, 0, vec![7u8; PAGE_SIZE].into_boxed_slice());
/// assert!(cache.get(1, 0).is_some());
/// assert!(cache.get(1, 1).is_none());
/// ```
pub struct BufferCache {
    inner: Mutex<LruInner>,
}

impl BufferCache {
    /// Creates a cache holding up to `capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages == 0`.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "zero-capacity cache");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity: capacity_pages,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up a page copy; counts a hit or miss.
    pub fn get(&self, ino: Ino, page: u64) -> Option<Vec<u8>> {
        self.inner.lock().get(&(ino, page))
    }

    /// Returns whether a page is resident without touching LRU order or
    /// hit/miss statistics (the proxy's path-decision probe, §4.3.2).
    pub fn peek(&self, ino: Ino, page: u64) -> bool {
        self.inner.lock().map.contains_key(&(ino, page))
    }

    /// Inserts (or refreshes) a page.
    pub fn insert(&self, ino: Ino, page: u64, data: Box<[u8]>) {
        self.inner.lock().insert((ino, page), data);
    }

    /// Drops one page.
    pub fn invalidate_page(&self, ino: Ino, page: u64) {
        self.inner.lock().remove(&(ino, page));
    }

    /// Drops every page of an inode (truncate/unlink path).
    pub fn invalidate_ino(&self, ino: Ino) {
        let mut g = self.inner.lock();
        let keys: Vec<Key> = g.map.keys().filter(|(i, _)| *i == ino).copied().collect();
        for k in keys {
            g.remove(&k);
        }
    }

    /// Returns a statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            resident: g.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Box<[u8]> {
        vec![b; PAGE_SIZE].into_boxed_slice()
    }

    #[test]
    fn hit_miss_accounting() {
        let c = BufferCache::new(4);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, page(1));
        assert_eq!(c.get(1, 0).unwrap()[0], 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = BufferCache::new(2);
        c.insert(1, 0, page(10));
        c.insert(1, 1, page(11));
        // Touch page 0 so page 1 becomes LRU.
        c.get(1, 0);
        c.insert(1, 2, page(12));
        assert!(c.get(1, 0).is_some(), "recently used survives");
        assert!(c.get(1, 1).is_none(), "LRU evicted");
        assert!(c.get(1, 2).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let c = BufferCache::new(2);
        c.insert(1, 0, page(1));
        c.insert(1, 0, page(2));
        assert_eq!(c.get(1, 0).unwrap()[0], 2);
        assert_eq!(c.stats().resident, 1);
    }

    #[test]
    fn invalidate_ino_clears_only_that_inode() {
        let c = BufferCache::new(8);
        for p in 0..3 {
            c.insert(5, p, page(p as u8));
            c.insert(6, p, page(p as u8));
        }
        c.invalidate_ino(5);
        for p in 0..3 {
            assert!(c.get(5, p).is_none());
            assert!(c.get(6, p).is_some());
        }
    }

    #[test]
    fn invalidate_page_then_slot_reuse() {
        let c = BufferCache::new(4);
        c.insert(1, 0, page(1));
        c.invalidate_page(1, 0);
        assert!(c.get(1, 0).is_none());
        // Freed slot is reused without growing.
        c.insert(1, 1, page(2));
        c.insert(1, 2, page(3));
        assert_eq!(c.stats().resident, 2);
    }

    #[test]
    fn heavy_churn_stays_within_capacity() {
        let c = BufferCache::new(16);
        for i in 0..1000u64 {
            c.insert(i % 7, i, page((i % 256) as u8));
        }
        let s = c.stats();
        assert!(s.resident <= 16);
        assert_eq!(s.evictions, 1000 - 16);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(BufferCache::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        c.insert(t, i, page((i % 256) as u8));
                        let _ = c.get(t, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.stats().hits >= 4, "warm pages observed");
    }
}
