//! Host-side shared buffer cache (§4.3.2).
//!
//! A write-through LRU page cache keyed by `(inode, page index)`. Being on
//! the host, it is *shared by all co-processors*: a file that one Xeon Phi
//! reads warms the cache for every other Phi — one of the system-wide
//! optimizations only the control-plane OS can make. Write-through keeps
//! the device authoritative, so concurrent P2P reads (which bypass the
//! cache) never observe stale blocks.
//!
//! The cache also publishes a *residency directory* through an operation
//! log: every insert/evict/invalidate appends a `DirOp` under the cache
//! lock, and each proxy shard holds a [`CacheDirReplica`] — a local set
//! of resident `(inode, page)` keys it can probe for the P2P-vs-buffered
//! path decision (§4.3.2) without ever taking the shared cache lock. A
//! replica that falls behind the log's lag bound is compacted past and
//! rebuilds itself from an authoritative snapshot on its next probe.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_oplog::{LogConfig, LogStats, OpLog, ReplicaCursor, SyncOutcome};

use crate::fs::Ino;

/// Page size (one device block).
pub const PAGE_SIZE: usize = solros_nvme::BLOCK_SIZE;

type Key = (Ino, u64);

/// One mutation of the residency directory, as published to replicas.
#[derive(Clone, Debug)]
enum DirOp {
    /// `(ino, page)` became resident.
    Add(Ino, u64),
    /// `(ino, page)` left the cache (eviction or invalidation).
    Del(Ino, u64),
    /// Every page of `ino` left the cache (truncate/unlink path) — one
    /// log entry instead of one per page.
    DelIno(Ino),
}

/// Directory-log tuning: compaction starts once this many entries are
/// resident, and a replica may fall at most [`DIR_MAX_LAG`] entries
/// behind before compaction advances past it (forcing it to rebuild from
/// a cache snapshot). Bounds log memory even if a replica never syncs.
const DIR_HIGH_WATER: usize = 4096;
const DIR_MAX_LAG: u64 = 16_384;

struct Entry {
    key: Key,
    page: Box<[u8]>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct LruInner {
    map: HashMap<Key, usize>,
    slots: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // Most recently used.
    tail: usize, // Least recently used.
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Residency-directory log; appended under the cache lock, so the
    /// log order is exactly the order mutations took effect.
    dir: Arc<OpLog<DirOp>>,
}

impl LruInner {
    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.slots[idx].prev, self.slots[idx].next);
        if p != NIL {
            self.slots[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn insert(&mut self, key: Key, page: Box<[u8]>) {
        if let Some(&idx) = self.map.get(&key) {
            // In-place refresh: residency is unchanged, nothing to log.
            self.slots[idx].page = page;
            self.touch(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Evict the LRU entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let vkey = self.slots[victim].key;
            self.map.remove(&vkey);
            self.evictions += 1;
            self.dir.append(DirOp::Del(vkey.0, vkey.1));
            victim
        } else if let Some(free) = self.free.pop() {
            free
        } else {
            self.slots.push(Entry {
                key,
                page: Box::from(&[][..]),
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.slots[idx].key = key;
        self.slots[idx].page = page;
        self.map.insert(key, idx);
        self.push_front(idx);
        self.dir.append(DirOp::Add(key.0, key.1));
    }

    fn get(&mut self, key: &Key) -> Option<Vec<u8>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.touch(idx);
                Some(self.slots[idx].page.to_vec())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Removes without logging — the caller appends a coarser op (e.g.
    /// one `DelIno` covering every page of an inode).
    fn remove_quiet(&mut self, key: &Key) -> bool {
        if let Some(idx) = self.map.remove(key) {
            self.unlink(idx);
            self.slots[idx].page = Box::from(&[][..]);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, key: &Key) {
        if self.remove_quiet(key) {
            self.dir.append(DirOp::Del(key.0, key.1));
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Pages currently resident.
    pub resident: u64,
}

/// The shared write-through LRU page cache.
///
/// # Examples
///
/// ```
/// use solros_fs::cache::{BufferCache, PAGE_SIZE};
///
/// let cache = BufferCache::new(2);
/// cache.insert(1, 0, vec![7u8; PAGE_SIZE].into_boxed_slice());
/// assert!(cache.get(1, 0).is_some());
/// assert!(cache.get(1, 1).is_none());
/// ```
pub struct BufferCache {
    inner: Mutex<LruInner>,
}

impl BufferCache {
    /// Creates a cache holding up to `capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages == 0`.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "zero-capacity cache");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity: capacity_pages,
                hits: 0,
                misses: 0,
                evictions: 0,
                dir: OpLog::new(LogConfig {
                    high_water: DIR_HIGH_WATER,
                    max_lag: DIR_MAX_LAG,
                }),
            }),
        }
    }

    /// Looks up a page copy; counts a hit or miss.
    pub fn get(&self, ino: Ino, page: u64) -> Option<Vec<u8>> {
        self.inner.lock().get(&(ino, page))
    }

    /// Returns whether a page is resident without touching LRU order or
    /// hit/miss statistics (the proxy's path-decision probe, §4.3.2).
    pub fn peek(&self, ino: Ino, page: u64) -> bool {
        self.inner.lock().map.contains_key(&(ino, page))
    }

    /// Inserts (or refreshes) a page.
    pub fn insert(&self, ino: Ino, page: u64, data: Box<[u8]>) {
        self.inner.lock().insert((ino, page), data);
    }

    /// Drops one page.
    pub fn invalidate_page(&self, ino: Ino, page: u64) {
        self.inner.lock().remove(&(ino, page));
    }

    /// Drops every page of an inode (truncate/unlink path).
    pub fn invalidate_ino(&self, ino: Ino) {
        let mut g = self.inner.lock();
        let keys: Vec<Key> = g.map.keys().filter(|(i, _)| *i == ino).copied().collect();
        let mut dropped = false;
        for k in keys {
            dropped |= g.remove_quiet(&k);
        }
        if dropped {
            g.dir.append(DirOp::DelIno(ino));
        }
    }

    /// Returns a statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            resident: g.map.len() as u64,
        }
    }

    /// Creates a replica of the residency directory, initialised from
    /// the cache's current content. Give each proxy shard its own.
    pub fn replica(&self) -> CacheDirReplica {
        let g = self.inner.lock();
        // Appends happen only under the cache lock we hold, so the
        // registration point (the log tail) and the key snapshot are the
        // same instant in log order.
        let cursor = g.dir.register();
        let resident: HashSet<Key> = g.map.keys().copied().collect();
        CacheDirReplica {
            log: Arc::clone(&g.dir),
            inner: Mutex::new(DirReplicaState {
                cursor,
                resident,
                rebuilds: 0,
            }),
        }
    }

    /// Counters of the residency-directory log (depth, combine factor,
    /// straggler overruns).
    pub fn dir_log_stats(&self) -> LogStats {
        self.inner.lock().dir.stats()
    }

    /// Consistent `(log position, resident keys)` snapshot for a replica
    /// rebuild after an overrun.
    fn dir_snapshot(&self) -> (u64, HashSet<Key>) {
        let g = self.inner.lock();
        (g.dir.tail(), g.map.keys().copied().collect())
    }
}

struct DirReplicaState {
    cursor: ReplicaCursor,
    resident: HashSet<Key>,
    rebuilds: u64,
}

/// One proxy shard's local view of which pages are resident in the
/// shared buffer cache, kept convergent by replaying the directory log.
/// Probing it never touches the cache lock (the log's storage is only
/// read-locked when new entries exist), which is what keeps the P2P
/// path decision off the shared-state bottleneck as shards multiply.
pub struct CacheDirReplica {
    log: Arc<OpLog<DirOp>>,
    inner: Mutex<DirReplicaState>,
}

impl CacheDirReplica {
    /// Returns whether `(ino, page)` is resident, as of this replica's
    /// position in the directory log (synced to the tail on entry).
    /// `cache` must be the cache this replica was created from; it is
    /// consulted only to rebuild after a straggler overrun.
    pub fn resident(&self, cache: &BufferCache, ino: Ino, page: u64) -> bool {
        let mut g = self.inner.lock();
        let DirReplicaState {
            cursor,
            resident,
            rebuilds,
        } = &mut *g;
        let outcome = self.log.sync(cursor, |_, op| match op {
            DirOp::Add(i, p) => {
                resident.insert((*i, *p));
            }
            DirOp::Del(i, p) => {
                resident.remove(&(*i, *p));
            }
            DirOp::DelIno(i) => {
                resident.retain(|(j, _)| j != i);
            }
        });
        if outcome == SyncOutcome::Overrun {
            // Compaction advanced past us; the in-order prefix is gone.
            // Rebuild from the authoritative cache (ScaleFS/Corfu-style
            // checkpoint recovery) and resume from the snapshot point.
            let (seq, snapshot) = cache.dir_snapshot();
            *resident = snapshot;
            self.log.install_snapshot(cursor, seq);
            *rebuilds += 1;
        }
        resident.contains(&(ino, page))
    }

    /// Entries this replica is behind the directory log.
    pub fn lag(&self) -> u64 {
        self.log.lag(&self.inner.lock().cursor)
    }

    /// Snapshot rebuilds forced by compaction overruns.
    pub fn rebuilds(&self) -> u64 {
        self.inner.lock().rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Box<[u8]> {
        vec![b; PAGE_SIZE].into_boxed_slice()
    }

    #[test]
    fn hit_miss_accounting() {
        let c = BufferCache::new(4);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, page(1));
        assert_eq!(c.get(1, 0).unwrap()[0], 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = BufferCache::new(2);
        c.insert(1, 0, page(10));
        c.insert(1, 1, page(11));
        // Touch page 0 so page 1 becomes LRU.
        c.get(1, 0);
        c.insert(1, 2, page(12));
        assert!(c.get(1, 0).is_some(), "recently used survives");
        assert!(c.get(1, 1).is_none(), "LRU evicted");
        assert!(c.get(1, 2).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let c = BufferCache::new(2);
        c.insert(1, 0, page(1));
        c.insert(1, 0, page(2));
        assert_eq!(c.get(1, 0).unwrap()[0], 2);
        assert_eq!(c.stats().resident, 1);
    }

    #[test]
    fn invalidate_ino_clears_only_that_inode() {
        let c = BufferCache::new(8);
        for p in 0..3 {
            c.insert(5, p, page(p as u8));
            c.insert(6, p, page(p as u8));
        }
        c.invalidate_ino(5);
        for p in 0..3 {
            assert!(c.get(5, p).is_none());
            assert!(c.get(6, p).is_some());
        }
    }

    #[test]
    fn invalidate_page_then_slot_reuse() {
        let c = BufferCache::new(4);
        c.insert(1, 0, page(1));
        c.invalidate_page(1, 0);
        assert!(c.get(1, 0).is_none());
        // Freed slot is reused without growing.
        c.insert(1, 1, page(2));
        c.insert(1, 2, page(3));
        assert_eq!(c.stats().resident, 2);
    }

    #[test]
    fn heavy_churn_stays_within_capacity() {
        let c = BufferCache::new(16);
        for i in 0..1000u64 {
            c.insert(i % 7, i, page((i % 256) as u8));
        }
        let s = c.stats();
        assert!(s.resident <= 16);
        assert_eq!(s.evictions, 1000 - 16);
    }

    #[test]
    fn replica_tracks_inserts_evictions_and_invalidations() {
        let c = BufferCache::new(2);
        let r = c.replica();
        assert!(!r.resident(&c, 1, 0));
        c.insert(1, 0, page(1));
        c.insert(1, 1, page(2));
        assert!(r.resident(&c, 1, 0) && r.resident(&c, 1, 1));
        // Eviction of (1, 0): it is LRU after the probe order above is
        // irrelevant (probes don't touch LRU order), insert order rules.
        c.insert(2, 0, page(3));
        assert!(!r.resident(&c, 1, 0), "evicted page left the replica");
        assert!(r.resident(&c, 2, 0));
        c.invalidate_ino(1);
        assert!(!r.resident(&c, 1, 1), "DelIno clears the inode's pages");
        assert!(r.resident(&c, 2, 0));
        c.invalidate_page(2, 0);
        assert!(!r.resident(&c, 2, 0));
        assert_eq!(r.rebuilds(), 0);
    }

    #[test]
    fn replica_created_late_starts_from_cache_snapshot() {
        let c = BufferCache::new(8);
        c.insert(3, 7, page(9));
        let r = c.replica();
        assert!(r.resident(&c, 3, 7), "pre-existing pages visible");
        assert_eq!(r.lag(), 0);
    }

    #[test]
    fn straggler_replica_rebuilds_after_overrun() {
        let c = BufferCache::new(64);
        let r = c.replica();
        // Push far past the lag bound without syncing the replica, so
        // compaction must advance past it.
        for i in 0..(DIR_MAX_LAG + DIR_HIGH_WATER as u64 + 64) {
            c.insert(i % 7, i, page((i % 251) as u8));
        }
        assert!(
            c.dir_log_stats().overruns > 0,
            "straggler must get overrun: {:?}",
            c.dir_log_stats()
        );
        // The next probe rebuilds from the cache and answers correctly.
        let s = c.stats();
        assert!(s.resident == 64);
        let probe_hit = (0..7u64).any(|i| r.resident(&c, i, DIR_MAX_LAG + DIR_HIGH_WATER as u64));
        let _ = probe_hit;
        assert_eq!(r.rebuilds(), 1);
        // Spot-check agreement with the authoritative cache.
        for ino in 0..7u64 {
            for p in 0..32u64 {
                assert_eq!(r.resident(&c, ino, p), c.peek(ino, p), "({ino},{p})");
            }
        }
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(BufferCache::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        c.insert(t, i, page((i % 256) as u8));
                        let _ = c.get(t, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.stats().hits >= 4, "warm pages observed");
    }
}
