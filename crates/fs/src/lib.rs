#![warn(missing_docs)]

//! An extent-based file system for the Solros control plane.
//!
//! The paper's file-system proxy runs a full file system on the host and
//! requires two properties of it (§5):
//!
//! 1. **Extent mapping** — a `fiemap`-style query translating a file
//!    offset range into disk block runs, so the proxy can program
//!    peer-to-peer NVMe transfers directly into co-processor memory;
//! 2. **In-place updates** — overwriting a file must not relocate its
//!    blocks (no copy-on-write), so a P2P transfer started from a mapped
//!    extent stays valid.
//!
//! `solros-fs` provides both, plus the shared host-side buffer cache that
//! backs the proxy's *buffered* mode (§4.3.2): a write-through LRU page
//! cache keyed by `(inode, page)`, shared among all co-processors, with
//! sequential prefetch.
//!
//! On-disk layout (4 KiB blocks):
//!
//! ```text
//! block 0            superblock
//! blocks 1..B        block allocation bitmap
//! blocks B..I        inode table (256-byte inodes)
//! blocks I..         data (file contents, directories, extent overflow)
//! ```

pub mod alloc;
pub mod blockio;
pub mod cache;
pub mod error;
pub mod fs;
pub mod layout;

pub use blockio::BlockIo;
pub use cache::{BufferCache, CacheDirReplica};
pub use error::FsError;
pub use fs::{FileSystem, FsckReport, Ino, OpenFlags, Stat};
pub use layout::Extent;
