//! The file system proper: paths, inodes, extents, data I/O.
//!
//! Design notes:
//!
//! * **In-place updates**: overwriting never relocates blocks, so an
//!   extent mapping obtained via [`FileSystem::fiemap`] stays valid across
//!   overwrites — the property the Solros P2P path depends on (§5).
//! * **Write-through**: the buffer cache is updated alongside the device,
//!   so P2P reads (which bypass the cache) are coherent with buffered
//!   writes.
//! * **Locking**: metadata and writes serialize on one mutex; buffered
//!   reads drop the lock after extent lookup and proceed concurrently.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_nvme::{NvmeDevice, BLOCK_SIZE};

use crate::alloc::Bitmap;
use crate::blockio::BlockIo;
use crate::cache::BufferCache;
use crate::error::FsError;
use crate::layout::{
    decode_dirents, encode_dirents, Dirent, Extent, Inode, InodeKind, Superblock, DIRECT_EXTENTS,
    EXTENTS_PER_BLOCK, EXTENT_SIZE, INODE_SIZE,
};

/// Inode number.
pub type Ino = u64;

/// File metadata returned by [`FileSystem::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// True for directories.
    pub is_dir: bool,
    /// Size in bytes.
    pub size: u64,
}

/// Consistency summary returned by [`FileSystem::fsck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsckReport {
    /// Reachable regular files.
    pub files: u64,
    /// Reachable directories (including the root).
    pub dirs: u64,
    /// Data blocks owned by reachable inodes (incl. overflow blocks).
    pub data_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Blocks allocated beyond EOF (P2P preallocation; not an error).
    pub preallocated_blocks: u64,
}

/// Open flags (subset of POSIX plus the paper's `O_BUFFER`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Force buffered (host-staged) I/O even where P2P is possible — the
    /// paper's `O_BUFFER` extension (§4.3.2).
    pub buffered: bool,
}

struct FsInner {
    sb: Superblock,
    bitmap: Bitmap,
    inodes: HashMap<Ino, Inode>,
    dirty: HashSet<Ino>,
    used_inos: HashSet<Ino>,
}

/// The extent-based file system.
///
/// # Examples
///
/// ```
/// use solros_fs::FileSystem;
/// use solros_nvme::NvmeDevice;
///
/// let fs = FileSystem::mkfs(NvmeDevice::new(4096), 64).unwrap();
/// let ino = fs.create("/hello.txt").unwrap();
/// fs.write(ino, 0, b"hi there").unwrap();
/// let mut buf = [0u8; 8];
/// assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 8);
/// assert_eq!(&buf, b"hi there");
/// ```
pub struct FileSystem {
    io: BlockIo,
    inner: Mutex<FsInner>,
    cache: BufferCache,
}

impl FileSystem {
    /// Formats the device and returns a mounted file system.
    pub fn mkfs(dev: Arc<NvmeDevice>, cache_pages: usize) -> Result<Self, FsError> {
        let io = BlockIo::new(dev);
        let sb = Superblock::for_device(io.capacity_blocks());
        let mut bitmap = Bitmap::new(sb.total_blocks);
        for b in 0..sb.data_start {
            bitmap.reserve(b);
        }
        let mut inner = FsInner {
            sb,
            bitmap,
            inodes: HashMap::new(),
            dirty: HashSet::new(),
            used_inos: HashSet::new(),
        };
        // Root directory.
        inner
            .inodes
            .insert(sb.root_ino, Inode::empty(InodeKind::Dir));
        inner.used_inos.insert(sb.root_ino);
        inner.dirty.insert(sb.root_ino);

        let fs = FileSystem {
            io,
            inner: Mutex::new(inner),
            cache: BufferCache::new(cache_pages),
        };
        // Persist the superblock and initial metadata.
        let mut block = vec![0u8; BLOCK_SIZE];
        fs.inner.lock().sb.encode(&mut block);
        fs.io.write_block(0, &block)?;
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing file system.
    pub fn mount(dev: Arc<NvmeDevice>, cache_pages: usize) -> Result<Self, FsError> {
        let io = BlockIo::new(dev);
        let mut block = vec![0u8; BLOCK_SIZE];
        io.read_block(0, &mut block)?;
        let sb = Superblock::decode(&block)?;
        // Bitmap.
        let mut bytes = Vec::with_capacity((sb.bitmap_blocks as usize) * BLOCK_SIZE);
        for i in 0..sb.bitmap_blocks {
            io.read_block(sb.bitmap_start + i, &mut block)?;
            bytes.extend_from_slice(&block);
        }
        let bitmap = Bitmap::from_bytes(&bytes, sb.total_blocks);
        // Scan the inode table for used slots.
        let per_block = BLOCK_SIZE / INODE_SIZE;
        let mut used_inos = HashSet::new();
        for bi in 0..sb.itable_blocks {
            io.read_block(sb.itable_start + bi, &mut block)?;
            for s in 0..per_block {
                let ino = bi * per_block as u64 + s as u64;
                if ino >= sb.inode_count {
                    break;
                }
                let raw = &block[s * INODE_SIZE..(s + 1) * INODE_SIZE];
                if Inode::decode(raw)?.kind != InodeKind::Free {
                    used_inos.insert(ino);
                }
            }
        }
        Ok(FileSystem {
            io,
            inner: Mutex::new(FsInner {
                sb,
                bitmap,
                inodes: HashMap::new(),
                dirty: HashSet::new(),
                used_inos,
            }),
            cache: BufferCache::new(cache_pages),
        })
    }

    /// Returns the shared buffer cache.
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Returns the underlying device.
    pub fn device(&self) -> &Arc<NvmeDevice> {
        self.io.device()
    }

    /// Returns the number of free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.inner.lock().bitmap.free()
    }

    // ---- Inode table ----

    fn load_inode(&self, inner: &mut FsInner, ino: Ino) -> Result<Inode, FsError> {
        if let Some(i) = inner.inodes.get(&ino) {
            return Ok(i.clone());
        }
        if ino >= inner.sb.inode_count {
            return Err(FsError::Corrupt);
        }
        let per_block = (BLOCK_SIZE / INODE_SIZE) as u64;
        let mut block = vec![0u8; BLOCK_SIZE];
        self.io
            .read_block(inner.sb.itable_start + ino / per_block, &mut block)?;
        let s = (ino % per_block) as usize;
        let inode = Inode::decode(&block[s * INODE_SIZE..(s + 1) * INODE_SIZE])?;
        inner.inodes.insert(ino, inode.clone());
        Ok(inode)
    }

    fn store_inode(&self, inner: &mut FsInner, ino: Ino, inode: Inode) {
        inner.inodes.insert(ino, inode);
        inner.dirty.insert(ino);
    }

    fn alloc_ino(&self, inner: &mut FsInner) -> Result<Ino, FsError> {
        for ino in 0..inner.sb.inode_count {
            if !inner.used_inos.contains(&ino) {
                inner.used_inos.insert(ino);
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    // ---- Extents ----

    /// Returns the full ordered extent list of an inode (direct +
    /// overflow).
    fn all_extents(&self, inner: &mut FsInner, ino: Ino) -> Result<Vec<Extent>, FsError> {
        let inode = self.load_inode(inner, ino)?;
        let mut out = inode.extents.clone();
        if inode.overflow_block != 0 {
            let mut block = vec![0u8; BLOCK_SIZE];
            self.io.read_block(inode.overflow_block, &mut block)?;
            for i in 0..inode.overflow_count as usize {
                out.push(Extent::decode(
                    &block[i * EXTENT_SIZE..(i + 1) * EXTENT_SIZE],
                ));
            }
        }
        Ok(out)
    }

    fn set_extents(
        &self,
        inner: &mut FsInner,
        ino: Ino,
        extents: Vec<Extent>,
    ) -> Result<(), FsError> {
        let mut inode = self.load_inode(inner, ino)?;
        if extents.len() <= DIRECT_EXTENTS {
            if inode.overflow_block != 0 {
                inner.bitmap.release(inode.overflow_block);
                inode.overflow_block = 0;
                inode.overflow_count = 0;
            }
            inode.extents = extents;
        } else {
            let overflow = &extents[DIRECT_EXTENTS..];
            if overflow.len() > EXTENTS_PER_BLOCK {
                return Err(FsError::TooLarge);
            }
            if inode.overflow_block == 0 {
                let (b, l) = inner.bitmap.alloc_run(1)?;
                debug_assert_eq!(l, 1);
                inode.overflow_block = b;
            }
            let mut block = vec![0u8; BLOCK_SIZE];
            for (i, e) in overflow.iter().enumerate() {
                e.encode(&mut block[i * EXTENT_SIZE..(i + 1) * EXTENT_SIZE]);
            }
            self.io.write_block(inode.overflow_block, &block)?;
            inode.overflow_count = overflow.len() as u32;
            inode.extents = extents[..DIRECT_EXTENTS].to_vec();
        }
        self.store_inode(inner, ino, inode);
        Ok(())
    }

    /// Maps a file page index to its disk block, if allocated.
    fn block_of_page(extents: &[Extent], page: u64) -> Option<u64> {
        let mut cum = 0u64;
        for e in extents {
            if page < cum + e.len as u64 {
                return Some(e.start + (page - cum));
            }
            cum += e.len as u64;
        }
        None
    }

    /// Ensures the file has at least `blocks` allocated, appending runs.
    fn ensure_blocks(&self, inner: &mut FsInner, ino: Ino, blocks: u64) -> Result<(), FsError> {
        let mut extents = self.all_extents(inner, ino)?;
        let mut have: u64 = extents.iter().map(|e| e.len as u64).sum();
        if have >= blocks {
            return Ok(());
        }
        let zero = vec![0u8; BLOCK_SIZE];
        while have < blocks {
            let want = (blocks - have).min(u32::MAX as u64) as u32;
            let (start, len) = inner.bitmap.alloc_run(want)?;
            // Recycled blocks may hold a previous file's bytes; fresh
            // allocations must read as zeroes everywhere (gap pages, P2P
            // pre-allocation, partial tails).
            for b in start..start + len as u64 {
                self.io.write_block(b, &zero)?;
            }
            // Merge with the previous extent when contiguous.
            match extents.last_mut() {
                Some(last)
                    if last.start + last.len as u64 == start
                        && last.len.checked_add(len).is_some() =>
                {
                    last.len += len;
                }
                _ => extents.push(Extent { start, len }),
            }
            have += len as u64;
        }
        self.set_extents(inner, ino, extents)
    }

    // ---- Paths ----

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath);
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        for c in &comps {
            if *c == "." || *c == ".." || c.len() > 255 {
                return Err(FsError::InvalidPath);
            }
        }
        Ok(comps)
    }

    fn read_dir_entries(&self, inner: &mut FsInner, ino: Ino) -> Result<Vec<Dirent>, FsError> {
        let inode = self.load_inode(inner, ino)?;
        if inode.kind != InodeKind::Dir {
            return Err(FsError::NotDir);
        }
        let data = self.read_raw(inner, ino, 0, inode.size as usize)?;
        decode_dirents(&data)
    }

    fn write_dir_entries(
        &self,
        inner: &mut FsInner,
        ino: Ino,
        entries: &[Dirent],
    ) -> Result<(), FsError> {
        let data = encode_dirents(entries);
        // Shrink-then-write keeps the dirent stream exact.
        self.truncate_locked(inner, ino, 0)?;
        self.write_raw(inner, ino, 0, &data)?;
        Ok(())
    }

    /// Resolves a path to `(parent_ino, name, Option<ino>)`; for the root
    /// itself returns `(root, "", Some(root))`.
    fn resolve(
        &self,
        inner: &mut FsInner,
        path: &str,
    ) -> Result<(Ino, String, Option<Ino>), FsError> {
        let comps = Self::split_path(path)?;
        let root = inner.sb.root_ino;
        if comps.is_empty() {
            return Ok((root, String::new(), Some(root)));
        }
        let mut dir = root;
        for c in &comps[..comps.len() - 1] {
            let entries = self.read_dir_entries(inner, dir)?;
            let next = entries
                .iter()
                .find(|e| e.name == *c)
                .ok_or(FsError::NotFound)?
                .ino;
            let inode = self.load_inode(inner, next)?;
            if inode.kind != InodeKind::Dir {
                return Err(FsError::NotDir);
            }
            dir = next;
        }
        let name = comps[comps.len() - 1].to_string();
        let entries = self.read_dir_entries(inner, dir)?;
        let found = entries.iter().find(|e| e.name == name).map(|e| e.ino);
        Ok((dir, name, found))
    }

    // ---- Public metadata operations ----

    /// Creates a regular file; fails if it exists.
    pub fn create(&self, path: &str) -> Result<Ino, FsError> {
        let mut inner = self.inner.lock();
        let (dir, name, found) = self.resolve(&mut inner, path)?;
        if name.is_empty() {
            return Err(FsError::InvalidPath);
        }
        if found.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino(&mut inner)?;
        self.store_inode(&mut inner, ino, Inode::empty(InodeKind::File));
        let mut entries = self.read_dir_entries(&mut inner, dir)?;
        entries.push(Dirent { ino, name });
        self.write_dir_entries(&mut inner, dir, &entries)?;
        Ok(ino)
    }

    /// Creates a directory; fails if it exists.
    pub fn mkdir(&self, path: &str) -> Result<Ino, FsError> {
        let mut inner = self.inner.lock();
        let (dir, name, found) = self.resolve(&mut inner, path)?;
        if name.is_empty() {
            return Err(FsError::InvalidPath);
        }
        if found.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino(&mut inner)?;
        self.store_inode(&mut inner, ino, Inode::empty(InodeKind::Dir));
        let mut entries = self.read_dir_entries(&mut inner, dir)?;
        entries.push(Dirent { ino, name });
        self.write_dir_entries(&mut inner, dir, &entries)?;
        Ok(ino)
    }

    /// Opens a file; honours [`OpenFlags::create`] and
    /// [`OpenFlags::truncate`].
    pub fn open(&self, path: &str, flags: OpenFlags) -> Result<Ino, FsError> {
        let ino = {
            let mut inner = self.inner.lock();
            match self.resolve(&mut inner, path)? {
                (_, _, Some(ino)) => {
                    let inode = self.load_inode(&mut inner, ino)?;
                    if inode.kind == InodeKind::Dir {
                        return Err(FsError::IsDir);
                    }
                    ino
                }
                (dir, name, None) if flags.create => {
                    let ino = self.alloc_ino(&mut inner)?;
                    self.store_inode(&mut inner, ino, Inode::empty(InodeKind::File));
                    let mut entries = self.read_dir_entries(&mut inner, dir)?;
                    entries.push(Dirent { ino, name });
                    self.write_dir_entries(&mut inner, dir, &entries)?;
                    ino
                }
                _ => return Err(FsError::NotFound),
            }
        };
        if flags.truncate {
            self.truncate(ino, 0)?;
        }
        Ok(ino)
    }

    /// Returns metadata for a path.
    pub fn stat(&self, path: &str) -> Result<Stat, FsError> {
        let mut inner = self.inner.lock();
        let (_, _, found) = self.resolve(&mut inner, path)?;
        let ino = found.ok_or(FsError::NotFound)?;
        let inode = self.load_inode(&mut inner, ino)?;
        Ok(Stat {
            ino,
            is_dir: inode.kind == InodeKind::Dir,
            size: inode.size,
        })
    }

    /// Returns metadata by inode.
    pub fn stat_ino(&self, ino: Ino) -> Result<Stat, FsError> {
        let mut inner = self.inner.lock();
        let inode = self.load_inode(&mut inner, ino)?;
        if inode.kind == InodeKind::Free {
            return Err(FsError::NotFound);
        }
        Ok(Stat {
            ino,
            is_dir: inode.kind == InodeKind::Dir,
            size: inode.size,
        })
    }

    /// Lists a directory's entry names, sorted.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let mut inner = self.inner.lock();
        let (_, _, found) = self.resolve(&mut inner, path)?;
        let ino = found.ok_or(FsError::NotFound)?;
        let mut names: Vec<String> = self
            .read_dir_entries(&mut inner, ino)?
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort();
        Ok(names)
    }

    /// Removes a file (or an empty directory).
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let (dir, name, found) = self.resolve(&mut inner, path)?;
        let ino = found.ok_or(FsError::NotFound)?;
        if name.is_empty() {
            return Err(FsError::InvalidPath); // The root.
        }
        let inode = self.load_inode(&mut inner, ino)?;
        if inode.kind == InodeKind::Dir && inode.size > 0 {
            return Err(FsError::NotEmpty);
        }
        // Free data blocks and the overflow block.
        self.truncate_locked(&mut inner, ino, 0)?;
        self.store_inode(&mut inner, ino, Inode::empty(InodeKind::Free));
        inner.used_inos.remove(&ino);
        let entries: Vec<Dirent> = self
            .read_dir_entries(&mut inner, dir)?
            .into_iter()
            .filter(|e| e.name != name)
            .collect();
        self.write_dir_entries(&mut inner, dir, &entries)?;
        self.cache.invalidate_ino(ino);
        Ok(())
    }

    /// Renames a file or directory within the tree.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let (fdir, fname, ffound) = self.resolve(&mut inner, from)?;
        let ino = ffound.ok_or(FsError::NotFound)?;
        if fname.is_empty() {
            return Err(FsError::InvalidPath);
        }
        let (tdir, tname, tfound) = self.resolve(&mut inner, to)?;
        if tname.is_empty() {
            return Err(FsError::InvalidPath);
        }
        if tfound.is_some() {
            return Err(FsError::Exists);
        }
        let entries: Vec<Dirent> = self
            .read_dir_entries(&mut inner, fdir)?
            .into_iter()
            .filter(|e| e.name != fname)
            .collect();
        self.write_dir_entries(&mut inner, fdir, &entries)?;
        let mut entries = self.read_dir_entries(&mut inner, tdir)?;
        entries.push(Dirent { ino, name: tname });
        self.write_dir_entries(&mut inner, tdir, &entries)?;
        Ok(())
    }

    // ---- Data I/O ----

    /// Buffered read through the shared cache. Returns bytes read (short
    /// at EOF).
    pub fn read(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        // Snapshot size and extents under the lock, then copy without it.
        let (size, extents) = {
            let mut inner = self.inner.lock();
            let inode = self.load_inode(&mut inner, ino)?;
            if inode.kind == InodeKind::Dir {
                return Err(FsError::IsDir);
            }
            (inode.size, self.all_extents(&mut inner, ino)?)
        };
        self.read_pages(ino, &extents, size, offset, buf)
    }

    fn read_pages(
        &self,
        ino: Ino,
        extents: &[Extent],
        size: u64,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize, FsError> {
        if offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        let mut done = 0usize;
        let bs = BLOCK_SIZE as u64;
        while done < want {
            let pos = offset + done as u64;
            let page = pos / bs;
            let in_page = (pos % bs) as usize;
            let n = (BLOCK_SIZE - in_page).min(want - done);
            let data = match self.cache.get(ino, page) {
                Some(d) => d,
                None => match Self::block_of_page(extents, page) {
                    Some(lba) => {
                        let mut block = vec![0u8; BLOCK_SIZE];
                        self.io.read_block_retry(lba, &mut block, 2)?;
                        self.cache
                            .insert(ino, page, block.clone().into_boxed_slice());
                        block
                    }
                    // A hole (e.g. truncate grew the size without
                    // allocating): reads as zeroes.
                    None => vec![0u8; BLOCK_SIZE],
                },
            };
            buf[done..done + n].copy_from_slice(&data[in_page..in_page + n]);
            done += n;
        }
        Ok(want)
    }

    /// Buffered write-through. Extends the file as needed; returns bytes
    /// written.
    pub fn write(&self, ino: Ino, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let mut inner = self.inner.lock();
        self.write_raw(&mut inner, ino, offset, data)
    }

    fn write_raw(
        &self,
        inner: &mut FsInner,
        ino: Ino,
        offset: u64,
        data: &[u8],
    ) -> Result<usize, FsError> {
        let inode = self.load_inode(inner, ino)?;
        if inode.kind == InodeKind::Free {
            return Err(FsError::NotFound);
        }
        if data.is_empty() {
            // POSIX: a zero-length write changes nothing (no extension).
            return Ok(0);
        }
        let old_size = inode.size;
        let end = offset + data.len() as u64;
        let bs = BLOCK_SIZE as u64;
        self.ensure_blocks(inner, ino, end.div_ceil(bs))?;
        let extents = self.all_extents(inner, ino)?;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page = pos / bs;
            let in_page = (pos % bs) as usize;
            let n = (BLOCK_SIZE - in_page).min(data.len() - done);
            let lba = Self::block_of_page(&extents, page).ok_or(FsError::Corrupt)?;
            let mut block = vec![0u8; BLOCK_SIZE];
            if n < BLOCK_SIZE {
                // Read-modify-write a partial page (prefer the cache).
                match self.cache.get(ino, page) {
                    Some(d) => block.copy_from_slice(&d),
                    None => self.io.read_block_retry(lba, &mut block, 2)?,
                }
                // Bytes past the file's previous size are undefined on
                // disk (freshly allocated or recycled blocks): they must
                // read as zeroes, so zero them before merging.
                let valid = old_size.saturating_sub(page * bs).min(bs) as usize;
                block[valid..].fill(0);
            }
            block[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            self.io.write_block(lba, &block)?;
            self.cache.insert(ino, page, block.into_boxed_slice());
            done += n;
        }
        let mut inode2 = self.load_inode(inner, ino)?;
        if end > inode2.size {
            inode2.size = end;
            self.store_inode(inner, ino, inode2);
        }
        Ok(data.len())
    }

    fn read_raw(
        &self,
        inner: &mut FsInner,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let inode = self.load_inode(inner, ino)?;
        let extents = self.all_extents(inner, ino)?;
        let mut buf = vec![0u8; len];
        let n = self.read_pages(ino, &extents, inode.size, offset, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Truncates a file to `size` (only shrinking frees blocks; growing
    /// just updates the size, with blocks allocated on write).
    pub fn truncate(&self, ino: Ino, size: u64) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        self.truncate_locked(&mut inner, ino, size)
    }

    fn truncate_locked(&self, inner: &mut FsInner, ino: Ino, size: u64) -> Result<(), FsError> {
        let inode = self.load_inode(inner, ino)?;
        if size >= inode.size && size != 0 {
            let mut inode = inode;
            inode.size = size;
            self.store_inode(inner, ino, inode);
            return Ok(());
        }
        let keep_blocks = size.div_ceil(BLOCK_SIZE as u64);
        let extents = self.all_extents(inner, ino)?;
        let mut kept = Vec::new();
        let mut cum = 0u64;
        for e in extents {
            if cum >= keep_blocks {
                for i in 0..e.len as u64 {
                    inner.bitmap.release(e.start + i);
                }
            } else if cum + e.len as u64 <= keep_blocks {
                kept.push(e);
            } else {
                let keep = (keep_blocks - cum) as u32;
                kept.push(Extent {
                    start: e.start,
                    len: keep,
                });
                for i in keep as u64..e.len as u64 {
                    inner.bitmap.release(e.start + i);
                }
            }
            cum += e.len as u64;
        }
        self.set_extents(inner, ino, kept.clone())?;
        let mut inode = self.load_inode(inner, ino)?;
        inode.size = size;
        self.store_inode(inner, ino, inode);
        // Drop stale cached pages beyond the new size.
        self.cache.invalidate_ino(ino);
        // Zero the partial tail of the last kept block so a later grow
        // (truncate up or write past EOF) reads zeroes, not stale bytes.
        let tail = (size % BLOCK_SIZE as u64) as usize;
        if tail != 0 {
            if let Some(lba) = Self::block_of_page(&kept, size / BLOCK_SIZE as u64) {
                let mut block = vec![0u8; BLOCK_SIZE];
                self.io.read_block_retry(lba, &mut block, 2)?;
                block[tail..].fill(0);
                self.io.write_block(lba, &block)?;
            }
        }
        Ok(())
    }

    /// Allocates backing blocks for `[offset, offset+len)` without writing
    /// data — the P2P *write* path maps extents first and lets the NVMe
    /// DMA engine fill them (§5).
    pub fn ensure_allocated(&self, ino: Ino, offset: u64, len: u64) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let inode = self.load_inode(&mut inner, ino)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsDir);
        }
        let blocks = (offset + len).div_ceil(BLOCK_SIZE as u64);
        self.ensure_blocks(&mut inner, ino, blocks)
    }

    /// Grows the recorded size to at least `end` (P2P write completion
    /// path; the data already reached the device via DMA).
    pub fn extend_size(&self, ino: Ino, end: u64) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let mut inode = self.load_inode(&mut inner, ino)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsDir);
        }
        if end > inode.size {
            inode.size = end;
            self.store_inode(&mut inner, ino, inode);
        }
        Ok(())
    }

    /// Translates a byte range to disk extents — the `fiemap` the P2P path
    /// uses (§5). The returned runs are block-granular and cover
    /// `[offset, offset+len)` clamped to EOF.
    pub fn fiemap(&self, ino: Ino, offset: u64, len: u64) -> Result<Vec<Extent>, FsError> {
        let mut inner = self.inner.lock();
        let inode = self.load_inode(&mut inner, ino)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsDir);
        }
        let end = (offset + len).min(inode.size);
        if offset >= end {
            return Ok(Vec::new());
        }
        let bs = BLOCK_SIZE as u64;
        let first_page = offset / bs;
        let last_page = end.div_ceil(bs); // exclusive
        let extents = self.all_extents(&mut inner, ino)?;
        let mut out: Vec<Extent> = Vec::new();
        let mut cum = 0u64;
        for e in &extents {
            let e_first = cum;
            let e_last = cum + e.len as u64; // exclusive page indices
            let lo = first_page.max(e_first);
            let hi = last_page.min(e_last);
            if lo < hi {
                let start = e.start + (lo - e_first);
                let len = (hi - lo) as u32;
                match out.last_mut() {
                    Some(prev) if prev.start + prev.len as u64 == start => prev.len += len,
                    _ => out.push(Extent { start, len }),
                }
            }
            cum = e_last;
        }
        Ok(out)
    }

    /// As [`FileSystem::fiemap`] but clamped to *allocated* blocks rather
    /// than the recorded size — the P2P write path maps freshly allocated
    /// extents before any data lands (§5).
    pub fn fiemap_allocated(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
    ) -> Result<Vec<Extent>, FsError> {
        let mut inner = self.inner.lock();
        let inode = self.load_inode(&mut inner, ino)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsDir);
        }
        let bs = BLOCK_SIZE as u64;
        let first_page = offset / bs;
        let last_page = (offset + len).div_ceil(bs); // exclusive
        let extents = self.all_extents(&mut inner, ino)?;
        let mut out: Vec<Extent> = Vec::new();
        let mut cum = 0u64;
        for e in &extents {
            let e_first = cum;
            let e_last = cum + e.len as u64;
            let lo = first_page.max(e_first);
            let hi = last_page.min(e_last);
            if lo < hi {
                let start = e.start + (lo - e_first);
                let len = (hi - lo) as u32;
                match out.last_mut() {
                    Some(prev) if prev.start + prev.len as u64 == start => prev.len += len,
                    _ => out.push(Extent { start, len }),
                }
            }
            cum = e_last;
        }
        Ok(out)
    }

    /// Returns the file size by inode.
    pub fn size_of(&self, ino: Ino) -> Result<u64, FsError> {
        Ok(self.stat_ino(ino)?.size)
    }

    /// Pre-resolves the extents backing an extent lease over
    /// `[offset, offset+len)`. Read leases map the blocks that exist
    /// (clamped to EOF, like [`Self::fiemap`]); write leases preallocate
    /// the whole range first so the mapping covers every block the
    /// holder may touch and — by the in-place-update invariant pinned in
    /// the module header — stays valid for the lease's lifetime.
    /// Returns the extents and the readable end of the range
    /// (`min(EOF, offset + len)`) at resolution time.
    pub fn resolve_lease_extents(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        for_write: bool,
    ) -> Result<(Vec<Extent>, u64), FsError> {
        let extents = if for_write {
            self.ensure_allocated(ino, offset, len)?;
            self.fiemap_allocated(ino, offset, len)?
        } else {
            self.fiemap(ino, offset, len)?
        };
        let size = self.size_of(ino)?;
        Ok((extents, size.min(offset.saturating_add(len))))
    }

    /// Warms the shared cache with up to `pages` pages starting at the
    /// page containing `offset` — the host-side readahead the paper's
    /// proxy performs for sequentially accessed files (§4.3.2). Pages
    /// already resident, beyond EOF, or in holes are skipped. Returns the
    /// number of pages actually loaded.
    pub fn prefetch(&self, ino: Ino, offset: u64, pages: u64) -> Result<u64, FsError> {
        let (size, extents) = {
            let mut inner = self.inner.lock();
            let inode = self.load_inode(&mut inner, ino)?;
            if inode.kind != InodeKind::File {
                return Err(FsError::IsDir);
            }
            (inode.size, self.all_extents(&mut inner, ino)?)
        };
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = size.div_ceil(bs).min(first + pages);
        let mut loaded = 0;
        for page in first..last {
            if self.cache.peek(ino, page) {
                continue;
            }
            let Some(lba) = Self::block_of_page(&extents, page) else {
                continue; // Hole: reads as zeroes; nothing to warm.
            };
            let mut block = vec![0u8; BLOCK_SIZE];
            self.io.read_block_retry(lba, &mut block, 2)?;
            self.cache.insert(ino, page, block.into_boxed_slice());
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Verifies on-disk/in-memory consistency: every reachable inode's
    /// extents lie in the data area, no two files share a block, every
    /// allocated data block is reachable (or is an overflow block), and
    /// every directory entry points at a live inode. Returns a summary.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] describing the first inconsistency.
    pub fn fsck(&self) -> Result<FsckReport, FsError> {
        let mut inner = self.inner.lock();
        let sb = inner.sb;
        // Walk the namespace from the root.
        let mut stack = vec![sb.root_ino];
        let mut seen_inos = HashSet::new();
        let mut owned_blocks: HashMap<u64, Ino> = HashMap::new();
        let mut files = 0u64;
        let mut dirs = 0u64;
        let mut preallocated = 0u64;
        while let Some(ino) = stack.pop() {
            if !seen_inos.insert(ino) {
                return Err(FsError::Corrupt); // A cycle or double link.
            }
            if !inner.used_inos.contains(&ino) {
                return Err(FsError::Corrupt); // Dirent to a free inode.
            }
            let inode = self.load_inode(&mut inner, ino)?;
            let extents = self.all_extents(&mut inner, ino)?;
            let mut mapped = 0u64;
            for e in &extents {
                for b in e.start..e.start + e.len as u64 {
                    if b < sb.data_start || b >= sb.total_blocks {
                        return Err(FsError::Corrupt); // Extent outside data.
                    }
                    if !inner.bitmap.is_set(b) {
                        return Err(FsError::Corrupt); // In use but free.
                    }
                    if owned_blocks.insert(b, ino).is_some() {
                        return Err(FsError::Corrupt); // Shared block.
                    }
                }
                mapped += e.len as u64;
            }
            if inode.overflow_block != 0 {
                if !inner.bitmap.is_set(inode.overflow_block) {
                    return Err(FsError::Corrupt);
                }
                if owned_blocks.insert(inode.overflow_block, ino).is_some() {
                    return Err(FsError::Corrupt);
                }
            }
            match inode.kind {
                InodeKind::Dir => {
                    dirs += 1;
                    for d in self.read_dir_entries(&mut inner, ino)? {
                        stack.push(d.ino);
                    }
                }
                InodeKind::File => {
                    files += 1;
                    // Holes (mapped < size pages) are legal; so are blocks
                    // beyond EOF: the P2P write path preallocates before
                    // the DMA lands and keeps the allocation if a device
                    // error aborts the transfer (like fallocate).
                    let max_needed = inode.size.div_ceil(BLOCK_SIZE as u64);
                    preallocated += mapped.saturating_sub(max_needed);
                }
                InodeKind::Free => return Err(FsError::Corrupt),
            }
        }
        // Every allocated data block must be owned by some reachable file.
        let mut leaked = 0u64;
        for b in sb.data_start..sb.total_blocks {
            if inner.bitmap.is_set(b) && !owned_blocks.contains_key(&b) {
                leaked += 1;
            }
        }
        if leaked > 0 {
            return Err(FsError::Corrupt);
        }
        // used_inos must equal the reachable set.
        if seen_inos.len() != inner.used_inos.len() {
            return Err(FsError::Corrupt);
        }
        Ok(FsckReport {
            files,
            dirs,
            data_blocks: owned_blocks.len() as u64,
            free_blocks: inner.bitmap.free(),
            preallocated_blocks: preallocated,
        })
    }

    /// Flushes dirty metadata (bitmap words, inodes, superblock).
    pub fn sync(&self) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        // Bitmap: rewrite blocks containing dirty words.
        let bytes = inner.bitmap.to_bytes();
        let dirty_words = inner.bitmap.take_dirty_words();
        let mut dirty_blocks: Vec<u64> = dirty_words
            .iter()
            .map(|w| (w * 8 / BLOCK_SIZE) as u64)
            .collect();
        dirty_blocks.sort_unstable();
        dirty_blocks.dedup();
        let mut block = vec![0u8; BLOCK_SIZE];
        for b in dirty_blocks {
            let off = (b as usize) * BLOCK_SIZE;
            block.fill(0);
            let end = (off + BLOCK_SIZE).min(bytes.len());
            if off < end {
                block[..end - off].copy_from_slice(&bytes[off..end]);
            }
            self.io.write_block(inner.sb.bitmap_start + b, &block)?;
        }
        // Inodes: group dirty inodes by table block.
        let per_block = (BLOCK_SIZE / INODE_SIZE) as u64;
        let mut dirty: Vec<Ino> = inner.dirty.drain().collect();
        dirty.sort_unstable();
        let mut by_block: HashMap<u64, Vec<Ino>> = HashMap::new();
        for ino in dirty {
            by_block.entry(ino / per_block).or_default().push(ino);
        }
        for (tb, inos) in by_block {
            let lba = inner.sb.itable_start + tb;
            self.io.read_block(lba, &mut block)?;
            for ino in inos {
                let inode = inner
                    .inodes
                    .get(&ino)
                    .cloned()
                    .unwrap_or_else(|| Inode::empty(InodeKind::Free));
                let s = (ino % per_block) as usize;
                inode.encode(&mut block[s * INODE_SIZE..(s + 1) * INODE_SIZE]);
            }
            self.io.write_block(lba, &block)?;
        }
        // Superblock last (ordering: metadata before the root pointer).
        let mut sb_block = vec![0u8; BLOCK_SIZE];
        inner.sb.encode(&mut sb_block);
        self.io.write_block(0, &sb_block)?;
        Ok(())
    }

    /// `fsync` for one inode: flush all metadata (the data path is
    /// write-through already).
    pub fn fsync(&self, _ino: Ino) -> Result<(), FsError> {
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fs() -> FileSystem {
        FileSystem::mkfs(NvmeDevice::new(4096), 128).unwrap()
    }

    #[test]
    fn create_write_read() {
        let fs = small_fs();
        let ino = fs.create("/a.txt").unwrap();
        fs.write(ino, 0, b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn path_errors() {
        let fs = small_fs();
        assert_eq!(fs.create("relative"), Err(FsError::InvalidPath));
        assert_eq!(fs.create("/a/../b"), Err(FsError::InvalidPath));
        assert_eq!(
            fs.open("/missing", OpenFlags::default()),
            Err(FsError::NotFound)
        );
        fs.create("/x").unwrap();
        assert_eq!(fs.create("/x"), Err(FsError::Exists));
        assert_eq!(fs.stat("/nope").unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn directories_nest() {
        let fs = small_fs();
        fs.mkdir("/d").unwrap();
        fs.mkdir("/d/e").unwrap();
        let f = fs.create("/d/e/f.txt").unwrap();
        fs.write(f, 0, b"deep").unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["d"]);
        assert_eq!(fs.readdir("/d").unwrap(), vec!["e"]);
        assert_eq!(fs.readdir("/d/e").unwrap(), vec!["f.txt"]);
        let st = fs.stat("/d/e/f.txt").unwrap();
        assert!(!st.is_dir);
        assert_eq!(st.size, 4);
        assert!(fs.stat("/d").unwrap().is_dir);
    }

    #[test]
    fn open_create_truncate() {
        let fs = small_fs();
        let ino = fs
            .open(
                "/new",
                OpenFlags {
                    create: true,
                    ..Default::default()
                },
            )
            .unwrap();
        fs.write(ino, 0, b"0123456789").unwrap();
        let again = fs
            .open(
                "/new",
                OpenFlags {
                    truncate: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(again, ino);
        assert_eq!(fs.size_of(ino).unwrap(), 0);
    }

    #[test]
    fn cross_block_io() {
        let fs = small_fs();
        let ino = fs.create("/big").unwrap();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE + 777).map(|i| (i % 251) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        assert_eq!(fs.read(ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
        // Unaligned mid-file read.
        let mut mid = vec![0u8; 5000];
        assert_eq!(fs.read(ino, 3000, &mut mid).unwrap(), 5000);
        assert_eq!(mid[..], data[3000..8000]);
    }

    #[test]
    fn overwrite_is_in_place() {
        let fs = small_fs();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        let before = fs.fiemap(ino, 0, 2 * BLOCK_SIZE as u64).unwrap();
        fs.write(ino, 0, &vec![2u8; 2 * BLOCK_SIZE]).unwrap();
        let after = fs.fiemap(ino, 0, 2 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(before, after, "overwrite relocated blocks");
    }

    #[test]
    fn sparse_gap_reads_zero() {
        let fs = small_fs();
        let ino = fs.create("/s").unwrap();
        fs.write(ino, 2 * BLOCK_SIZE as u64, b"tail").unwrap();
        let mut buf = vec![0xFFu8; BLOCK_SIZE];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), BLOCK_SIZE);
        assert!(buf.iter().all(|&b| b == 0), "gap must read as zeroes");
    }

    #[test]
    fn unlink_frees_space() {
        let fs = small_fs();
        let free0 = fs.free_blocks();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![7u8; 10 * BLOCK_SIZE]).unwrap();
        assert!(fs.free_blocks() < free0);
        fs.unlink("/f").unwrap();
        assert_eq!(fs.free_blocks(), free0);
        assert_eq!(fs.stat("/f").unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let fs = small_fs();
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.unlink("/d").unwrap();
        assert_eq!(fs.stat("/d").unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn rename_moves_entries() {
        let fs = small_fs();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        let ino = fs.create("/a/f").unwrap();
        fs.write(ino, 0, b"data").unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert_eq!(fs.stat("/a/f").unwrap_err(), FsError::NotFound);
        let st = fs.stat("/b/g").unwrap();
        assert_eq!(st.ino, ino);
        assert_eq!(st.size, 4);
        assert_eq!(fs.rename("/b/g", "/b/g2").unwrap(), ());
        assert_eq!(fs.rename("/missing", "/x"), Err(FsError::NotFound));
    }

    #[test]
    fn fiemap_covers_requested_range() {
        let fs = small_fs();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; 8 * BLOCK_SIZE]).unwrap();
        let all = fs.fiemap(ino, 0, 8 * BLOCK_SIZE as u64).unwrap();
        let blocks: u64 = all.iter().map(|e| e.len as u64).sum();
        assert_eq!(blocks, 8);
        // A sub-range maps to exactly its pages.
        let sub = fs
            .fiemap(ino, BLOCK_SIZE as u64 + 100, BLOCK_SIZE as u64)
            .unwrap();
        let blocks: u64 = sub.iter().map(|e| e.len as u64).sum();
        assert_eq!(blocks, 2, "unaligned range touches two pages");
        // Beyond EOF clamps.
        assert!(fs
            .fiemap(ino, 9 * BLOCK_SIZE as u64, 4096)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lease_resolution_preallocates_for_writes() {
        let fs = small_fs();
        let ino = fs.create("/lease").unwrap();
        fs.write(ino, 0, &vec![7u8; 2 * BLOCK_SIZE]).unwrap();
        let bs = BLOCK_SIZE as u64;

        // Read lease: clamped to EOF, readable end reported.
        let (ext, data_end) = fs.resolve_lease_extents(ino, 0, 8 * bs, false).unwrap();
        let blocks: u64 = ext.iter().map(|e| e.len as u64).sum();
        assert_eq!(blocks, 2, "read lease maps only existing blocks");
        assert_eq!(data_end, 2 * bs);

        // Write lease: the whole range is preallocated and mapped even
        // though the file is shorter.
        let (ext, data_end) = fs.resolve_lease_extents(ino, 0, 8 * bs, true).unwrap();
        let blocks: u64 = ext.iter().map(|e| e.len as u64).sum();
        assert_eq!(blocks, 8, "write lease preallocates the range");
        assert_eq!(data_end, 2 * bs, "readable end is still EOF");

        // The mapping stays valid across an in-place overwrite.
        let before = fs.resolve_lease_extents(ino, 0, 2 * bs, false).unwrap().0;
        fs.write(ino, 0, &vec![9u8; 2 * BLOCK_SIZE]).unwrap();
        let after = fs.resolve_lease_extents(ino, 0, 2 * bs, false).unwrap().0;
        assert_eq!(before, after, "in-place update keeps extents stable");
    }

    #[test]
    fn truncate_shrinks_and_frees() {
        let fs = small_fs();
        let ino = fs.create("/f").unwrap();
        // Measure after create: the dirent write may grow the root dir.
        let free0 = fs.free_blocks();
        fs.write(ino, 0, &vec![3u8; 6 * BLOCK_SIZE]).unwrap();
        fs.truncate(ino, BLOCK_SIZE as u64 + 10).unwrap();
        assert_eq!(fs.size_of(ino).unwrap(), BLOCK_SIZE as u64 + 10);
        assert_eq!(fs.free_blocks(), free0 - 2);
        let mut buf = vec![0u8; BLOCK_SIZE];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(n, BLOCK_SIZE);
        assert!(buf.iter().all(|&b| b == 3));
    }

    #[test]
    fn remount_preserves_everything() {
        let dev = NvmeDevice::new(8192);
        let data: Vec<u8> = (0..2 * BLOCK_SIZE + 17).map(|i| (i % 241) as u8).collect();
        let ino;
        {
            let fs = FileSystem::mkfs(Arc::clone(&dev), 64).unwrap();
            fs.mkdir("/docs").unwrap();
            ino = fs.create("/docs/report.txt").unwrap();
            fs.write(ino, 0, &data).unwrap();
            fs.sync().unwrap();
        }
        let fs = FileSystem::mount(dev, 64).unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["docs"]);
        let st = fs.stat("/docs/report.txt").unwrap();
        assert_eq!(st.ino, ino);
        assert_eq!(st.size, data.len() as u64);
        let mut out = vec![0u8; data.len()];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, data);
        // Free-space accounting survives the remount.
        let free = fs.free_blocks();
        fs.unlink("/docs/report.txt").unwrap();
        assert!(fs.free_blocks() > free);
    }

    #[test]
    fn large_file_uses_overflow_extents() {
        // Force fragmentation so extents cannot merge: allocate a file,
        // interleave with another file, repeatedly.
        let fs = FileSystem::mkfs(NvmeDevice::new(16384), 64).unwrap();
        let a = fs.create("/a").unwrap();
        let b = fs.create("/b").unwrap();
        let chunk = vec![9u8; BLOCK_SIZE];
        for i in 0..40u64 {
            fs.write(a, i * BLOCK_SIZE as u64, &chunk).unwrap();
            fs.write(b, i * BLOCK_SIZE as u64, &chunk).unwrap();
        }
        let map = fs.fiemap(a, 0, 40 * BLOCK_SIZE as u64).unwrap();
        assert!(
            map.len() > DIRECT_EXTENTS,
            "expected overflow extents, got {}",
            map.len()
        );
        // Content still correct everywhere.
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..40u64 {
            fs.read(a, i * BLOCK_SIZE as u64, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == 9), "page {i}");
        }
    }

    #[test]
    fn cache_warms_on_reread() {
        let fs = small_fs();
        let ino = fs.create("/c").unwrap();
        fs.write(ino, 0, &vec![5u8; 4 * BLOCK_SIZE]).unwrap();
        let h0 = fs.cache().stats().hits;
        let mut buf = vec![0u8; 4 * BLOCK_SIZE];
        fs.read(ino, 0, &mut buf).unwrap();
        let h1 = fs.cache().stats().hits;
        assert!(h1 > h0, "write-through pages should be cache hits");
    }

    #[test]
    fn p2p_write_path_helpers() {
        let fs = small_fs();
        let ino = fs.create("/p2p").unwrap();
        // Allocate four blocks before any data exists.
        fs.ensure_allocated(ino, 0, 4 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(fs.size_of(ino).unwrap(), 0, "allocation is not size");
        // The size-clamped fiemap sees nothing; the allocated one does.
        assert!(fs.fiemap(ino, 0, 4 * BLOCK_SIZE as u64).unwrap().is_empty());
        let map = fs.fiemap_allocated(ino, 0, 4 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(map.iter().map(|e| e.len as u64).sum::<u64>(), 4);
        // After the "DMA" completes, the proxy extends the size.
        fs.extend_size(ino, 4 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(fs.size_of(ino).unwrap(), 4 * BLOCK_SIZE as u64);
        // extend_size never shrinks.
        fs.extend_size(ino, 10).unwrap();
        assert_eq!(fs.size_of(ino).unwrap(), 4 * BLOCK_SIZE as u64);
    }

    #[test]
    fn prefetch_warms_cache_and_skips_holes() {
        let fs = small_fs();
        let ino = fs.create("/p").unwrap();
        fs.write(ino, 0, &vec![1u8; 4 * BLOCK_SIZE]).unwrap();
        // Hole pages at the tail (truncate-grow allocates nothing).
        fs.truncate(ino, 8 * BLOCK_SIZE as u64).unwrap();
        // Cold cache: prefetch the first 8 pages.
        fs.cache().invalidate_ino(ino);
        let loaded = fs.prefetch(ino, 0, 8).unwrap();
        assert_eq!(loaded, 4, "only allocated pages load; holes skip");
        // The warmed pages are now cache hits.
        let h0 = fs.cache().stats().hits;
        let mut buf = vec![0u8; 4 * BLOCK_SIZE];
        fs.read(ino, 0, &mut buf).unwrap();
        assert!(fs.cache().stats().hits >= h0 + 4);
        // Prefetch beyond EOF is a no-op.
        assert_eq!(fs.prefetch(ino, 100 * BLOCK_SIZE as u64, 4).unwrap(), 0);
        // Re-prefetching resident pages loads nothing.
        assert_eq!(fs.prefetch(ino, 0, 4).unwrap(), 0);
    }

    #[test]
    fn directories_span_multiple_blocks() {
        let fs = FileSystem::mkfs(NvmeDevice::new(16_384), 256).unwrap();
        // ~500 entries x ~18 bytes of dirent ≈ 9 KB: the dirent stream
        // spans three blocks.
        let n = 500;
        for i in 0..n {
            fs.create(&format!("/file-number-{i:04}")).unwrap();
        }
        let names = fs.readdir("/").unwrap();
        assert_eq!(names.len(), n);
        assert_eq!(names[0], "file-number-0000");
        assert_eq!(names[n - 1], format!("file-number-{:04}", n - 1));
        // Deletion from a multi-block directory keeps the rest intact.
        fs.unlink("/file-number-0250").unwrap();
        let names = fs.readdir("/").unwrap();
        assert_eq!(names.len(), n - 1);
        assert!(!names.contains(&"file-number-0250".to_string()));
        assert!(fs.stat("/file-number-0499").is_ok());
    }

    #[test]
    fn crash_before_sync_loses_only_unsynced_work() {
        let dev = NvmeDevice::new(8192);
        {
            let fs = FileSystem::mkfs(Arc::clone(&dev), 64).unwrap();
            let a = fs.create("/durable").unwrap();
            fs.write(a, 0, b"synced data").unwrap();
            fs.sync().unwrap();
            // Work after the last sync: may vanish on crash.
            let b = fs.create("/ephemeral").unwrap();
            fs.write(b, 0, b"not synced").unwrap();
            // "Crash": drop without sync.
        }
        let fs = FileSystem::mount(dev, 64).unwrap();
        // The synced file is fully intact.
        let st = fs.stat("/durable").unwrap();
        assert_eq!(st.size, 11);
        let mut buf = vec![0u8; 11];
        fs.read(st.ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"synced data");
        // The file system is consistent: we can keep allocating and the
        // free count is coherent with a full re-scan (mount rebuilt it).
        let c = fs.create("/after-crash").unwrap();
        fs.write(c, 0, &vec![5u8; 3 * BLOCK_SIZE]).unwrap();
        fs.sync().unwrap();
        let mut out = vec![0u8; 3 * BLOCK_SIZE];
        fs.read(c, 0, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 5));
    }

    #[test]
    fn fsck_clean_after_heavy_churn() {
        let fs = FileSystem::mkfs(NvmeDevice::new(8192), 128).unwrap();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        for i in 0..10 {
            let ino = fs.create(&format!("/a/b/f{i}")).unwrap();
            fs.write(ino, 0, &vec![i as u8; 3_000 * (i + 1)]).unwrap();
        }
        for i in (0..10).step_by(2) {
            fs.unlink(&format!("/a/b/f{i}")).unwrap();
        }
        // Truncates and sparse growth too.
        let ino = fs.stat("/a/b/f1").unwrap().ino;
        fs.truncate(ino, 100).unwrap();
        fs.truncate(ino, 50_000).unwrap();
        let r = fs.fsck().unwrap();
        assert_eq!(r.files, 5);
        assert_eq!(r.dirs, 3);
        assert!(r.data_blocks > 0);
    }

    #[test]
    fn fsck_detects_a_leaked_block() {
        let fs = FileSystem::mkfs(NvmeDevice::new(4096), 64).unwrap();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; 4 * BLOCK_SIZE]).unwrap();
        assert!(fs.fsck().is_ok());
        // Simulate corruption: allocate a block nobody owns.
        {
            let mut inner = fs.inner.lock();
            inner.bitmap.alloc_run(1).unwrap();
        }
        assert_eq!(fs.fsck().unwrap_err(), FsError::Corrupt);
    }

    #[test]
    fn no_space_surfaces() {
        let fs = FileSystem::mkfs(NvmeDevice::new(160), 16).unwrap();
        let ino = fs.create("/f").unwrap();
        let big = vec![0u8; 200 * BLOCK_SIZE];
        assert_eq!(fs.write(ino, 0, &big).unwrap_err(), FsError::NoSpace);
    }
}
