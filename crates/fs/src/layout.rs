//! On-disk structures and their codecs.
//!
//! Everything is little-endian and hand-packed; 256-byte inodes, 12-byte
//! extents, and a 4 KiB superblock. The codec functions are pure so they
//! can be property-tested in isolation.

use crate::error::FsError;

/// File-system magic number ("SOLROSFS" truncated).
pub const MAGIC: u64 = 0x534F_4C52_4F53_4653;
/// Layout version.
pub const VERSION: u32 = 1;
/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 256;
/// Direct extents per inode.
pub const DIRECT_EXTENTS: usize = 10;
/// Bytes per encoded extent.
pub const EXTENT_SIZE: usize = 12;
/// Extents per overflow (indirect) block.
pub const EXTENTS_PER_BLOCK: usize = solros_nvme::BLOCK_SIZE / EXTENT_SIZE;

/// A contiguous run of disk blocks belonging to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First disk block of the run.
    pub start: u64,
    /// Number of blocks in the run.
    pub len: u32,
}

impl Extent {
    /// Encodes into 12 bytes.
    pub fn encode(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.start.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
    }

    /// Decodes from 12 bytes.
    pub fn decode(b: &[u8]) -> Extent {
        Extent {
            start: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
        }
    }
}

/// Inode kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Unallocated slot.
    Free,
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

impl InodeKind {
    fn to_u8(self) -> u8 {
        match self {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, FsError> {
        match v {
            0 => Ok(InodeKind::Free),
            1 => Ok(InodeKind::File),
            2 => Ok(InodeKind::Dir),
            _ => Err(FsError::Corrupt),
        }
    }
}

/// An in-memory inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File or directory.
    pub kind: InodeKind,
    /// Size in bytes (for directories: byte length of the dirent stream).
    pub size: u64,
    /// Direct extents, in file order.
    pub extents: Vec<Extent>,
    /// Block holding overflow extents (0 = none).
    pub overflow_block: u64,
    /// Number of extents stored in the overflow block.
    pub overflow_count: u32,
}

impl Inode {
    /// A fresh empty inode of the given kind.
    pub fn empty(kind: InodeKind) -> Self {
        Inode {
            kind,
            size: 0,
            extents: Vec::new(),
            overflow_block: 0,
            overflow_count: 0,
        }
    }

    /// Encodes into a 256-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`INODE_SIZE`] bytes or the inode
    /// has more than [`DIRECT_EXTENTS`] direct extents.
    pub fn encode(&self, out: &mut [u8]) {
        assert_eq!(out.len(), INODE_SIZE);
        assert!(
            self.extents.len() <= DIRECT_EXTENTS,
            "too many direct extents"
        );
        out.fill(0);
        out[0] = self.kind.to_u8();
        out[1] = self.extents.len() as u8;
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        out[16..24].copy_from_slice(&self.overflow_block.to_le_bytes());
        out[24..28].copy_from_slice(&self.overflow_count.to_le_bytes());
        let mut off = 32;
        for e in &self.extents {
            e.encode(&mut out[off..off + EXTENT_SIZE]);
            off += EXTENT_SIZE;
        }
    }

    /// Decodes a 256-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not exactly [`INODE_SIZE`] bytes.
    pub fn decode(b: &[u8]) -> Result<Inode, FsError> {
        assert_eq!(b.len(), INODE_SIZE);
        let kind = InodeKind::from_u8(b[0])?;
        let n = b[1] as usize;
        if n > DIRECT_EXTENTS {
            return Err(FsError::Corrupt);
        }
        let size = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
        let overflow_block = u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"));
        let overflow_count = u32::from_le_bytes(b[24..28].try_into().expect("4 bytes"));
        let mut extents = Vec::with_capacity(n);
        let mut off = 32;
        for _ in 0..n {
            extents.push(Extent::decode(&b[off..off + EXTENT_SIZE]));
            off += EXTENT_SIZE;
        }
        Ok(Inode {
            kind,
            size,
            extents,
            overflow_block,
            overflow_count,
        })
    }
}

/// The superblock (block 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Total device blocks.
    pub total_blocks: u64,
    /// First bitmap block.
    pub bitmap_start: u64,
    /// Bitmap length in blocks.
    pub bitmap_blocks: u64,
    /// First inode-table block.
    pub itable_start: u64,
    /// Inode-table length in blocks.
    pub itable_blocks: u64,
    /// Number of inodes.
    pub inode_count: u64,
    /// First data block.
    pub data_start: u64,
    /// Root directory inode number.
    pub root_ino: u64,
}

impl Superblock {
    /// Computes the layout for a device of `total_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if the device is too small to hold any data blocks.
    pub fn for_device(total_blocks: u64) -> Superblock {
        let bits_per_block = (solros_nvme::BLOCK_SIZE * 8) as u64;
        let bitmap_blocks = total_blocks.div_ceil(bits_per_block);
        // One inode per 16 data blocks (64 KiB of data), at least 128.
        let inode_count = (total_blocks / 16).max(128);
        let inodes_per_block = (solros_nvme::BLOCK_SIZE / INODE_SIZE) as u64;
        let itable_blocks = inode_count.div_ceil(inodes_per_block);
        let bitmap_start = 1;
        let itable_start = bitmap_start + bitmap_blocks;
        let data_start = itable_start + itable_blocks;
        assert!(
            data_start < total_blocks,
            "device too small: {total_blocks} blocks"
        );
        Superblock {
            total_blocks,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            inode_count,
            data_start,
            root_ino: 0,
        }
    }

    /// Encodes into a block-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out` is smaller than 80 bytes.
    pub fn encode(&self, out: &mut [u8]) {
        out.fill(0);
        out[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[16..24].copy_from_slice(&self.total_blocks.to_le_bytes());
        out[24..32].copy_from_slice(&self.bitmap_start.to_le_bytes());
        out[32..40].copy_from_slice(&self.bitmap_blocks.to_le_bytes());
        out[40..48].copy_from_slice(&self.itable_start.to_le_bytes());
        out[48..56].copy_from_slice(&self.itable_blocks.to_le_bytes());
        out[56..64].copy_from_slice(&self.inode_count.to_le_bytes());
        out[64..72].copy_from_slice(&self.data_start.to_le_bytes());
        out[72..80].copy_from_slice(&self.root_ino.to_le_bytes());
    }

    /// Decodes and validates a superblock.
    pub fn decode(b: &[u8]) -> Result<Superblock, FsError> {
        let magic = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        let version = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        if magic != MAGIC || version != VERSION {
            return Err(FsError::Corrupt);
        }
        let f = |r: std::ops::Range<usize>| u64::from_le_bytes(b[r].try_into().expect("8 bytes"));
        Ok(Superblock {
            total_blocks: f(16..24),
            bitmap_start: f(24..32),
            bitmap_blocks: f(32..40),
            itable_start: f(40..48),
            itable_blocks: f(48..56),
            inode_count: f(56..64),
            data_start: f(64..72),
            root_ino: f(72..80),
        })
    }
}

/// A directory entry in the dirent stream: `[ino u64][len u16][name]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Inode number the entry points at.
    pub ino: u64,
    /// Entry name (no slashes, non-empty).
    pub name: String,
}

/// Encodes a dirent stream.
pub fn encode_dirents(entries: &[Dirent]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        out.extend_from_slice(&e.ino.to_le_bytes());
        out.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
    }
    out
}

/// Decodes a dirent stream.
pub fn decode_dirents(mut b: &[u8]) -> Result<Vec<Dirent>, FsError> {
    let mut out = Vec::new();
    while !b.is_empty() {
        if b.len() < 10 {
            return Err(FsError::Corrupt);
        }
        let ino = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        let len = u16::from_le_bytes(b[8..10].try_into().expect("2 bytes")) as usize;
        if b.len() < 10 + len {
            return Err(FsError::Corrupt);
        }
        let name = std::str::from_utf8(&b[10..10 + len])
            .map_err(|_| FsError::Corrupt)?
            .to_string();
        out.push(Dirent { ino, name });
        b = &b[10 + len..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_roundtrip() {
        let e = Extent {
            start: 0xDEAD_BEEF,
            len: 42,
        };
        let mut buf = [0u8; EXTENT_SIZE];
        e.encode(&mut buf);
        assert_eq!(Extent::decode(&buf), e);
    }

    #[test]
    fn inode_roundtrip() {
        let mut ino = Inode::empty(InodeKind::File);
        ino.size = 123_456_789;
        ino.extents = (0..DIRECT_EXTENTS as u64)
            .map(|i| Extent {
                start: i * 100,
                len: (i + 1) as u32,
            })
            .collect();
        ino.overflow_block = 777;
        ino.overflow_count = 3;
        let mut buf = [0u8; INODE_SIZE];
        ino.encode(&mut buf);
        assert_eq!(Inode::decode(&buf).unwrap(), ino);
    }

    #[test]
    fn free_inode_is_zeroes() {
        let buf = [0u8; INODE_SIZE];
        let ino = Inode::decode(&buf).unwrap();
        assert_eq!(ino.kind, InodeKind::Free);
        assert_eq!(ino.size, 0);
        assert!(ino.extents.is_empty());
    }

    #[test]
    fn corrupt_inode_rejected() {
        let mut buf = [0u8; INODE_SIZE];
        buf[0] = 9;
        assert_eq!(Inode::decode(&buf), Err(FsError::Corrupt));
        buf[0] = 1;
        buf[1] = DIRECT_EXTENTS as u8 + 1;
        assert_eq!(Inode::decode(&buf), Err(FsError::Corrupt));
    }

    #[test]
    fn superblock_roundtrip_and_validation() {
        let sb = Superblock::for_device(1 << 20);
        let mut buf = vec![0u8; solros_nvme::BLOCK_SIZE];
        sb.encode(&mut buf);
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
        buf[0] ^= 0xFF;
        assert_eq!(Superblock::decode(&buf), Err(FsError::Corrupt));
    }

    #[test]
    fn superblock_layout_is_consistent() {
        for blocks in [1_000u64, 1 << 16, 1 << 22] {
            let sb = Superblock::for_device(blocks);
            assert!(sb.bitmap_start < sb.itable_start);
            assert!(sb.itable_start < sb.data_start);
            assert!(sb.data_start < sb.total_blocks);
            // Bitmap covers every block.
            assert!(sb.bitmap_blocks * (solros_nvme::BLOCK_SIZE as u64 * 8) >= blocks);
            // Inode table holds the advertised count.
            assert!(
                sb.itable_blocks * (solros_nvme::BLOCK_SIZE / INODE_SIZE) as u64 >= sb.inode_count
            );
        }
    }

    #[test]
    fn dirent_roundtrip() {
        let entries = vec![
            Dirent {
                ino: 1,
                name: "usr".into(),
            },
            Dirent {
                ino: 42,
                name: "a-longer-name.txt".into(),
            },
            Dirent {
                ino: 7,
                name: "x".into(),
            },
        ];
        let enc = encode_dirents(&entries);
        assert_eq!(decode_dirents(&enc).unwrap(), entries);
        assert!(decode_dirents(&[]).unwrap().is_empty());
    }

    #[test]
    fn truncated_dirents_rejected() {
        let entries = vec![Dirent {
            ino: 1,
            name: "abc".into(),
        }];
        let enc = encode_dirents(&entries);
        assert_eq!(decode_dirents(&enc[..enc.len() - 1]), Err(FsError::Corrupt));
        assert_eq!(decode_dirents(&enc[..5]), Err(FsError::Corrupt));
    }
}
