//! Block-level device access for the file system.
//!
//! [`BlockIo`] is the file system's "driver handle": it owns a host-side
//! staging window and turns block reads/writes into NVMe commands. The
//! metadata path always moves through host memory; the *data* path is the
//! proxy's business (it may program P2P transfers directly, see
//! `solros::fs_proxy`), which is why this type also re-exports the raw
//! device for extent-level command construction.

use std::sync::Arc;

use parking_lot::Mutex;
use solros_nvme::{DmaPtr, NvmeCommand, NvmeDevice, NvmeError, BLOCK_SIZE};
use solros_pcie::{PcieCounters, Side, Window};

/// A staged block I/O channel to the simulated NVMe device.
pub struct BlockIo {
    dev: Arc<NvmeDevice>,
    staging: Arc<Window>,
    lock: Mutex<()>,
}

impl BlockIo {
    /// Wraps a device with a one-block host staging buffer.
    pub fn new(dev: Arc<NvmeDevice>) -> Self {
        Self {
            dev,
            staging: Window::new(BLOCK_SIZE, Side::Host, Arc::new(PcieCounters::new())),
            lock: Mutex::new(()),
        }
    }

    /// Returns the underlying device (for direct command construction by
    /// the proxy's P2P path).
    pub fn device(&self) -> &Arc<NvmeDevice> {
        &self.dev
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.dev.capacity_blocks()
    }

    /// Reads one block into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != BLOCK_SIZE`.
    pub fn read_block(&self, lba: u64, buf: &mut [u8]) -> Result<(), NvmeError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _g = self.lock.lock();
        let cmd = NvmeCommand::Read {
            lba,
            nblocks: 1,
            dst: DmaPtr::new(Arc::clone(&self.staging), 0),
        };
        self.dev.submit_vectored(&[cmd])[0]?;
        let h = self.staging.map(Side::Host);
        // SAFETY: the staging buffer is exclusively owned under `lock`.
        unsafe { h.read(0, buf) };
        Ok(())
    }

    /// Writes one block from `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != BLOCK_SIZE`.
    pub fn write_block(&self, lba: u64, buf: &[u8]) -> Result<(), NvmeError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _g = self.lock.lock();
        let h = self.staging.map(Side::Host);
        // SAFETY: the staging buffer is exclusively owned under `lock`.
        unsafe { h.write(0, buf) };
        let cmd = NvmeCommand::Write {
            lba,
            nblocks: 1,
            src: DmaPtr::new(Arc::clone(&self.staging), 0),
        };
        self.dev.submit_vectored(&[cmd])[0]
    }

    /// Reads a block with up to `retries` retries on transient device
    /// errors (fault-injection recovery path).
    pub fn read_block_retry(
        &self,
        lba: u64,
        buf: &mut [u8],
        retries: u32,
    ) -> Result<(), NvmeError> {
        let mut last = NvmeError::MediaError;
        for _ in 0..=retries {
            match self.read_block(lba, buf) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let io = BlockIo::new(NvmeDevice::new(64));
        let data = vec![0xA5u8; BLOCK_SIZE];
        io.write_block(7, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        io.read_block(7, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn retry_recovers_from_injected_faults() {
        let io = BlockIo::new(NvmeDevice::new(64));
        let data = vec![1u8; BLOCK_SIZE];
        io.write_block(0, &data).unwrap();
        io.device().inject_faults(2);
        let mut out = vec![0u8; BLOCK_SIZE];
        io.read_block_retry(0, &mut out, 3).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn retry_gives_up() {
        let io = BlockIo::new(NvmeDevice::new(64));
        io.device().inject_faults(10);
        let mut out = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            io.read_block_retry(0, &mut out, 2),
            Err(NvmeError::MediaError)
        );
    }

    #[test]
    fn concurrent_block_io_is_serialized_but_correct() {
        let io = Arc::new(BlockIo::new(NvmeDevice::new(4096)));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let io = Arc::clone(&io);
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let lba = t * 64 + i;
                        let block = vec![(lba % 250) as u8; BLOCK_SIZE];
                        io.write_block(lba, &block).unwrap();
                        let mut out = vec![0u8; BLOCK_SIZE];
                        io.read_block(lba, &mut out).unwrap();
                        assert_eq!(out, block);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
