//! Block allocation bitmap.
//!
//! A word-per-64-blocks in-memory bitmap with first-fit contiguous-run
//! allocation (extents want contiguity so P2P transfers need few NVMe
//! commands). Dirty words are tracked so `sync` only rewrites changed
//! bitmap blocks.

use crate::error::FsError;

/// In-memory block bitmap. Bit set = allocated.
pub struct Bitmap {
    words: Vec<u64>,
    total: u64,
    free: u64,
    /// Allocation scan hint (word index).
    hint: usize,
    dirty_words: Vec<bool>,
}

impl Bitmap {
    /// Creates an all-free bitmap over `total` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: u64) -> Self {
        assert!(total > 0, "empty bitmap");
        let nwords = total.div_ceil(64) as usize;
        let mut bm = Bitmap {
            words: vec![0; nwords],
            total,
            free: total,
            hint: 0,
            dirty_words: vec![false; nwords],
        };
        // Mark the padding bits past `total` as allocated so they are
        // never handed out.
        for b in total..(nwords as u64 * 64) {
            bm.set(b);
            bm.free += 1; // set() decremented; padding is not real space.
        }
        bm.free = total;
        bm
    }

    /// Rebuilds from raw bitmap bytes (mount path).
    pub fn from_bytes(bytes: &[u8], total: u64) -> Self {
        let nwords = total.div_ceil(64) as usize;
        let mut words = vec![0u64; nwords];
        for (i, w) in words.iter_mut().enumerate() {
            let off = i * 8;
            if off + 8 <= bytes.len() {
                *w = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            }
        }
        let mut free = 0;
        for b in 0..total {
            if words[(b / 64) as usize] & (1 << (b % 64)) == 0 {
                free += 1;
            }
        }
        Bitmap {
            dirty_words: vec![false; nwords],
            words,
            total,
            free,
            hint: 0,
        }
    }

    /// Serializes to raw bytes (sync path).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Total blocks tracked.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free blocks remaining.
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Returns true if block `b` is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn is_set(&self, b: u64) -> bool {
        assert!(b < self.total, "block {b} out of range");
        self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Marks block `b` allocated.
    fn set(&mut self, b: u64) {
        let w = (b / 64) as usize;
        let bit = 1u64 << (b % 64);
        debug_assert_eq!(self.words[w] & bit, 0, "double allocation of block {b}");
        self.words[w] |= bit;
        if w < self.dirty_words.len() {
            self.dirty_words[w] = true;
        }
        self.free -= 1;
    }

    /// Marks a specific block allocated (mkfs reserves metadata blocks).
    ///
    /// # Panics
    ///
    /// Panics if the block is already allocated or out of range.
    pub fn reserve(&mut self, b: u64) {
        assert!(b < self.total, "block {b} out of range");
        assert!(!self.is_set(b), "block {b} already allocated");
        self.set(b);
    }

    /// Frees block `b`.
    ///
    /// # Panics
    ///
    /// Panics if the block was not allocated (double free) or out of range.
    pub fn release(&mut self, b: u64) {
        assert!(b < self.total, "block {b} out of range");
        let w = (b / 64) as usize;
        let bit = 1u64 << (b % 64);
        assert!(self.words[w] & bit != 0, "double free of block {b}");
        self.words[w] &= !bit;
        self.dirty_words[w] = true;
        self.free += 1;
        self.hint = self.hint.min(w);
    }

    /// Allocates up to `want` blocks as a single contiguous run, returning
    /// `(start, len)` with `1 <= len <= want`. First-fit from the scan
    /// hint; prefers the longest run available at the found position.
    pub fn alloc_run(&mut self, want: u32) -> Result<(u64, u32), FsError> {
        if self.free == 0 || want == 0 {
            return Err(FsError::NoSpace);
        }
        // Scan from hint, wrapping once.
        let nwords = self.words.len();
        for lap in 0..2 {
            let (lo, hi) = if lap == 0 {
                (self.hint, nwords)
            } else {
                (0, self.hint)
            };
            for w in lo..hi {
                if self.words[w] == u64::MAX {
                    continue;
                }
                // Find first free bit in this word.
                let first = (!self.words[w]).trailing_zeros() as u64;
                let start = w as u64 * 64 + first;
                if start >= self.total {
                    continue;
                }
                // Extend the run.
                let mut len = 0u32;
                while len < want {
                    let b = start + len as u64;
                    if b >= self.total || self.is_set(b) {
                        break;
                    }
                    len += 1;
                }
                for i in 0..len {
                    self.set(start + i as u64);
                }
                self.hint = w;
                return Ok((start, len));
            }
        }
        Err(FsError::NoSpace)
    }

    /// Returns indices of dirty bitmap words and clears the dirty marks.
    pub fn take_dirty_words(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, d) in self.dirty_words.iter_mut().enumerate() {
            if *d {
                out.push(i);
                *d = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_track_free_count() {
        let mut bm = Bitmap::new(1000);
        assert_eq!(bm.free(), 1000);
        let (start, len) = bm.alloc_run(10).unwrap();
        assert_eq!(len, 10);
        assert_eq!(bm.free(), 990);
        for i in 0..10 {
            assert!(bm.is_set(start + i));
            bm.release(start + i);
        }
        assert_eq!(bm.free(), 1000);
    }

    #[test]
    fn partial_run_when_fragmented() {
        let mut bm = Bitmap::new(64);
        let (s, l) = bm.alloc_run(64).unwrap();
        assert_eq!((s, l), (0, 64));
        // Free blocks 5..8 (a 3-block hole).
        for b in 5..8 {
            bm.release(b);
        }
        let (s, l) = bm.alloc_run(10).unwrap();
        assert_eq!((s, l), (5, 3), "only the hole is available");
    }

    #[test]
    fn exhaustion() {
        let mut bm = Bitmap::new(8);
        assert_eq!(bm.alloc_run(8).unwrap(), (0, 8));
        assert_eq!(bm.alloc_run(1), Err(FsError::NoSpace));
        bm.release(3);
        assert_eq!(bm.alloc_run(4).unwrap(), (3, 1));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut bm = Bitmap::new(8);
        bm.alloc_run(1).unwrap();
        bm.release(0);
        bm.release(0);
    }

    #[test]
    fn roundtrip_bytes() {
        let mut bm = Bitmap::new(300);
        bm.alloc_run(77).unwrap();
        bm.reserve(200);
        let bytes = bm.to_bytes();
        let bm2 = Bitmap::from_bytes(&bytes, 300);
        assert_eq!(bm2.free(), bm.free());
        for b in 0..300 {
            assert_eq!(bm.is_set(b), bm2.is_set(b), "block {b}");
        }
    }

    #[test]
    fn padding_bits_never_allocated() {
        // 70 blocks: the second word has 54 padding bits.
        let mut bm = Bitmap::new(70);
        let mut total = 0;
        while let Ok((s, l)) = bm.alloc_run(64) {
            assert!(s + l as u64 <= 70, "allocated past end: {s}+{l}");
            total += l as u64;
        }
        assert_eq!(total, 70);
    }

    #[test]
    fn dirty_tracking() {
        let mut bm = Bitmap::new(256);
        assert!(bm.take_dirty_words().is_empty());
        bm.alloc_run(1).unwrap();
        assert_eq!(bm.take_dirty_words(), vec![0]);
        assert!(bm.take_dirty_words().is_empty());
        bm.reserve(129);
        assert_eq!(bm.take_dirty_words(), vec![2]);
    }

    #[test]
    fn hint_resets_on_release() {
        let mut bm = Bitmap::new(128);
        bm.alloc_run(64).unwrap();
        bm.alloc_run(64).unwrap();
        bm.release(10);
        // Next allocation finds the released block despite the hint.
        assert_eq!(bm.alloc_run(1).unwrap(), (10, 1));
    }
}
