//! File-system errors.

use std::fmt;

use solros_nvme::NvmeError;

/// Errors returned by [`crate::FileSystem`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path component or file does not exist.
    NotFound,
    /// Creating something that already exists.
    Exists,
    /// A path component is not a directory.
    NotDir,
    /// Operation needs a file but found a directory.
    IsDir,
    /// Removing a non-empty directory.
    NotEmpty,
    /// Device or inode table exhausted.
    NoSpace,
    /// File grew beyond the maximum supported size.
    TooLarge,
    /// Malformed path (empty, relative, or bad component).
    InvalidPath,
    /// Malformed or incompatible on-disk structure.
    Corrupt,
    /// Underlying device error.
    Io(NvmeError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "already exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::TooLarge => write!(f, "file too large"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::Corrupt => write!(f, "corrupt file system"),
            FsError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<NvmeError> for FsError {
    fn from(e: NvmeError) -> Self {
        FsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        let e: FsError = NvmeError::MediaError.into();
        assert_eq!(e, FsError::Io(NvmeError::MediaError));
        assert!(e.to_string().contains("media error"));
    }
}
