//! The host-centric baseline (§3, Figure 2a).
//!
//! A host application mediates all I/O for the co-processor: file data is
//! first staged in host memory (①→②), then copied again into co-processor
//! memory (③), doubling PCIe bandwidth and DMA-engine usage. The wrapper
//! performs both copies for real (into an actual staging buffer and then
//! into the co-processor window) so the doubled traffic shows up on the
//! PCIe counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_fs::{FileSystem, OpenFlags};
use solros_machine::WindowAlloc;
use solros_pcie::window::Window;
use solros_pcie::Side;
use solros_proto::rpc_error::RpcErr;

use crate::filestore::{map_fs_err, FileStore};

/// Mediation statistics.
#[derive(Debug, Default)]
pub struct HostCentricStats {
    /// Bytes staged into host memory (first hop).
    pub bytes_staged: AtomicU64,
    /// Bytes moved over PCIe to/from the co-processor (second hop).
    pub bytes_forwarded: AtomicU64,
}

/// The host-mediated I/O path.
pub struct HostCentric {
    fs: Arc<FileSystem>,
    coproc_window: Arc<Window>,
    alloc: Arc<WindowAlloc>,
    stats: Arc<HostCentricStats>,
    staging: Mutex<Vec<u8>>,
}

impl HostCentric {
    /// Builds the mediator for one co-processor.
    pub fn new(fs: Arc<FileSystem>, coproc_window: Arc<Window>, alloc: Arc<WindowAlloc>) -> Self {
        Self {
            fs,
            coproc_window,
            alloc,
            stats: Arc::new(HostCentricStats::default()),
            staging: Mutex::new(Vec::new()),
        }
    }

    /// Mediation statistics.
    pub fn stats(&self) -> &Arc<HostCentricStats> {
        &self.stats
    }
}

impl FileStore for HostCentric {
    fn create(&self, path: &str) -> Result<u64, RpcErr> {
        self.fs.create(path).map_err(map_fs_err)
    }

    fn open(&self, path: &str, create: bool) -> Result<(u64, u64), RpcErr> {
        let ino = self
            .fs
            .open(
                path,
                OpenFlags {
                    create,
                    ..Default::default()
                },
            )
            .map_err(map_fs_err)?;
        let size = self.fs.size_of(ino).map_err(map_fs_err)?;
        Ok((ino, size))
    }

    fn read_at(&self, handle: u64, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        // Hop 1: device -> host staging buffer.
        let mut staging = self.staging.lock();
        staging.resize(buf.len(), 0);
        let n = self
            .fs
            .read(handle, offset, &mut staging)
            .map_err(map_fs_err)?;
        self.stats
            .bytes_staged
            .fetch_add(n as u64, Ordering::Relaxed);
        // Hop 2: host -> co-processor window -> application buffer.
        let off = self.alloc.alloc(n.max(1)).ok_or(RpcErr::NoSpace)?;
        let host = self.coproc_window.map(Side::Host);
        // SAFETY: the range was exclusively allocated for this call.
        unsafe {
            host.dma_write(off, &staging[..n]);
            let coproc = self.coproc_window.map(Side::Coproc);
            coproc.read(off, &mut buf[..n]);
        }
        self.alloc.free(off, n.max(1));
        self.stats
            .bytes_forwarded
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn write_at(&self, handle: u64, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        // Hop 1: application buffer -> co-processor window -> host staging.
        let off = self.alloc.alloc(data.len().max(1)).ok_or(RpcErr::NoSpace)?;
        let mut staging = self.staging.lock();
        staging.resize(data.len(), 0);
        // SAFETY: the range was exclusively allocated for this call.
        unsafe {
            let coproc = self.coproc_window.map(Side::Coproc);
            coproc.write(off, data);
            let host = self.coproc_window.map(Side::Host);
            host.dma_read(off, &mut staging[..]);
        }
        self.alloc.free(off, data.len().max(1));
        self.stats
            .bytes_forwarded
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        // Hop 2: host staging -> device.
        let n = self
            .fs
            .write(handle, offset, &staging)
            .map_err(map_fs_err)?;
        self.stats
            .bytes_staged
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn size_of(&self, path: &str) -> Result<u64, RpcErr> {
        Ok(self.fs.stat(path).map_err(map_fs_err)?.size)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        self.fs.readdir(path).map_err(map_fs_err)
    }

    fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        self.fs.mkdir(path).map_err(map_fs_err).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_nvme::NvmeDevice;
    use solros_pcie::PcieCounters;

    fn setup() -> (HostCentric, Arc<PcieCounters>) {
        let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 128).unwrap());
        let counters = Arc::new(PcieCounters::new());
        let window = Window::new(1 << 20, Side::Coproc, Arc::clone(&counters));
        let alloc = Arc::new(WindowAlloc::new(1 << 20));
        (HostCentric::new(fs, window, alloc), counters)
    }

    #[test]
    fn functional_roundtrip() {
        let (hc, _) = setup();
        let ino = hc.create("/f").unwrap();
        let data: Vec<u8> = (0..100_000).map(|i| (i % 239) as u8).collect();
        assert_eq!(hc.write_at(ino, 0, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(hc.read_at(ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn traffic_is_doubled() {
        let (hc, counters) = setup();
        let ino = hc.create("/f").unwrap();
        let data = vec![9u8; 64 * 1024];
        hc.write_at(ino, 0, &data).unwrap();
        let s = hc.stats();
        assert_eq!(s.bytes_staged.load(Ordering::Relaxed), 64 * 1024);
        assert_eq!(s.bytes_forwarded.load(Ordering::Relaxed), 64 * 1024);
        // The host really did DMA the payload across the bus once more.
        assert!(counters.snapshot().dma_bytes >= 64 * 1024);
    }
}
