//! A uniform file API over Solros and the baselines.
//!
//! The example applications (text indexing, image search) are written
//! against this trait so the same application body runs unmodified on the
//! Solros data plane, Phi-virtio, Phi-NFS, and the host-centric path —
//! exactly how the paper evaluates them.

use solros::fs_api::CoprocFs;
use solros_proto::rpc_error::RpcErr;

/// Minimal file operations every stack provides.
pub trait FileStore: Send + Sync {
    /// Creates a file, returning its handle.
    fn create(&self, path: &str) -> Result<u64, RpcErr>;
    /// Opens a file (optionally creating it), returning `(handle, size)`.
    fn open(&self, path: &str, create: bool) -> Result<(u64, u64), RpcErr>;
    /// Reads at an offset; returns bytes read (short at EOF).
    fn read_at(&self, handle: u64, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr>;
    /// Writes at an offset; returns bytes written.
    fn write_at(&self, handle: u64, offset: u64, data: &[u8]) -> Result<usize, RpcErr>;
    /// Returns a file's size by path.
    fn size_of(&self, path: &str) -> Result<u64, RpcErr>;
    /// Lists directory entries.
    fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr>;
    /// Creates a directory.
    fn mkdir(&self, path: &str) -> Result<(), RpcErr>;

    /// Reads a batch of `(offset, len)` ranges from one file, returning
    /// one payload per range (short at EOF).
    ///
    /// The default walks the ranges sequentially; stacks with a
    /// submission pipeline (the Solros data plane) override it to keep
    /// the whole batch in flight at once.
    fn read_at_batch(&self, handle: u64, reqs: &[(u64, usize)]) -> Result<Vec<Vec<u8>>, RpcErr> {
        let mut out = Vec::with_capacity(reqs.len());
        for &(offset, len) in reqs {
            let mut buf = vec![0u8; len];
            let n = self.read_at(handle, offset, &mut buf)?;
            buf.truncate(n);
            out.push(buf);
        }
        Ok(out)
    }
}

impl FileStore for CoprocFs {
    fn create(&self, path: &str) -> Result<u64, RpcErr> {
        CoprocFs::create(self, path).map(|h| h.0)
    }

    fn open(&self, path: &str, create: bool) -> Result<(u64, u64), RpcErr> {
        CoprocFs::open(self, path, create, false, false).map(|(h, size)| (h.0, size))
    }

    fn read_at(&self, handle: u64, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        CoprocFs::read_at(self, solros::fs_api::FileHandle(handle), offset, buf)
    }

    fn write_at(&self, handle: u64, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        CoprocFs::write_at(self, solros::fs_api::FileHandle(handle), offset, data)
    }

    fn size_of(&self, path: &str) -> Result<u64, RpcErr> {
        CoprocFs::stat(self, path).map(|s| s.size)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        CoprocFs::readdir(self, path)
    }

    fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        CoprocFs::mkdir(self, path)
    }

    fn read_at_batch(&self, handle: u64, reqs: &[(u64, usize)]) -> Result<Vec<Vec<u8>>, RpcErr> {
        // Pipeline the whole batch through the submission API: the proxy
        // sees every read at once and coalesces their NVMe commands.
        let mut batch = self.batch();
        for &(offset, len) in reqs {
            if len == 0 {
                // The Batch builder rejects empty ops; splice in an empty
                // payload below.
                continue;
            }
            batch = batch.read(solros::fs_api::FileHandle(handle), offset, len);
        }
        let mut results = batch.run().into_iter();
        let mut out = Vec::with_capacity(reqs.len());
        for &(_, len) in reqs {
            if len == 0 {
                out.push(Vec::new());
                continue;
            }
            match results.next().expect("one result per submitted read") {
                solros::fs_api::BatchResult::Read(r) => out.push(r?),
                solros::fs_api::BatchResult::Write(_) => return Err(RpcErr::Io),
            }
        }
        Ok(out)
    }
}

/// Maps local file-system errors to the shared error space.
pub fn map_fs_err(e: solros_fs::FsError) -> RpcErr {
    use solros_fs::FsError;
    match e {
        FsError::NotFound => RpcErr::NotFound,
        FsError::Exists => RpcErr::Exists,
        FsError::NotDir => RpcErr::NotDir,
        FsError::IsDir => RpcErr::IsDir,
        FsError::NotEmpty => RpcErr::NotEmpty,
        FsError::NoSpace => RpcErr::NoSpace,
        FsError::TooLarge => RpcErr::TooLarge,
        FsError::InvalidPath => RpcErr::Invalid,
        FsError::Corrupt | FsError::Io(_) => RpcErr::Io,
    }
}
