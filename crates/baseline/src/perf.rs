//! Timed-mode cost models for the baseline stacks.
//!
//! Calibrated against the paper's measurements:
//!
//! * Figure 11c/12c — Phi-virtio peaks around 0.2 GB/s for reads and
//!   under 0.1 GB/s for writes regardless of thread count (the relay's
//!   CPU copy is the bottleneck);
//! * Figure 11d/12d — Phi-NFS is comparable or worse, throttled by
//!   per-chunk RPC round trips;
//! * Figure 13a — for a 512 KB random read, the virtio path spends ~1.2 ms
//!   in the (Phi-resident) file system, several ms in block/transport
//!   (CPU copy + vring processing), and a fraction of a ms in storage,
//!   while Solros's stub spends 5× less FS time and its zero-copy
//!   transfer is two orders of magnitude faster than the CPU copy.

use solros_nvme::NvmePerf;
use solros_simkit::time::transfer_time;
use solros_simkit::SimTime;

/// File-system CPU costs on each processor (Figure 13a's "File system"
/// component).
#[derive(Debug, Clone)]
pub struct PhiFsCpu {
    /// Fixed per-syscall cost of the full FS on the host.
    pub host_per_op: SimTime,
    /// Per-page cost on the host (page cache, mapping).
    pub host_per_page: SimTime,
    /// Slowdown of the full FS on Phi cores (≈5×, Figure 13a).
    pub phi_slowdown: f64,
    /// The Solros stub's fixed cost on the Phi. Figure 13a profiles the
    /// stub at ~5× less time than the full FS on the Phi for a 512 KB
    /// read (~1.2 ms), i.e. ~230 µs — RPC marshalling and buffer
    /// management on slow in-order cores is not free.
    pub stub_per_op: SimTime,
    /// The stub's per-page cost (window-buffer management for the
    /// zero-copy transfer).
    pub stub_per_page: SimTime,
}

impl PhiFsCpu {
    /// Paper calibration.
    pub fn paper_default() -> Self {
        PhiFsCpu {
            host_per_op: SimTime::from_us(8),
            host_per_page: SimTime::from_ns(1_700),
            phi_slowdown: 5.2,
            stub_per_op: SimTime::from_us(40),
            stub_per_page: SimTime::from_ns(1_500),
        }
    }

    /// Full-FS CPU time for an op touching `pages` pages, on the host.
    pub fn host_fs_time(&self, pages: u64) -> SimTime {
        self.host_per_op + self.host_per_page * pages
    }

    /// Full-FS CPU time on the Phi.
    pub fn phi_fs_time(&self, pages: u64) -> SimTime {
        self.host_fs_time(pages) * self.phi_slowdown
    }

    /// The Solros stub's time for an op touching `pages` pages (RPC build
    /// plus window-buffer management).
    pub fn stub_time(&self, pages: u64) -> SimTime {
        self.stub_per_op + self.stub_per_page * pages
    }
}

/// Timed model of the Phi-virtio data path.
#[derive(Debug, Clone)]
pub struct VirtioPerf {
    /// Host relay CPU-copy bandwidth across PCIe.
    pub copy_bw: f64,
    /// Fixed cost per vring request (kick, host relay wakeup, interrupt).
    pub per_request: SimTime,
    /// Per-4KB-page vring descriptor processing on the Phi.
    pub per_page: SimTime,
    /// Largest vring request.
    pub max_request: u64,
    /// FS CPU model.
    pub fs_cpu: PhiFsCpu,
    /// The device itself (per-request doorbells/interrupts).
    pub nvme: NvmePerf,
}

impl VirtioPerf {
    /// Paper calibration.
    pub fn paper_default() -> Self {
        VirtioPerf {
            copy_bw: 0.21e9,
            per_request: SimTime::from_us(300),
            per_page: SimTime::from_us(9),
            max_request: 128 * 1024,
            fs_cpu: PhiFsCpu::paper_default(),
            nvme: NvmePerf::paper_default(),
        }
    }

    /// End-to-end latency of one `bytes`-sized random read/write.
    pub fn op_time(&self, is_read: bool, bytes: u64) -> SimTime {
        let pages = bytes.div_ceil(4096);
        let reqs = bytes.div_ceil(self.max_request).max(1);
        let fs = self.fs_cpu.phi_fs_time(pages);
        let transport =
            self.per_request * reqs + self.per_page * pages + transfer_time(bytes, self.copy_bw);
        let storage = self.nvme.sequential_batch_time(is_read, reqs, bytes / reqs);
        fs + transport + storage
    }

    /// Component breakdown `(fs, block/transport, storage)` for Figure 13a.
    pub fn breakdown(&self, is_read: bool, bytes: u64) -> (SimTime, SimTime, SimTime) {
        let pages = bytes.div_ceil(4096);
        let reqs = bytes.div_ceil(self.max_request).max(1);
        (
            self.fs_cpu.phi_fs_time(pages),
            self.per_request * reqs + self.per_page * pages + transfer_time(bytes, self.copy_bw),
            self.nvme.sequential_batch_time(is_read, reqs, bytes / reqs),
        )
    }

    /// Aggregate steady-state throughput with `threads` submitters: ops
    /// pipeline, but the relay copy and the device serialize.
    pub fn steady_throughput(&self, is_read: bool, threads: usize, bytes: u64) -> f64 {
        let per_thread = bytes as f64 / self.op_time(is_read, bytes).as_secs_f64();
        let copy_cap = self.copy_bw;
        let dev_bw = if is_read {
            self.nvme.read_bw
        } else {
            self.nvme.write_bw
        };
        (per_thread * threads as f64).min(copy_cap).min(dev_bw)
    }

    /// Reply-side publish/interrupt events per completed request. The
    /// vring completes one request per guest interrupt — the host relay
    /// has no cross-request completion view, so replies can never
    /// coalesce. Solros's batched reply settlement drives this toward
    /// `1 / queue_depth`; the host-centric stack is pinned at 1.
    pub fn reply_publishes_per_op(&self) -> f64 {
        1.0
    }
}

/// Timed model of the Phi-NFS path.
#[derive(Debug, Clone)]
pub struct NfsPerf {
    /// RPC round trip per chunk (client stack on Phi + server).
    pub per_rpc: SimTime,
    /// Chunk size (rsize/wsize).
    pub chunk: u64,
    /// Transport copy bandwidth (TCP-over-PCIe on the Phi).
    pub wire_bw: f64,
    /// Extra per-write stable-storage penalty (COMMIT).
    pub commit: SimTime,
    /// Server-side FS + device model.
    pub nvme: NvmePerf,
    /// FS CPU model (client side runs the chatty NFS code on Phi cores).
    pub fs_cpu: PhiFsCpu,
}

impl NfsPerf {
    /// Paper calibration.
    pub fn paper_default() -> Self {
        NfsPerf {
            per_rpc: SimTime::from_us(450),
            chunk: 64 * 1024,
            wire_bw: 0.35e9,
            commit: SimTime::from_us(900),
            nvme: NvmePerf::paper_default(),
            fs_cpu: PhiFsCpu::paper_default(),
        }
    }

    /// End-to-end latency of one `bytes`-sized op.
    pub fn op_time(&self, is_read: bool, bytes: u64) -> SimTime {
        let chunks = bytes.div_ceil(self.chunk).max(1);
        let client = self.fs_cpu.phi_fs_time(bytes.div_ceil(4096)) / 2
            + self.per_rpc * chunks
            + transfer_time(bytes, self.wire_bw);
        let server = self
            .nvme
            .vectored_batch_time(is_read, chunks, bytes / chunks)
            + self.fs_cpu.host_fs_time(bytes.div_ceil(4096));
        let commit = if is_read { SimTime::ZERO } else { self.commit };
        client + server + commit
    }

    /// Aggregate steady-state throughput.
    pub fn steady_throughput(&self, is_read: bool, threads: usize, bytes: u64) -> f64 {
        let per_thread = bytes as f64 / self.op_time(is_read, bytes).as_secs_f64();
        // The single NFS transport connection caps aggregate throughput.
        (per_thread * threads as f64).min(self.wire_bw * 0.55)
    }

    /// Reply-side publish/interrupt events per completed request: every
    /// RPC round trip delivers its own reply (and a write adds a COMMIT
    /// round trip), so like the virtio relay the NFS path pays at least
    /// one completion notification per op — there is no reply wave to
    /// amortize.
    pub fn reply_publishes_per_op(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtio_read_ceiling_near_02_gbs() {
        let v = VirtioPerf::paper_default();
        let t = v.steady_throughput(true, 61, 4 << 20);
        assert!(
            (0.15e9..=0.25e9).contains(&t),
            "virtio read ceiling {t} (Figure 11c shows ~0.2 GB/s)"
        );
    }

    #[test]
    fn virtio_write_ceiling_below_reads() {
        let v = VirtioPerf::paper_default();
        let w = v.steady_throughput(false, 61, 4 << 20);
        let r = v.steady_throughput(true, 61, 4 << 20);
        assert!(w <= r, "writes no faster than reads");
        assert!(w < 0.25e9, "Figure 12c: well under 0.1-0.2 GB/s; got {w}");
    }

    #[test]
    fn virtio_breakdown_matches_figure_13a() {
        let v = VirtioPerf::paper_default();
        let (fs, transport, storage) = v.breakdown(true, 512 * 1024);
        // FS component ~1.2 ms; transport dominates; storage sub-ms.
        assert!(
            (0.8..=1.6).contains(&fs.as_ms_f64()),
            "fs {fs} (paper ~1.2ms)"
        );
        assert!(transport > fs * 2, "transport dominates: {transport}");
        assert!(storage < SimTime::from_ms(1), "storage {storage}");
        let total = fs + transport + storage;
        assert!(
            (4.0..=9.0).contains(&total.as_ms_f64()),
            "total {total} (paper ~6.5ms)"
        );
    }

    #[test]
    fn nfs_is_slow_and_writes_hurt_more() {
        let n = NfsPerf::paper_default();
        let r = n.steady_throughput(true, 61, 4 << 20);
        assert!(r < 0.25e9, "Figure 11d: NFS reads ~0.2 GB/s; got {r}");
        let w1 = n.op_time(false, 64 * 1024);
        let r1 = n.op_time(true, 64 * 1024);
        assert!(w1 > r1, "COMMIT penalizes writes");
    }

    #[test]
    fn host_centric_stacks_cannot_coalesce_replies() {
        // One completion notification per request, at any queue depth —
        // the reply-side figure E8 contrasts with Solros's batched
        // settlement (≤ 0.1 publishes/op at QD32).
        assert_eq!(VirtioPerf::paper_default().reply_publishes_per_op(), 1.0);
        assert_eq!(NfsPerf::paper_default().reply_publishes_per_op(), 1.0);
        let solros = solros_nvme::NvmePerf::paper_default();
        assert!(
            (solros.reply_publishes(32, true) as f64) / 32.0
                < VirtioPerf::paper_default().reply_publishes_per_op()
        );
    }

    #[test]
    fn stub_is_5x_cheaper_than_phi_fs() {
        let c = PhiFsCpu::paper_default();
        let pages = (512 * 1024u64).div_ceil(4096);
        let full = c.phi_fs_time(pages);
        let stub = c.stub_time(pages);
        let ratio = full.as_secs_f64() / stub.as_secs_f64();
        assert!(
            (4.0..=7.0).contains(&ratio),
            "stub ratio {ratio} (paper 5x)"
        );
    }
}
