//! The Phi-virtio baseline (co-processor-centric, §3 / §6.1.2).
//!
//! The stock Xeon Phi runs ext4 over a `virtblk` virtual block device: an
//! SCIF kernel module on the host relays each block request to the NVMe
//! SSD and CPU-copies the data between host and Phi memory — no P2P, one
//! relay round trip and one interrupt per request. Functionally the file
//! system behaves identically (it is the same file-system code); what
//! differs is the data path, which this wrapper makes observable through
//! [`VirtioStats`] and chargeable through [`crate::perf::VirtioPerf`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use solros_fs::{FileSystem, OpenFlags};
use solros_proto::rpc_error::RpcErr;

use crate::filestore::{map_fs_err, FileStore};

/// Virtio relay statistics.
#[derive(Debug, Default)]
pub struct VirtioStats {
    /// Block-layer requests relayed through the host.
    pub requests: AtomicU64,
    /// Bytes CPU-copied across PCIe by the relay.
    pub bytes_copied: AtomicU64,
    /// Interrupts delivered to the Phi (one per request).
    pub interrupts: AtomicU64,
}

/// The co-processor-centric file system over a relayed block device.
pub struct VirtioFs {
    fs: Arc<FileSystem>,
    stats: Arc<VirtioStats>,
    /// Largest block-layer request the virtio ring carries (128 KiB).
    max_request: usize,
}

impl VirtioFs {
    /// Wraps a (Phi-resident, conceptually) file system.
    pub fn new(fs: Arc<FileSystem>) -> Self {
        Self {
            fs,
            stats: Arc::new(VirtioStats::default()),
            max_request: 128 * 1024,
        }
    }

    /// Relay statistics.
    pub fn stats(&self) -> &Arc<VirtioStats> {
        &self.stats
    }

    fn account(&self, bytes: usize) {
        // Each max_request-sized chunk is one vring request: one host
        // relay, one CPU copy, one interrupt back to the Phi.
        let reqs = bytes.div_ceil(self.max_request).max(1) as u64;
        self.stats.requests.fetch_add(reqs, Ordering::Relaxed);
        self.stats.interrupts.fetch_add(reqs, Ordering::Relaxed);
        self.stats
            .bytes_copied
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

impl FileStore for VirtioFs {
    fn create(&self, path: &str) -> Result<u64, RpcErr> {
        self.account(0);
        self.fs.create(path).map_err(map_fs_err)
    }

    fn open(&self, path: &str, create: bool) -> Result<(u64, u64), RpcErr> {
        self.account(0);
        let ino = self
            .fs
            .open(
                path,
                OpenFlags {
                    create,
                    ..Default::default()
                },
            )
            .map_err(map_fs_err)?;
        let size = self.fs.size_of(ino).map_err(map_fs_err)?;
        Ok((ino, size))
    }

    fn read_at(&self, handle: u64, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        let n = self.fs.read(handle, offset, buf).map_err(map_fs_err)?;
        self.account(n);
        Ok(n)
    }

    fn write_at(&self, handle: u64, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        let n = self.fs.write(handle, offset, data).map_err(map_fs_err)?;
        self.account(n);
        Ok(n)
    }

    fn size_of(&self, path: &str) -> Result<u64, RpcErr> {
        Ok(self.fs.stat(path).map_err(map_fs_err)?.size)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        self.fs.readdir(path).map_err(map_fs_err)
    }

    fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        self.fs.mkdir(path).map_err(map_fs_err).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_nvme::NvmeDevice;

    fn setup() -> VirtioFs {
        VirtioFs::new(Arc::new(
            FileSystem::mkfs(NvmeDevice::new(8192), 128).unwrap(),
        ))
    }

    #[test]
    fn functional_roundtrip() {
        let v = setup();
        v.mkdir("/d").unwrap();
        let ino = v.create("/d/f").unwrap();
        let data: Vec<u8> = (0..300_000).map(|i| (i % 251) as u8).collect();
        assert_eq!(v.write_at(ino, 0, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(v.read_at(ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
        assert_eq!(v.size_of("/d/f").unwrap(), data.len() as u64);
    }

    #[test]
    fn every_byte_is_cpu_copied_with_per_request_interrupts() {
        let v = setup();
        let ino = v.create("/f").unwrap();
        let data = vec![1u8; 512 * 1024];
        v.write_at(ino, 0, &data).unwrap();
        let s = v.stats();
        // 512 KiB at 128 KiB per vring request = 4 requests/interrupts.
        assert_eq!(s.requests.load(Ordering::Relaxed), 4 + 1 /* create */);
        assert_eq!(s.interrupts.load(Ordering::Relaxed), 5);
        assert_eq!(s.bytes_copied.load(Ordering::Relaxed), 512 * 1024);
        let mut out = vec![0u8; 512 * 1024];
        v.read_at(ino, 0, &mut out).unwrap();
        assert_eq!(s.bytes_copied.load(Ordering::Relaxed), 1024 * 1024);
    }
}
