//! The Phi-NFS baseline (§6.1.2).
//!
//! The stock Xeon Phi can mount the host's file system over NFS-on-PCIe.
//! The client chunks I/O at `rsize`/`wsize` (64 KiB), revalidates
//! attributes before reads (close-to-open consistency), and pays a full
//! RPC round trip per chunk — the protocol chattiness that keeps its
//! throughput far below the device's (Figures 11d/12d).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use solros_fs::{FileSystem, OpenFlags};
use solros_proto::rpc_error::RpcErr;

use crate::filestore::{map_fs_err, FileStore};

/// NFS protocol statistics.
#[derive(Debug, Default)]
pub struct NfsStats {
    /// READ RPCs issued.
    pub reads: AtomicU64,
    /// WRITE RPCs issued.
    pub writes: AtomicU64,
    /// GETATTR RPCs issued (attribute revalidation).
    pub getattrs: AtomicU64,
    /// Other RPCs (LOOKUP, CREATE, READDIR...).
    pub other: AtomicU64,
    /// Payload bytes carried over the transport.
    pub bytes_on_wire: AtomicU64,
}

/// The NFS client on the co-processor.
pub struct NfsClient {
    server_fs: Arc<FileSystem>,
    stats: Arc<NfsStats>,
    /// READ chunk size.
    pub rsize: usize,
    /// WRITE chunk size.
    pub wsize: usize,
}

impl NfsClient {
    /// Mounts the host's exported file system.
    pub fn new(server_fs: Arc<FileSystem>) -> Self {
        Self {
            server_fs,
            stats: Arc::new(NfsStats::default()),
            rsize: 64 * 1024,
            wsize: 64 * 1024,
        }
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &Arc<NfsStats> {
        &self.stats
    }
}

impl FileStore for NfsClient {
    fn create(&self, path: &str) -> Result<u64, RpcErr> {
        self.stats.other.fetch_add(2, Ordering::Relaxed); // LOOKUP + CREATE
        self.server_fs.create(path).map_err(map_fs_err)
    }

    fn open(&self, path: &str, create: bool) -> Result<(u64, u64), RpcErr> {
        self.stats.other.fetch_add(1, Ordering::Relaxed); // LOOKUP
        self.stats.getattrs.fetch_add(1, Ordering::Relaxed);
        let ino = self
            .server_fs
            .open(
                path,
                OpenFlags {
                    create,
                    ..Default::default()
                },
            )
            .map_err(map_fs_err)?;
        let size = self.server_fs.size_of(ino).map_err(map_fs_err)?;
        Ok((ino, size))
    }

    fn read_at(&self, handle: u64, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        // Close-to-open consistency: revalidate attributes per user read.
        self.stats.getattrs.fetch_add(1, Ordering::Relaxed);
        let mut done = 0;
        while done < buf.len() {
            let n = (buf.len() - done).min(self.rsize);
            let got = self
                .server_fs
                .read(handle, offset + done as u64, &mut buf[done..done + n])
                .map_err(map_fs_err)?;
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_on_wire
                .fetch_add(got as u64, Ordering::Relaxed);
            done += got;
            if got < n {
                break; // EOF
            }
        }
        Ok(done)
    }

    fn write_at(&self, handle: u64, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        let mut done = 0;
        while done < data.len() {
            let n = (data.len() - done).min(self.wsize);
            let put = self
                .server_fs
                .write(handle, offset + done as u64, &data[done..done + n])
                .map_err(map_fs_err)?;
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_on_wire
                .fetch_add(put as u64, Ordering::Relaxed);
            done += put;
        }
        // COMMIT for stable storage.
        self.stats.other.fetch_add(1, Ordering::Relaxed);
        Ok(done)
    }

    fn size_of(&self, path: &str) -> Result<u64, RpcErr> {
        self.stats.getattrs.fetch_add(1, Ordering::Relaxed);
        Ok(self.server_fs.stat(path).map_err(map_fs_err)?.size)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        self.stats.other.fetch_add(1, Ordering::Relaxed);
        self.server_fs.readdir(path).map_err(map_fs_err)
    }

    fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        self.stats.other.fetch_add(1, Ordering::Relaxed);
        self.server_fs.mkdir(path).map_err(map_fs_err).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_nvme::NvmeDevice;

    fn setup() -> NfsClient {
        NfsClient::new(Arc::new(
            FileSystem::mkfs(NvmeDevice::new(8192), 128).unwrap(),
        ))
    }

    #[test]
    fn functional_roundtrip() {
        let n = setup();
        let ino = n.create("/f").unwrap();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 241) as u8).collect();
        assert_eq!(n.write_at(ino, 0, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(n.read_at(ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn chunking_and_chattiness() {
        let n = setup();
        let ino = n.create("/f").unwrap();
        let data = vec![0u8; 256 * 1024];
        n.write_at(ino, 0, &data).unwrap();
        // 256 KiB at 64 KiB wsize = 4 WRITE RPCs + COMMIT.
        assert_eq!(n.stats().writes.load(Ordering::Relaxed), 4);
        let mut out = vec![0u8; 256 * 1024];
        n.read_at(ino, 0, &mut out).unwrap();
        assert_eq!(n.stats().reads.load(Ordering::Relaxed), 4);
        // Each user-level read pays a GETATTR revalidation.
        assert!(n.stats().getattrs.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            n.stats().bytes_on_wire.load(Ordering::Relaxed),
            2 * 256 * 1024
        );
    }

    #[test]
    fn short_read_at_eof_stops_chunking() {
        let n = setup();
        let ino = n.create("/f").unwrap();
        n.write_at(ino, 0, &vec![7u8; 10_000]).unwrap();
        let mut out = vec![0u8; 1 << 20];
        let got = n.read_at(ino, 0, &mut out).unwrap();
        assert_eq!(got, 10_000);
        // One READ RPC suffices (10 KB < rsize), not 16.
        assert_eq!(n.stats().reads.load(Ordering::Relaxed), 1);
    }
}
