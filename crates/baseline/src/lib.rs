#![warn(missing_docs)]

//! Baseline architectures the paper compares against.
//!
//! Three I/O paths from a co-processor to storage/network, besides Solros:
//!
//! * **Phi-virtio** (§6.1.2): the full file system runs *on* the Xeon Phi
//!   over a `virtblk` device; a host-side SCIF module relays block
//!   requests and CPU-copies every byte across PCIe, with an interrupt
//!   per request — [`virtio::VirtioFs`] (functional) +
//!   [`perf::VirtioPerf`] (timed).
//! * **Phi-NFS**: an NFS client on the Phi against the host's exported
//!   file system, chunked at `rsize`/`wsize` with chatty attribute
//!   revalidation — [`nfs::NfsClient`] + [`perf::NfsPerf`].
//! * **Host-centric** (§3, Figure 2a): a host application mediates: data
//!   is staged in host memory and copied again into co-processor memory,
//!   doubling PCIe usage — [`hostcentric::HostCentric`].
//!
//! The on-Phi TCP baseline is the `PhiLinux` stack kind of
//! [`solros_netdev::perf::NetPerf`]; functionally it uses the same fabric.
//!
//! [`filestore::FileStore`] is the uniform file API the example
//! applications are written against, implemented by Solros's data-plane
//! stub and by every baseline, so one application body runs on all stacks.

pub mod filestore;
pub mod hostcentric;
pub mod nfs;
pub mod perf;
pub mod virtio;

pub use filestore::FileStore;
pub use hostcentric::HostCentric;
pub use nfs::NfsClient;
pub use perf::{NfsPerf, PhiFsCpu, VirtioPerf};
pub use virtio::VirtioFs;
