//! File-system RPC messages (9P-flavoured, §5).
//!
//! `Read` and `Write` are the paper's extended `Tread`/`Twrite`: instead of
//! carrying file data, they carry the *address* of co-processor memory
//! (`buf_addr`, an offset into the co-processor's exported data window).
//! The proxy programs the NVMe DMA engine (or its own host DMA in buffered
//! mode) to move the data — the RPC ring only ever carries control
//! messages, which is the zero-copy property.

use crate::codec::{decode_frame, encode_frame, ProtoError, Reader, Writer};
use crate::rpc_error::RpcErr;

/// Requests sent by the data-plane FS stub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsRequest {
    /// Open (optionally create/truncate) a file.
    Open {
        /// Absolute path.
        path: String,
        /// Create if missing.
        create: bool,
        /// Truncate on open.
        truncate: bool,
        /// Force buffered I/O (the paper's `O_BUFFER`).
        buffered: bool,
    },
    /// Create a file.
    Create {
        /// Absolute path.
        path: String,
    },
    /// Extended Tread: read into co-processor memory at `buf_addr`.
    Read {
        /// Target inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        count: u64,
        /// Destination offset in the co-processor data window.
        buf_addr: u64,
    },
    /// Extended Twrite: write from co-processor memory at `buf_addr`.
    Write {
        /// Target inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        count: u64,
        /// Source offset in the co-processor data window.
        buf_addr: u64,
    },
    /// Stat by path.
    Stat {
        /// Absolute path.
        path: String,
    },
    /// Stat by inode.
    Fstat {
        /// Inode.
        ino: u64,
    },
    /// Unlink a file or empty directory.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// List a directory.
    Readdir {
        /// Absolute path.
        path: String,
    },
    /// Rename.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Truncate to a size.
    Truncate {
        /// Inode.
        ino: u64,
        /// New size.
        size: u64,
    },
    /// Flush metadata.
    Fsync {
        /// Inode.
        ino: u64,
    },
    /// Acquire an extent lease over a file range (the split data path):
    /// on success the stub reads/writes the range against the NVMe
    /// queues directly, with zero per-op RPCs.
    LeaseAcquire {
        /// Target inode.
        ino: u64,
        /// Byte offset of the requested range (block aligned).
        offset: u64,
        /// Byte length of the requested range.
        len: u64,
        /// True for a write (exclusive) lease, false for read (shared).
        write: bool,
    },
    /// Voluntarily release a lease, reporting how far leased writes
    /// extended the file.
    LeaseRelease {
        /// Lease id from the grant.
        id: u64,
        /// Highest byte offset written under the lease (0 if none).
        written_end: u64,
    },
    /// Acknowledge a recall: the holder has flushed in-flight leased
    /// writes and stopped using the mapping.
    LeaseRecallAck {
        /// Lease id from the grant.
        id: u64,
        /// Highest byte offset written under the lease (0 if none).
        written_end: u64,
    },
}

const T_OPEN: u8 = 10;
const T_CREATE: u8 = 11;
const T_READ: u8 = 12;
const T_WRITE: u8 = 13;
const T_STAT: u8 = 14;
const T_FSTAT: u8 = 15;
const T_UNLINK: u8 = 16;
const T_MKDIR: u8 = 17;
const T_READDIR: u8 = 18;
const T_RENAME: u8 = 19;
const T_TRUNCATE: u8 = 20;
const T_FSYNC: u8 = 21;
const T_LEASE_ACQ: u8 = 22;
const T_LEASE_REL: u8 = 23;
const T_LEASE_ACK: u8 = 24;

impl FsRequest {
    /// Encodes with a caller tag.
    pub fn encode(&self, tag: u32) -> Vec<u8> {
        let (ty, body) = match self {
            FsRequest::Open {
                path,
                create,
                truncate,
                buffered,
            } => (
                T_OPEN,
                Writer::new()
                    .string(path)
                    .u8(*create as u8)
                    .u8(*truncate as u8)
                    .u8(*buffered as u8)
                    .build(),
            ),
            FsRequest::Create { path } => (T_CREATE, Writer::new().string(path).build()),
            FsRequest::Read {
                ino,
                offset,
                count,
                buf_addr,
            } => (
                T_READ,
                Writer::new()
                    .u64(*ino)
                    .u64(*offset)
                    .u64(*count)
                    .u64(*buf_addr)
                    .build(),
            ),
            FsRequest::Write {
                ino,
                offset,
                count,
                buf_addr,
            } => (
                T_WRITE,
                Writer::new()
                    .u64(*ino)
                    .u64(*offset)
                    .u64(*count)
                    .u64(*buf_addr)
                    .build(),
            ),
            FsRequest::Stat { path } => (T_STAT, Writer::new().string(path).build()),
            FsRequest::Fstat { ino } => (T_FSTAT, Writer::new().u64(*ino).build()),
            FsRequest::Unlink { path } => (T_UNLINK, Writer::new().string(path).build()),
            FsRequest::Mkdir { path } => (T_MKDIR, Writer::new().string(path).build()),
            FsRequest::Readdir { path } => (T_READDIR, Writer::new().string(path).build()),
            FsRequest::Rename { from, to } => {
                (T_RENAME, Writer::new().string(from).string(to).build())
            }
            FsRequest::Truncate { ino, size } => {
                (T_TRUNCATE, Writer::new().u64(*ino).u64(*size).build())
            }
            FsRequest::Fsync { ino } => (T_FSYNC, Writer::new().u64(*ino).build()),
            FsRequest::LeaseAcquire {
                ino,
                offset,
                len,
                write,
            } => (
                T_LEASE_ACQ,
                Writer::new()
                    .u64(*ino)
                    .u64(*offset)
                    .u64(*len)
                    .u8(*write as u8)
                    .build(),
            ),
            FsRequest::LeaseRelease { id, written_end } => (
                T_LEASE_REL,
                Writer::new().u64(*id).u64(*written_end).build(),
            ),
            FsRequest::LeaseRecallAck { id, written_end } => (
                T_LEASE_ACK,
                Writer::new().u64(*id).u64(*written_end).build(),
            ),
        };
        encode_frame(ty, tag, &body)
    }

    /// Decodes a request frame, returning `(tag, request)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, FsRequest), ProtoError> {
        let f = decode_frame(buf)?;
        Ok((f.tag, Self::from_frame(&f)?))
    }

    /// Decodes the request body of an already-parsed frame, so admission
    /// paths that need the header metadata parse each frame exactly once.
    pub fn from_frame(f: &crate::codec::Frame<'_>) -> Result<FsRequest, ProtoError> {
        let mut r = Reader::new(f.body);
        let req = match f.msg_type {
            T_OPEN => {
                let path = r.string()?;
                let create = r.u8()? != 0;
                let truncate = r.u8()? != 0;
                let buffered = r.u8()? != 0;
                FsRequest::Open {
                    path,
                    create,
                    truncate,
                    buffered,
                }
            }
            T_CREATE => FsRequest::Create { path: r.string()? },
            T_READ => FsRequest::Read {
                ino: r.u64()?,
                offset: r.u64()?,
                count: r.u64()?,
                buf_addr: r.u64()?,
            },
            T_WRITE => FsRequest::Write {
                ino: r.u64()?,
                offset: r.u64()?,
                count: r.u64()?,
                buf_addr: r.u64()?,
            },
            T_STAT => FsRequest::Stat { path: r.string()? },
            T_FSTAT => FsRequest::Fstat { ino: r.u64()? },
            T_UNLINK => FsRequest::Unlink { path: r.string()? },
            T_MKDIR => FsRequest::Mkdir { path: r.string()? },
            T_READDIR => FsRequest::Readdir { path: r.string()? },
            T_RENAME => FsRequest::Rename {
                from: r.string()?,
                to: r.string()?,
            },
            T_TRUNCATE => FsRequest::Truncate {
                ino: r.u64()?,
                size: r.u64()?,
            },
            T_FSYNC => FsRequest::Fsync { ino: r.u64()? },
            T_LEASE_ACQ => FsRequest::LeaseAcquire {
                ino: r.u64()?,
                offset: r.u64()?,
                len: r.u64()?,
                write: r.u8()? != 0,
            },
            T_LEASE_REL => FsRequest::LeaseRelease {
                id: r.u64()?,
                written_end: r.u64()?,
            },
            T_LEASE_ACK => FsRequest::LeaseRecallAck {
                id: r.u64()?,
                written_end: r.u64()?,
            },
            _ => return Err(ProtoError::BadType),
        };
        r.finish()?;
        Ok(req)
    }
}

/// Replies sent by the control-plane FS proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsResponse {
    /// Open succeeded.
    Open {
        /// Inode.
        ino: u64,
        /// Current size.
        size: u64,
    },
    /// Create succeeded.
    Create {
        /// Inode.
        ino: u64,
    },
    /// Read completed; data already placed in co-processor memory.
    Read {
        /// Bytes actually read.
        count: u64,
    },
    /// Write completed.
    Write {
        /// Bytes written.
        count: u64,
    },
    /// Stat result.
    Stat {
        /// Inode.
        ino: u64,
        /// Directory flag.
        is_dir: bool,
        /// Size in bytes.
        size: u64,
    },
    /// Directory listing.
    Readdir {
        /// Sorted entry names.
        names: Vec<String>,
    },
    /// Generic success (unlink/mkdir/rename/truncate/fsync).
    Ok,
    /// Mkdir success with inode.
    Mkdir {
        /// Inode.
        ino: u64,
    },
    /// Lease granted: the pre-resolved NVMe extents covering the range,
    /// stamped with the generation the stub must check on every leased op.
    LeaseGrant {
        /// Lease id (echoed on release/recall-ack).
        id: u64,
        /// Generation at grant; a mismatch on the stub's mapped control
        /// page means the mapping is stale and must not be used.
        generation: u64,
        /// Readable end of the file at grant time (byte offset).
        data_end: u64,
        /// Extents as `(start_lba, block_count)` pairs, in range order.
        extents: Vec<(u64, u32)>,
    },
    /// Failure.
    Error {
        /// Error code.
        err: RpcErr,
    },
}

const R_OPEN: u8 = 110;
const R_CREATE: u8 = 111;
const R_READ: u8 = 112;
const R_WRITE: u8 = 113;
const R_STAT: u8 = 114;
const R_READDIR: u8 = 118;
const R_OK: u8 = 120;
const R_MKDIR: u8 = 117;
const R_LEASE: u8 = 121;
const R_ERROR: u8 = 127;

impl FsResponse {
    /// Encodes with the echoed tag.
    pub fn encode(&self, tag: u32) -> Vec<u8> {
        let (ty, body) = match self {
            FsResponse::Open { ino, size } => (R_OPEN, Writer::new().u64(*ino).u64(*size).build()),
            FsResponse::Create { ino } => (R_CREATE, Writer::new().u64(*ino).build()),
            FsResponse::Read { count } => (R_READ, Writer::new().u64(*count).build()),
            FsResponse::Write { count } => (R_WRITE, Writer::new().u64(*count).build()),
            FsResponse::Stat { ino, is_dir, size } => (
                R_STAT,
                Writer::new().u64(*ino).u8(*is_dir as u8).u64(*size).build(),
            ),
            FsResponse::Readdir { names } => {
                let mut w = Writer::new().u32(names.len() as u32);
                for n in names {
                    w = w.string(n);
                }
                (R_READDIR, w.build())
            }
            FsResponse::Ok => (R_OK, Vec::new()),
            FsResponse::Mkdir { ino } => (R_MKDIR, Writer::new().u64(*ino).build()),
            FsResponse::LeaseGrant {
                id,
                generation,
                data_end,
                extents,
            } => {
                let mut w = Writer::new()
                    .u64(*id)
                    .u64(*generation)
                    .u64(*data_end)
                    .u32(extents.len() as u32);
                for (start, blocks) in extents {
                    w = w.u64(*start).u32(*blocks);
                }
                (R_LEASE, w.build())
            }
            FsResponse::Error { err } => (R_ERROR, Writer::new().u32(err.code()).build()),
        };
        encode_frame(ty, tag, &body)
    }

    /// Decodes a reply frame, returning `(tag, response)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, FsResponse), ProtoError> {
        let f = decode_frame(buf)?;
        let mut r = Reader::new(f.body);
        let resp = match f.msg_type {
            R_OPEN => FsResponse::Open {
                ino: r.u64()?,
                size: r.u64()?,
            },
            R_CREATE => FsResponse::Create { ino: r.u64()? },
            R_READ => FsResponse::Read { count: r.u64()? },
            R_WRITE => FsResponse::Write { count: r.u64()? },
            R_STAT => FsResponse::Stat {
                ino: r.u64()?,
                is_dir: r.u8()? != 0,
                size: r.u64()?,
            },
            R_READDIR => {
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(ProtoError::Malformed);
                }
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(r.string()?);
                }
                FsResponse::Readdir { names }
            }
            R_OK => FsResponse::Ok,
            R_MKDIR => FsResponse::Mkdir { ino: r.u64()? },
            R_LEASE => {
                let id = r.u64()?;
                let generation = r.u64()?;
                let data_end = r.u64()?;
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(ProtoError::Malformed);
                }
                let mut extents = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    extents.push((r.u64()?, r.u32()?));
                }
                FsResponse::LeaseGrant {
                    id,
                    generation,
                    data_end,
                    extents,
                }
            }
            R_ERROR => FsResponse::Error {
                err: RpcErr::from_code(r.u32()?).ok_or(ProtoError::Malformed)?,
            },
            _ => return Err(ProtoError::BadType),
        };
        r.finish()?;
        Ok((f.tag, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_roundtrip(req: FsRequest) {
        let buf = req.encode(42);
        let (tag, got) = FsRequest::decode(&buf).unwrap();
        assert_eq!(tag, 42);
        assert_eq!(got, req);
    }

    fn resp_roundtrip(resp: FsResponse) {
        let buf = resp.encode(7);
        let (tag, got) = FsResponse::decode(&buf).unwrap();
        assert_eq!(tag, 7);
        assert_eq!(got, resp);
    }

    #[test]
    fn all_requests_roundtrip() {
        req_roundtrip(FsRequest::Open {
            path: "/a/b".into(),
            create: true,
            truncate: false,
            buffered: true,
        });
        req_roundtrip(FsRequest::Create { path: "/x".into() });
        req_roundtrip(FsRequest::Read {
            ino: 3,
            offset: 1 << 33,
            count: 4096,
            buf_addr: 64,
        });
        req_roundtrip(FsRequest::Write {
            ino: 3,
            offset: 0,
            count: 1,
            buf_addr: 1 << 20,
        });
        req_roundtrip(FsRequest::Stat { path: "/s".into() });
        req_roundtrip(FsRequest::Fstat { ino: 9 });
        req_roundtrip(FsRequest::Unlink { path: "/u".into() });
        req_roundtrip(FsRequest::Mkdir { path: "/d".into() });
        req_roundtrip(FsRequest::Readdir { path: "/".into() });
        req_roundtrip(FsRequest::Rename {
            from: "/a".into(),
            to: "/b".into(),
        });
        req_roundtrip(FsRequest::Truncate { ino: 1, size: 0 });
        req_roundtrip(FsRequest::Fsync { ino: 2 });
        req_roundtrip(FsRequest::LeaseAcquire {
            ino: 5,
            offset: 8192,
            len: 1 << 20,
            write: true,
        });
        req_roundtrip(FsRequest::LeaseRelease {
            id: 77,
            written_end: 4096,
        });
        req_roundtrip(FsRequest::LeaseRecallAck {
            id: 78,
            written_end: 0,
        });
    }

    #[test]
    fn all_responses_roundtrip() {
        resp_roundtrip(FsResponse::Open { ino: 1, size: 2 });
        resp_roundtrip(FsResponse::Create { ino: 3 });
        resp_roundtrip(FsResponse::Read { count: 512 });
        resp_roundtrip(FsResponse::Write { count: 512 });
        resp_roundtrip(FsResponse::Stat {
            ino: 4,
            is_dir: true,
            size: 0,
        });
        resp_roundtrip(FsResponse::Readdir {
            names: vec!["a".into(), "bb".into()],
        });
        resp_roundtrip(FsResponse::Readdir { names: vec![] });
        resp_roundtrip(FsResponse::Ok);
        resp_roundtrip(FsResponse::Mkdir { ino: 5 });
        resp_roundtrip(FsResponse::LeaseGrant {
            id: 9,
            generation: 3,
            data_end: 123_456,
            extents: vec![(100, 32), (4000, 1)],
        });
        resp_roundtrip(FsResponse::LeaseGrant {
            id: 10,
            generation: 1,
            data_end: 0,
            extents: vec![],
        });
        for err in RpcErr::all() {
            resp_roundtrip(FsResponse::Error { err });
        }
    }

    #[test]
    fn bad_type_rejected() {
        let buf = encode_frame(200, 0, &[]);
        assert_eq!(FsRequest::decode(&buf), Err(ProtoError::BadType));
        let buf = encode_frame(5, 0, &[]);
        assert_eq!(FsResponse::decode(&buf), Err(ProtoError::BadType));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = FsRequest::Fsync { ino: 1 }.encode(0);
        // Grow the body and fix the length prefix.
        buf.push(0);
        let n = (buf.len() - crate::codec::HEADER_LEN) as u32;
        buf[0..4].copy_from_slice(&n.to_le_bytes());
        assert_eq!(FsRequest::decode(&buf), Err(ProtoError::Malformed));
    }
}
