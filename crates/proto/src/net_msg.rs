//! Network RPC messages and events (§4.4, §5).
//!
//! The paper defines ten RPC messages with a one-to-one mapping to socket
//! system calls, and two event messages for the inbound channel: a new
//! connection (for `accept`) and data arrival (for `recv`). Outbound data
//! rides in the `Send` element itself (the outbound ring master is at the
//! co-processor so host DMA engines pull it, §4.4.1); inbound data rides
//! in the event element (the inbound ring master is at the host so
//! co-processor DMA engines pull it).

use crate::codec::{decode_frame, encode_frame, ProtoError, Reader, Writer};
use crate::rpc_error::RpcErr;

/// Socket identifier assigned by the proxy.
pub type SockId = u64;

/// Requests sent by the data-plane TCP stub (the ten socket RPCs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRequest {
    /// Create a socket.
    Socket,
    /// Bind to a port.
    Bind {
        /// Socket.
        sock: SockId,
        /// TCP port.
        port: u16,
    },
    /// Start listening. A listening socket may be *shared*: multiple
    /// co-processors listening on the same port (§4.4.3).
    Listen {
        /// Socket.
        sock: SockId,
        /// Backlog hint.
        backlog: u32,
    },
    /// Accept a pending connection (normally driven by events).
    Accept {
        /// Listening socket.
        sock: SockId,
    },
    /// Connect to a remote address.
    Connect {
        /// Socket.
        sock: SockId,
        /// Remote host id.
        addr: u64,
        /// Remote port.
        port: u16,
    },
    /// Send data (payload inline; host DMA pulls it from the outbound
    /// ring).
    Send {
        /// Socket.
        sock: SockId,
        /// Payload.
        data: Vec<u8>,
    },
    /// Poll for received data (normally driven by events).
    Recv {
        /// Socket.
        sock: SockId,
        /// Max bytes.
        max: u32,
    },
    /// Close a socket.
    Close {
        /// Socket.
        sock: SockId,
    },
    /// Set a socket option.
    Setsockopt {
        /// Socket.
        sock: SockId,
        /// Option code.
        opt: u32,
        /// Option value.
        val: u64,
    },
    /// Shut down one or both directions.
    Shutdown {
        /// Socket.
        sock: SockId,
        /// 0 = read, 1 = write, 2 = both.
        how: u8,
    },
}

const T_SOCKET: u8 = 40;
const T_BIND: u8 = 41;
const T_LISTEN: u8 = 42;
const T_ACCEPT: u8 = 43;
const T_CONNECT: u8 = 44;
const T_SEND: u8 = 45;
const T_RECV: u8 = 46;
const T_CLOSE: u8 = 47;
const T_SETSOCKOPT: u8 = 48;
const T_SHUTDOWN: u8 = 49;

impl NetRequest {
    /// Encodes with a caller tag.
    pub fn encode(&self, tag: u32) -> Vec<u8> {
        let (ty, body) = match self {
            NetRequest::Socket => (T_SOCKET, Vec::new()),
            NetRequest::Bind { sock, port } => {
                (T_BIND, Writer::new().u64(*sock).u32(*port as u32).build())
            }
            NetRequest::Listen { sock, backlog } => {
                (T_LISTEN, Writer::new().u64(*sock).u32(*backlog).build())
            }
            NetRequest::Accept { sock } => (T_ACCEPT, Writer::new().u64(*sock).build()),
            NetRequest::Connect { sock, addr, port } => (
                T_CONNECT,
                Writer::new()
                    .u64(*sock)
                    .u64(*addr)
                    .u32(*port as u32)
                    .build(),
            ),
            NetRequest::Send { sock, data } => {
                (T_SEND, Writer::new().u64(*sock).bytes(data).build())
            }
            NetRequest::Recv { sock, max } => (T_RECV, Writer::new().u64(*sock).u32(*max).build()),
            NetRequest::Close { sock } => (T_CLOSE, Writer::new().u64(*sock).build()),
            NetRequest::Setsockopt { sock, opt, val } => (
                T_SETSOCKOPT,
                Writer::new().u64(*sock).u32(*opt).u64(*val).build(),
            ),
            NetRequest::Shutdown { sock, how } => {
                (T_SHUTDOWN, Writer::new().u64(*sock).u8(*how).build())
            }
        };
        encode_frame(ty, tag, &body)
    }

    /// Decodes a request frame, returning `(tag, request)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, NetRequest), ProtoError> {
        let f = decode_frame(buf)?;
        Ok((f.tag, Self::from_frame(&f)?))
    }

    /// Decodes the request body of an already-parsed frame, so admission
    /// paths that need the header metadata parse each frame exactly once.
    pub fn from_frame(f: &crate::codec::Frame<'_>) -> Result<NetRequest, ProtoError> {
        let mut r = Reader::new(f.body);
        let req = match f.msg_type {
            T_SOCKET => NetRequest::Socket,
            T_BIND => NetRequest::Bind {
                sock: r.u64()?,
                port: r.u32()? as u16,
            },
            T_LISTEN => NetRequest::Listen {
                sock: r.u64()?,
                backlog: r.u32()?,
            },
            T_ACCEPT => NetRequest::Accept { sock: r.u64()? },
            T_CONNECT => NetRequest::Connect {
                sock: r.u64()?,
                addr: r.u64()?,
                port: r.u32()? as u16,
            },
            T_SEND => NetRequest::Send {
                sock: r.u64()?,
                data: r.bytes()?,
            },
            T_RECV => NetRequest::Recv {
                sock: r.u64()?,
                max: r.u32()?,
            },
            T_CLOSE => NetRequest::Close { sock: r.u64()? },
            T_SETSOCKOPT => NetRequest::Setsockopt {
                sock: r.u64()?,
                opt: r.u32()?,
                val: r.u64()?,
            },
            T_SHUTDOWN => NetRequest::Shutdown {
                sock: r.u64()?,
                how: r.u8()?,
            },
            _ => return Err(ProtoError::BadType),
        };
        r.finish()?;
        Ok(req)
    }
}

/// Replies from the TCP proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetResponse {
    /// Socket created.
    Socket {
        /// New socket id.
        sock: SockId,
    },
    /// Connection accepted (RPC path).
    Accepted {
        /// New connection socket.
        conn: SockId,
        /// Remote host id.
        peer_addr: u64,
    },
    /// Data sent.
    Sent {
        /// Bytes accepted by the stack.
        count: u64,
    },
    /// Data received (RPC poll path).
    Data {
        /// Payload.
        data: Vec<u8>,
    },
    /// Generic success.
    Ok,
    /// Failure.
    Error {
        /// Error code.
        err: RpcErr,
    },
}

const R_SOCKET: u8 = 140;
const R_ACCEPTED: u8 = 143;
const R_SENT: u8 = 145;
const R_DATA: u8 = 146;
const R_NOK: u8 = 150;
const R_NERROR: u8 = 157;

impl NetResponse {
    /// Encodes with the echoed tag.
    pub fn encode(&self, tag: u32) -> Vec<u8> {
        let (ty, body) = match self {
            NetResponse::Socket { sock } => (R_SOCKET, Writer::new().u64(*sock).build()),
            NetResponse::Accepted { conn, peer_addr } => {
                (R_ACCEPTED, Writer::new().u64(*conn).u64(*peer_addr).build())
            }
            NetResponse::Sent { count } => (R_SENT, Writer::new().u64(*count).build()),
            NetResponse::Data { data } => (R_DATA, Writer::new().bytes(data).build()),
            NetResponse::Ok => (R_NOK, Vec::new()),
            NetResponse::Error { err } => (R_NERROR, Writer::new().u32(err.code()).build()),
        };
        encode_frame(ty, tag, &body)
    }

    /// Decodes a reply frame, returning `(tag, response)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, NetResponse), ProtoError> {
        let f = decode_frame(buf)?;
        let mut r = Reader::new(f.body);
        let resp = match f.msg_type {
            R_SOCKET => NetResponse::Socket { sock: r.u64()? },
            R_ACCEPTED => NetResponse::Accepted {
                conn: r.u64()?,
                peer_addr: r.u64()?,
            },
            R_SENT => NetResponse::Sent { count: r.u64()? },
            R_DATA => NetResponse::Data { data: r.bytes()? },
            R_NOK => NetResponse::Ok,
            R_NERROR => NetResponse::Error {
                err: RpcErr::from_code(r.u32()?).ok_or(ProtoError::Malformed)?,
            },
            _ => return Err(ProtoError::BadType),
        };
        r.finish()?;
        Ok((f.tag, resp))
    }
}

/// Inbound events delivered on the event channel (§4.4.2). Tag is unused
/// (events are unsolicited); the dispatcher routes by socket id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A new client connected to a listening socket.
    Accepted {
        /// The listening socket.
        listen: SockId,
        /// The new connection socket.
        conn: SockId,
        /// Remote host id.
        peer_addr: u64,
    },
    /// Data arrived on a connection; the payload rides in the inbound
    /// ring element itself.
    Data {
        /// Connection socket.
        sock: SockId,
        /// Payload.
        data: Vec<u8>,
    },
    /// The remote side closed the connection.
    Closed {
        /// Connection socket.
        sock: SockId,
    },
}

const E_ACCEPTED: u8 = 200;
const E_DATA: u8 = 201;
const E_CLOSED: u8 = 202;

impl NetEvent {
    /// Encodes the event.
    pub fn encode(&self) -> Vec<u8> {
        let (ty, body) = match self {
            NetEvent::Accepted {
                listen,
                conn,
                peer_addr,
            } => (
                E_ACCEPTED,
                Writer::new()
                    .u64(*listen)
                    .u64(*conn)
                    .u64(*peer_addr)
                    .build(),
            ),
            NetEvent::Data { sock, data } => (E_DATA, Writer::new().u64(*sock).bytes(data).build()),
            NetEvent::Closed { sock } => (E_CLOSED, Writer::new().u64(*sock).build()),
        };
        encode_frame(ty, 0, &body)
    }

    /// Decodes an event frame.
    pub fn decode(buf: &[u8]) -> Result<NetEvent, ProtoError> {
        let f = decode_frame(buf)?;
        let mut r = Reader::new(f.body);
        let ev = match f.msg_type {
            E_ACCEPTED => NetEvent::Accepted {
                listen: r.u64()?,
                conn: r.u64()?,
                peer_addr: r.u64()?,
            },
            E_DATA => NetEvent::Data {
                sock: r.u64()?,
                data: r.bytes()?,
            },
            E_CLOSED => NetEvent::Closed { sock: r.u64()? },
            _ => return Err(ProtoError::BadType),
        };
        r.finish()?;
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_requests_roundtrip() {
        let reqs = vec![
            NetRequest::Socket,
            NetRequest::Bind {
                sock: 1,
                port: 8080,
            },
            NetRequest::Listen {
                sock: 1,
                backlog: 128,
            },
            NetRequest::Accept { sock: 1 },
            NetRequest::Connect {
                sock: 2,
                addr: 0xC0A80001,
                port: 80,
            },
            NetRequest::Send {
                sock: 2,
                data: vec![1, 2, 3],
            },
            NetRequest::Recv {
                sock: 2,
                max: 65536,
            },
            NetRequest::Close { sock: 2 },
            NetRequest::Setsockopt {
                sock: 1,
                opt: 7,
                val: 1,
            },
            NetRequest::Shutdown { sock: 2, how: 2 },
        ];
        assert_eq!(reqs.len(), 10, "the paper defines exactly ten socket RPCs");
        for (i, req) in reqs.into_iter().enumerate() {
            let buf = req.encode(i as u32);
            let (tag, got) = NetRequest::decode(&buf).unwrap();
            assert_eq!(tag, i as u32);
            assert_eq!(got, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            NetResponse::Socket { sock: 9 },
            NetResponse::Accepted {
                conn: 10,
                peer_addr: 1,
            },
            NetResponse::Sent { count: 4096 },
            NetResponse::Data { data: vec![0; 64] },
            NetResponse::Ok,
            NetResponse::Error {
                err: RpcErr::ConnRefused,
            },
        ] {
            let buf = resp.encode(3);
            let (tag, got) = NetResponse::decode(&buf).unwrap();
            assert_eq!(tag, 3);
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn events_roundtrip() {
        for ev in [
            NetEvent::Accepted {
                listen: 1,
                conn: 5,
                peer_addr: 77,
            },
            NetEvent::Data {
                sock: 5,
                data: b"ping".to_vec(),
            },
            NetEvent::Data {
                sock: 5,
                data: vec![],
            },
            NetEvent::Closed { sock: 5 },
        ] {
            let buf = ev.encode();
            assert_eq!(NetEvent::decode(&buf).unwrap(), ev);
        }
    }

    #[test]
    fn cross_family_frames_rejected() {
        let fsreq = crate::fs_msg::FsRequest::Fsync { ino: 1 }.encode(0);
        assert_eq!(NetRequest::decode(&fsreq), Err(ProtoError::BadType));
        let netreq = NetRequest::Socket.encode(0);
        assert_eq!(NetEvent::decode(&netreq), Err(ProtoError::BadType));
    }
}
