//! RPC-level error codes carried in `Rerror`-style replies.

use std::fmt;

/// Errors a proxy can return to a stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcErr {
    /// No such file, directory, socket, or connection.
    NotFound,
    /// Already exists.
    Exists,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Device or table exhausted.
    NoSpace,
    /// Object too large.
    TooLarge,
    /// Malformed path or argument.
    Invalid,
    /// Underlying device I/O failure.
    Io,
    /// Operation would block; retry.
    WouldBlock,
    /// Connection refused by the remote end.
    ConnRefused,
    /// Socket is not connected.
    NotConnected,
    /// Socket is not listening.
    NotListening,
    /// Connection reset.
    Reset,
    /// Address/port already bound.
    AddrInUse,
    /// Proxy shed the request under overload; back off and retry (EAGAIN).
    Overloaded,
    /// The request's deadline expired before a reply arrived.
    Timeout,
    /// The peer (proxy or stub) died or the link was reset; the request
    /// was drained with no result and must not be retried blindly.
    Gone,
}

impl RpcErr {
    /// Wire encoding.
    pub fn code(self) -> u32 {
        match self {
            RpcErr::NotFound => 1,
            RpcErr::Exists => 2,
            RpcErr::NotDir => 3,
            RpcErr::IsDir => 4,
            RpcErr::NotEmpty => 5,
            RpcErr::NoSpace => 6,
            RpcErr::TooLarge => 7,
            RpcErr::Invalid => 8,
            RpcErr::Io => 9,
            RpcErr::WouldBlock => 10,
            RpcErr::ConnRefused => 11,
            RpcErr::NotConnected => 12,
            RpcErr::NotListening => 13,
            RpcErr::Reset => 14,
            RpcErr::AddrInUse => 15,
            RpcErr::Overloaded => 16,
            RpcErr::Timeout => 17,
            RpcErr::Gone => 18,
        }
    }

    /// Wire decoding.
    pub fn from_code(c: u32) -> Option<RpcErr> {
        Some(match c {
            1 => RpcErr::NotFound,
            2 => RpcErr::Exists,
            3 => RpcErr::NotDir,
            4 => RpcErr::IsDir,
            5 => RpcErr::NotEmpty,
            6 => RpcErr::NoSpace,
            7 => RpcErr::TooLarge,
            8 => RpcErr::Invalid,
            9 => RpcErr::Io,
            10 => RpcErr::WouldBlock,
            11 => RpcErr::ConnRefused,
            12 => RpcErr::NotConnected,
            13 => RpcErr::NotListening,
            14 => RpcErr::Reset,
            15 => RpcErr::AddrInUse,
            16 => RpcErr::Overloaded,
            17 => RpcErr::Timeout,
            18 => RpcErr::Gone,
            _ => return None,
        })
    }

    /// Every variant, for exhaustive round-trip tests.
    pub fn all() -> [RpcErr; 18] {
        [
            RpcErr::NotFound,
            RpcErr::Exists,
            RpcErr::NotDir,
            RpcErr::IsDir,
            RpcErr::NotEmpty,
            RpcErr::NoSpace,
            RpcErr::TooLarge,
            RpcErr::Invalid,
            RpcErr::Io,
            RpcErr::WouldBlock,
            RpcErr::ConnRefused,
            RpcErr::NotConnected,
            RpcErr::NotListening,
            RpcErr::Reset,
            RpcErr::AddrInUse,
            RpcErr::Overloaded,
            RpcErr::Timeout,
            RpcErr::Gone,
        ]
    }

    /// True for errors worth retrying after a backoff: the request was
    /// never executed (shed, full ring) or failed transiently.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            RpcErr::WouldBlock | RpcErr::Overloaded | RpcErr::Timeout
        )
    }
}

impl fmt::Display for RpcErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for RpcErr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for e in RpcErr::all() {
            assert_eq!(RpcErr::from_code(e.code()), Some(e));
        }
        assert_eq!(RpcErr::from_code(0), None);
        assert_eq!(RpcErr::from_code(999), None);
        // The recovery-path variants are on the wire too.
        assert_eq!(RpcErr::from_code(17), Some(RpcErr::Timeout));
        assert_eq!(RpcErr::from_code(18), Some(RpcErr::Gone));
    }

    #[test]
    fn transient_classification() {
        assert!(RpcErr::WouldBlock.is_transient());
        assert!(RpcErr::Overloaded.is_transient());
        assert!(RpcErr::Timeout.is_transient());
        assert!(!RpcErr::Gone.is_transient());
        assert!(!RpcErr::Io.is_transient());
        assert!(!RpcErr::Invalid.is_transient());
    }

    #[test]
    fn codes_unique() {
        let mut codes: Vec<u32> = RpcErr::all().iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RpcErr::all().len());
    }

    #[test]
    fn display_symbolic() {
        assert_eq!(RpcErr::NotFound.to_string(), "NotFound");
    }
}
