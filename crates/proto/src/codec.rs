//! Frame layout and encoding primitives.
//!
//! Every RPC message is one ring-buffer element:
//!
//! ```text
//! [u32 body_len][u8 msg_type][u32 tag][u8 credit][u8 flags][u8 tenant][body...]
//! ```
//!
//! The tag lets many co-processor threads share one request ring: the stub
//! assigns a fresh tag per call and the proxy echoes it in the reply.
//!
//! The credit byte carries QoS backpressure grants piggybacked on replies:
//! a proxy stamps how many new in-flight request slots the stub may use.
//! Requests and pre-QoS peers leave it zero, which grants nothing and is
//! ignored by receivers that do not participate in flow control.
//!
//! The flags byte marks submission-ordering constraints on requests
//! ([`FLAG_BARRIER`]); the tenant byte identifies the submitting tenant
//! for per-tenant QoS accounting. Both default to zero, which preserves
//! pre-pipeline behaviour bit-for-bit apart from the two header bytes.

use bytes::{Buf, BufMut, BytesMut};

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 1 + 1 + 1;

/// Byte offset of the credit field inside the header.
const CREDIT_OFFSET: usize = 9;

/// Byte offset of the flags field inside the header.
const FLAGS_OFFSET: usize = 10;

/// Byte offset of the tenant field inside the header.
const TENANT_OFFSET: usize = 11;

/// Flags-byte bit: this request is a barrier — the proxy must complete
/// every previously submitted request from this ring before executing it,
/// and must not start later requests until it completes.
pub const FLAG_BARRIER: u8 = 1 << 0;

/// Shift of the deadline-class nibble inside the flags byte.
///
/// Bits 4–7 of the flags byte carry a 4-bit *deadline class*: 0 means "no
/// deadline", class `k` (1–15) means the submitter expects a reply within
/// [`DEADLINE_BASE_US`]` << (k - 1)` microseconds. Packing the deadline
/// into the existing flags path keeps the wire format and header length
/// unchanged: peers that ignore deadlines see only a nonzero flags byte,
/// which they already pass through untouched.
pub const DEADLINE_SHIFT: u8 = 4;

/// Mask of the deadline-class nibble inside the flags byte.
pub const DEADLINE_MASK: u8 = 0xF0;

/// Deadline of class 1 in microseconds; each class doubles it.
pub const DEADLINE_BASE_US: u64 = 250;

/// Maps a requested deadline to the smallest class covering it (the
/// on-wire deadline rounds *up*, so a peer honoring the class never fires
/// earlier than the submitter asked). Durations beyond class 15
/// (~4.1 s) clamp to class 15; zero means "no deadline" (class 0).
pub fn deadline_class(deadline: std::time::Duration) -> u8 {
    let us = deadline.as_micros() as u64;
    if us == 0 {
        return 0;
    }
    let mut class = 1u8;
    let mut cover = DEADLINE_BASE_US;
    while cover < us && class < 15 {
        cover *= 2;
        class += 1;
    }
    class
}

/// Inverse of [`deadline_class`]: the duration a class encodes, or `None`
/// for class 0 / a flags byte with no deadline nibble set.
pub fn deadline_duration(class: u8) -> Option<std::time::Duration> {
    let class = class & 0xF;
    if class == 0 {
        None
    } else {
        Some(std::time::Duration::from_micros(
            DEADLINE_BASE_US << (class - 1),
        ))
    }
}

/// Extracts the deadline carried by a frame's flags byte, if any.
pub fn flags_deadline(flags: u8) -> Option<std::time::Duration> {
    deadline_duration(flags >> DEADLINE_SHIFT)
}

/// Packs a deadline class into a flags byte, preserving the low bits.
pub fn flags_with_deadline(flags: u8, class: u8) -> u8 {
    (flags & !DEADLINE_MASK) | ((class & 0xF) << DEADLINE_SHIFT)
}

/// Maximum accepted string length (paths, names) on the wire.
pub const MAX_STR: usize = 4096;

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame shorter than its header or declared body length.
    Truncated,
    /// Unknown message type byte.
    BadType,
    /// Malformed body (bad string, bad enum code, trailing bytes).
    Malformed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadType => write!(f, "unknown message type"),
            ProtoError::Malformed => write!(f, "malformed message body"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A decoded frame: type byte, tag, credit grant, submission flags,
/// tenant id, and body slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Message type discriminator.
    pub msg_type: u8,
    /// Caller-chosen tag echoed in the reply.
    pub tag: u32,
    /// QoS credit grant piggybacked on a reply (0 = none).
    pub credit: u8,
    /// Submission flags on a request ([`FLAG_BARRIER`]); 0 = unordered.
    pub flags: u8,
    /// Tenant id of the submitting data plane (0 = default tenant).
    pub tenant: u8,
    /// Message body.
    pub body: &'a [u8],
}

/// Encodes a frame with no credit grant, no flags, default tenant.
pub fn encode_frame(msg_type: u8, tag: u32, body: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_u32_le(body.len() as u32);
    out.put_u8(msg_type);
    out.put_u32_le(tag);
    out.put_u8(0);
    out.put_u8(0);
    out.put_u8(0);
    out.put_slice(body);
    out.to_vec()
}

/// Stamps a credit grant into an already-encoded frame, in place.
///
/// Proxies use this to piggyback backpressure grants on replies built by
/// the regular encode paths without re-serializing the body.
pub fn stamp_credit(frame: &mut [u8], credit: u8) {
    assert!(frame.len() >= HEADER_LEN, "not a frame");
    frame[CREDIT_OFFSET] = credit;
}

/// Stamps submission flags into an already-encoded frame, in place.
pub fn stamp_flags(frame: &mut [u8], flags: u8) {
    assert!(frame.len() >= HEADER_LEN, "not a frame");
    frame[FLAGS_OFFSET] = flags;
}

/// Stamps the tenant id into an already-encoded frame, in place.
pub fn stamp_tenant(frame: &mut [u8], tenant: u8) {
    assert!(frame.len() >= HEADER_LEN, "not a frame");
    frame[TENANT_OFFSET] = tenant;
}

/// Best-effort tag recovery from a frame whose header bytes are present
/// even if the rest fails validation. Malformed-frame error replies use
/// this so they stay routable to the submitter's pending entry instead
/// of going out with a dead tag.
pub fn peek_tag(buf: &[u8]) -> Option<u32> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    Some(u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")))
}

/// Decodes and validates a frame.
pub fn decode_frame(buf: &[u8]) -> Result<Frame<'_>, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let msg_type = buf[4];
    let tag = u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes"));
    let credit = buf[CREDIT_OFFSET];
    let flags = buf[FLAGS_OFFSET];
    let tenant = buf[TENANT_OFFSET];
    if buf.len() != HEADER_LEN + body_len {
        return Err(ProtoError::Truncated);
    }
    Ok(Frame {
        msg_type,
        tag,
        credit,
        flags,
        tenant,
        body: &buf[HEADER_LEN..],
    })
}

/// Body reader with bounds-checked accessors.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a body slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        if self.buf.is_empty() {
            return Err(ProtoError::Malformed);
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        if self.buf.len() < 4 {
            return Err(ProtoError::Malformed);
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        if self.buf.len() < 8 {
            return Err(ProtoError::Malformed);
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a length-prefixed UTF-8 string (≤ [`MAX_STR`]).
    pub fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_STR || self.buf.len() < len {
            return Err(ProtoError::Malformed);
        }
        let s = std::str::from_utf8(&self.buf[..len]).map_err(|_| ProtoError::Malformed)?;
        let s = s.to_string();
        self.buf.advance(len);
        Ok(s)
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        if self.buf.len() < len {
            return Err(ProtoError::Malformed);
        }
        let v = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(v)
    }

    /// Asserts the body is fully consumed.
    pub fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed)
        }
    }
}

/// Body writer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.put_u8(v);
        self
    }

    /// Writes a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Writes a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Writes a length-prefixed string.
    pub fn string(mut self, s: &str) -> Self {
        self.buf.put_u32_le(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
        self
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.put_u32_le(b.len() as u32);
        self.buf.put_slice(b);
        self
    }

    /// Finalizes the body.
    pub fn build(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(7, 0xDEAD, b"body!");
        let d = decode_frame(&f).unwrap();
        assert_eq!(d.msg_type, 7);
        assert_eq!(d.tag, 0xDEAD);
        assert_eq!(d.credit, 0);
        assert_eq!(d.flags, 0);
        assert_eq!(d.tenant, 0);
        assert_eq!(d.body, b"body!");
    }

    #[test]
    fn credit_stamp_roundtrip() {
        let mut f = encode_frame(7, 42, b"payload");
        stamp_credit(&mut f, 9);
        let d = decode_frame(&f).unwrap();
        assert_eq!(d.credit, 9);
        assert_eq!(d.tag, 42);
        assert_eq!(d.body, b"payload");
    }

    #[test]
    fn flags_and_tenant_stamps_are_independent() {
        let mut f = encode_frame(3, 77, b"op");
        stamp_flags(&mut f, FLAG_BARRIER);
        stamp_tenant(&mut f, 5);
        stamp_credit(&mut f, 2);
        let d = decode_frame(&f).unwrap();
        assert_eq!(d.flags, FLAG_BARRIER);
        assert_eq!(d.tenant, 5);
        assert_eq!(d.credit, 2);
        assert_eq!(d.tag, 77);
        assert_eq!(d.msg_type, 3);
        assert_eq!(d.body, b"op");
    }

    #[test]
    fn deadline_class_roundtrip() {
        use std::time::Duration;
        assert_eq!(deadline_class(Duration::ZERO), 0);
        assert_eq!(deadline_duration(0), None);
        // Exact powers land on their own class.
        assert_eq!(deadline_class(Duration::from_micros(250)), 1);
        assert_eq!(deadline_class(Duration::from_micros(500)), 2);
        // In-between durations round *up* to the covering class.
        assert_eq!(deadline_class(Duration::from_micros(300)), 2);
        for class in 1u8..=15 {
            let d = deadline_duration(class).unwrap();
            assert_eq!(deadline_class(d), class);
            assert!(deadline_duration(class - 1).is_none_or(|p| p < d));
        }
        // Beyond the top class: clamp.
        assert_eq!(deadline_class(Duration::from_secs(3600)), 15);
    }

    #[test]
    fn deadline_rides_the_flags_byte() {
        let mut f = encode_frame(3, 9, b"op");
        let flags = flags_with_deadline(FLAG_BARRIER, 4);
        stamp_flags(&mut f, flags);
        let d = decode_frame(&f).unwrap();
        assert_eq!(d.flags & FLAG_BARRIER, FLAG_BARRIER, "low bits preserved");
        assert_eq!(
            flags_deadline(d.flags),
            Some(std::time::Duration::from_micros(2_000))
        );
        // No deadline nibble: nothing decoded.
        assert_eq!(flags_deadline(FLAG_BARRIER), None);
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = encode_frame(1, 2, b"abcdef");
        assert_eq!(decode_frame(&f[..3]), Err(ProtoError::Truncated));
        assert_eq!(decode_frame(&f[..f.len() - 1]), Err(ProtoError::Truncated));
        // Extra trailing bytes are also rejected (length must be exact).
        let mut long = f.clone();
        long.push(0);
        assert_eq!(decode_frame(&long), Err(ProtoError::Truncated));
    }

    #[test]
    fn reader_writer_roundtrip() {
        let body = Writer::new()
            .u8(3)
            .u32(70_000)
            .u64(1 << 40)
            .string("/path/to/file")
            .bytes(&[9, 8, 7])
            .build();
        let mut r = Reader::new(&body);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.string().unwrap(), "/path/to/file");
        assert_eq!(r.bytes().unwrap(), vec![9, 8, 7]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_malformed() {
        let mut r = Reader::new(&[1]);
        assert_eq!(r.u32(), Err(ProtoError::Malformed));

        // String length exceeding the buffer.
        let bad = Writer::new().u32(100).build();
        let mut r = Reader::new(&bad);
        assert_eq!(r.string(), Err(ProtoError::Malformed));

        // Invalid UTF-8.
        let mut bad = Writer::new().u32(2).build();
        bad.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&bad);
        assert_eq!(r.string(), Err(ProtoError::Malformed));

        // Oversized string length.
        let mut huge = Writer::new().u32(MAX_STR as u32 + 1).build();
        huge.extend(vec![b'a'; MAX_STR + 1]);
        let mut r = Reader::new(&huge);
        assert_eq!(r.string(), Err(ProtoError::Malformed));

        // Trailing garbage.
        let body = Writer::new().u8(1).build();
        let mut extra = body.clone();
        extra.push(0);
        let mut r = Reader::new(&extra);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(ProtoError::Malformed));
    }
}
