#![warn(missing_docs)]

//! Solros RPC wire protocol.
//!
//! The data-plane OS talks to the control-plane OS over the transport
//! service using two message families, both modelled on the paper (§5):
//!
//! * **File system** — a 9P-flavoured protocol (the paper extends the diod
//!   9P server) whose `Tread`/`Twrite` carry a *physical address* of
//!   co-processor memory instead of data, enabling zero-copy P2P disk
//!   transfers straight into the co-processor.
//! * **Network** — ten request messages with a one-to-one mapping to
//!   socket system calls, plus two event messages (new connection, data
//!   arrival) delivered over the inbound event channel (§4.4).
//!
//! Frames are length-prefixed, tagged (so concurrent co-processor threads
//! can share one ring and match replies), and hand-packed little-endian.

pub mod admission;
pub mod codec;
pub mod fs_msg;
pub mod net_msg;
pub mod rpc_error;

pub use admission::{AdmitRequest, AdmittedFrame};
pub use codec::{Frame, ProtoError};
pub use fs_msg::{FsRequest, FsResponse};
pub use net_msg::{NetEvent, NetRequest, NetResponse};
pub use rpc_error::RpcErr;
