//! Single-decode admission type for the shared proxy engine.
//!
//! The engine drains raw frames from a request ring and must know the
//! header metadata (tag, flags, tenant) *and* the parsed request before
//! it can classify the work for QoS. Historically the QoS path peeked at
//! the tenant byte with one `decode_frame` and the handler re-decoded the
//! whole frame a second time. [`AdmittedFrame`] parses the frame exactly
//! once and carries both halves through the scheduler.

use crate::codec::{decode_frame, Frame, ProtoError};
use crate::{FsRequest, NetRequest};

/// A request family the proxy engine can admit: decodable from an
/// already-parsed [`Frame`] without touching the raw bytes again.
pub trait AdmitRequest: Sized {
    /// Decodes the request carried by `frame`'s body.
    fn from_frame(frame: &Frame<'_>) -> Result<Self, ProtoError>;
}

impl AdmitRequest for FsRequest {
    fn from_frame(frame: &Frame<'_>) -> Result<Self, ProtoError> {
        FsRequest::from_frame(frame)
    }
}

impl AdmitRequest for NetRequest {
    fn from_frame(frame: &Frame<'_>) -> Result<Self, ProtoError> {
        NetRequest::from_frame(frame)
    }
}

/// A frame decoded exactly once at admission: the header metadata the
/// engine needs for routing plus the parsed request for the handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmittedFrame<R> {
    /// Caller-chosen tag echoed in the reply.
    pub tag: u32,
    /// Submission flags ([`crate::codec::FLAG_BARRIER`], deadline nibble).
    pub flags: u8,
    /// Tenant id of the submitting data plane.
    pub tenant: u8,
    /// The decoded request.
    pub req: R,
}

impl<R: AdmitRequest> AdmittedFrame<R> {
    /// Parses one raw frame into header metadata and request in a single
    /// pass.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let f = decode_frame(buf)?;
        Ok(Self {
            tag: f.tag,
            flags: f.flags,
            tenant: f.tenant,
            req: R::from_frame(&f)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{stamp_flags, stamp_tenant, FLAG_BARRIER};

    #[test]
    fn admits_fs_and_net_with_metadata() {
        let mut f = FsRequest::Fstat { ino: 9 }.encode(41);
        stamp_flags(&mut f, FLAG_BARRIER);
        stamp_tenant(&mut f, 3);
        let a: AdmittedFrame<FsRequest> = AdmittedFrame::decode(&f).unwrap();
        assert_eq!(a.tag, 41);
        assert_eq!(a.flags, FLAG_BARRIER);
        assert_eq!(a.tenant, 3);
        assert_eq!(a.req, FsRequest::Fstat { ino: 9 });

        let f = NetRequest::Recv { sock: 7, max: 64 }.encode(8);
        let a: AdmittedFrame<NetRequest> = AdmittedFrame::decode(&f).unwrap();
        assert_eq!(a.tag, 8);
        assert_eq!((a.flags, a.tenant), (0, 0));
        assert_eq!(a.req, NetRequest::Recv { sock: 7, max: 64 });
    }

    #[test]
    fn malformed_frames_are_rejected() {
        let f = FsRequest::Fstat { ino: 1 }.encode(1);
        assert!(AdmittedFrame::<FsRequest>::decode(&f[..5]).is_err());
        // An fs frame is not a valid net request.
        assert!(AdmittedFrame::<NetRequest>::decode(&f).is_err());
    }
}
