//! NVMe performance model (timed mode).
//!
//! Calibrated to the paper's testbed SSD, an Intel 750 1.2 TB (§6):
//! 2.4 GB/s sequential read, 1.2 GB/s sequential write, and command
//! latencies consistent with the single-thread small-block throughput of
//! Figure 11 (~0.25 GB/s at 32 KB means ~115 µs per operation end to
//! end). Doorbell and interrupt costs are what the vectored-command
//! optimization (§5) saves; the `channels` field models the device's
//! internal parallelism, which is what lets throughput scale with client
//! threads until the bandwidth cap (Figures 11/12).

use solros_simkit::time::transfer_time;
use solros_simkit::SimTime;

/// The timed-mode cost model for the simulated SSD.
#[derive(Debug, Clone)]
pub struct NvmePerf {
    /// Streaming read bandwidth (bytes/s).
    pub read_bw: f64,
    /// Streaming write bandwidth (bytes/s).
    pub write_bw: f64,
    /// Fixed per-command device latency (flash access + controller).
    pub cmd_latency: SimTime,
    /// Host-side cost of one doorbell MMIO write (incl. kernel path).
    pub doorbell_cost: SimTime,
    /// Host-side cost of taking one completion interrupt.
    pub interrupt_cost: SimTime,
    /// Internal parallelism: commands in flight concurrently.
    pub channels: usize,
}

impl NvmePerf {
    /// The Intel 750 calibration (see module docs).
    pub fn paper_default() -> Self {
        NvmePerf {
            read_bw: 2.4e9,
            write_bw: 1.2e9,
            cmd_latency: SimTime::from_us(90),
            doorbell_cost: SimTime::from_us(1),
            interrupt_cost: SimTime::from_us(12),
            channels: 4,
        }
    }

    /// Device-side service time of a single command moving `bytes`.
    pub fn command_time(&self, is_read: bool, bytes: u64) -> SimTime {
        let bw = if is_read { self.read_bw } else { self.write_bw };
        self.cmd_latency + transfer_time(bytes, bw)
    }

    /// Latency of a batch of `n` equal commands issued together (the
    /// vectored path): commands overlap across `channels`, the transfer
    /// shares the device bandwidth, and exactly one doorbell and one
    /// interrupt are paid.
    pub fn vectored_batch_time(&self, is_read: bool, n: u64, bytes_each: u64) -> SimTime {
        if n == 0 {
            return SimTime::ZERO;
        }
        let bw = if is_read { self.read_bw } else { self.write_bw };
        let waves = n.div_ceil(self.channels as u64);
        let latency = self.cmd_latency * waves;
        let xfer = transfer_time(n * bytes_each, bw);
        self.doorbell_cost + latency.max(xfer) + self.interrupt_cost
    }

    /// Latency of the same batch issued one command at a time (the
    /// conventional path): no overlap, a doorbell and an interrupt per
    /// command.
    pub fn sequential_batch_time(&self, is_read: bool, n: u64, bytes_each: u64) -> SimTime {
        (self.doorbell_cost + self.command_time(is_read, bytes_each) + self.interrupt_cost) * n
    }

    /// Control-variable publishes (doorbell-equivalents) the *reply*
    /// path pays to settle `n` completions: one when they ride a batched
    /// settlement wave, one each on the per-reply path. The reply-side
    /// mirror of the submission doorbell accounting above — E8 sweeps
    /// both directions.
    pub fn reply_publishes(&self, n: u64, batched: bool) -> u64 {
        if n == 0 {
            0
        } else if batched {
            1
        } else {
            n
        }
    }

    /// Host-side settlement cost of `n` completions: each publish paid
    /// on the reply path carries one doorbell-equivalent store plus one
    /// completion-notification cost (the interrupt analog the batched
    /// wave amortizes).
    pub fn reply_settle_time(&self, n: u64, batched: bool) -> SimTime {
        (self.doorbell_cost + self.interrupt_cost) * self.reply_publishes(n, batched)
    }

    /// Steady-state device throughput (bytes/s) with `threads` concurrent
    /// submitters of `bytes`-sized operations of `cmds_per_op` commands
    /// each using the vectored path: bounded by both the bandwidth cap and
    /// the channel-limited IOPS.
    pub fn steady_throughput(
        &self,
        is_read: bool,
        threads: usize,
        bytes: u64,
        cmds_per_op: u64,
    ) -> f64 {
        let bw = if is_read { self.read_bw } else { self.write_bw };
        // Per-op latency seen by one thread.
        let op_time = self.vectored_batch_time(is_read, cmds_per_op, bytes / cmds_per_op.max(1));
        let per_thread = bytes as f64 / op_time.as_secs_f64();
        // Latency-bound aggregate, capped by device bandwidth and by
        // channel-limited command throughput.
        let iops_cap = self.channels as f64 / self.cmd_latency.as_secs_f64();
        let cmd_bytes = bytes as f64 / cmds_per_op.max(1) as f64;
        (per_thread * threads as f64)
            .min(bw)
            .min(iops_cap * cmd_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> NvmePerf {
        NvmePerf::paper_default()
    }

    #[test]
    fn command_time_scales_with_size() {
        let p = p();
        let small = p.command_time(true, 4096);
        let big = p.command_time(true, 128 * 1024);
        assert!(big > small);
        // 128 KB at 2.4 GB/s is ~53 us on top of the 90 us base.
        assert!(big < SimTime::from_us(160));
    }

    #[test]
    fn writes_slower_than_reads() {
        let p = p();
        assert!(p.command_time(false, 1 << 20) > p.command_time(true, 1 << 20));
    }

    #[test]
    fn vectored_beats_sequential() {
        let p = p();
        let v = p.vectored_batch_time(true, 4, 128 * 1024);
        let s = p.sequential_batch_time(true, 4, 128 * 1024);
        assert!(
            v.as_secs_f64() < s.as_secs_f64() / 2.0,
            "vectored {v} vs sequential {s}"
        );
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(p().vectored_batch_time(true, 0, 4096), SimTime::ZERO);
    }

    #[test]
    fn batched_reply_settlement_amortizes_publishes() {
        let p = p();
        assert_eq!(p.reply_publishes(32, true), 1);
        assert_eq!(p.reply_publishes(32, false), 32);
        assert_eq!(p.reply_publishes(0, true), 0);
        let batched = p.reply_settle_time(32, true);
        let per_op = p.reply_settle_time(32, false);
        assert_eq!(per_op.as_secs_f64(), batched.as_secs_f64() * 32.0);
    }

    #[test]
    fn steady_throughput_saturates_at_bandwidth() {
        let p = p();
        // Many threads with 512 KB reads reach the 2.4 GB/s cap.
        let t = p.steady_throughput(true, 32, 512 * 1024, 4);
        assert!((t - 2.4e9).abs() / 2.4e9 < 0.01, "read cap {t}");
        let w = p.steady_throughput(false, 32, 512 * 1024, 4);
        assert!((w - 1.2e9).abs() / 1.2e9 < 0.01, "write cap {w}");
    }

    #[test]
    fn single_thread_small_block_is_latency_bound() {
        let p = p();
        let t = p.steady_throughput(true, 1, 32 * 1024, 1);
        // ~32 KB / ~115 us ≈ 0.27 GB/s, far from the cap.
        assert!(t > 0.15e9 && t < 0.5e9, "got {t}");
    }
}
