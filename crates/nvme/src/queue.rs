//! NVMe submission/completion queue pair.
//!
//! A faithful-but-compact model of the NVMe queueing protocol: the driver
//! writes commands into the submission ring and rings the doorbell; the
//! controller consumes them, executes, and posts entries (with a phase
//! tag) to the completion ring, raising an interrupt; the driver reaps
//! completions and updates the CQ head doorbell. The Solros driver
//! optimization (§5) is visible here: one doorbell ring may cover many
//! queued commands, and the device raises a single interrupt per doorbell
//! batch rather than per command.

use std::collections::VecDeque;

use crate::device::NvmeCommand;
use crate::error::NvmeError;

/// A completion queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Command identifier echoed from the submission entry.
    pub cid: u16,
    /// Success or error status.
    pub status: Result<(), NvmeError>,
    /// Phase tag, toggling each ring lap (protocol fidelity).
    pub phase: bool,
}

/// A bounded submission/completion ring pair.
pub struct QueuePair {
    depth: usize,
    sq: VecDeque<(u16, NvmeCommand)>,
    cq: VecDeque<Completion>,
    next_cid: u16,
    cq_phase: bool,
    cq_posted: u64,
    /// Doorbell write count (protocol statistics).
    pub doorbells: u64,
}

impl QueuePair {
    /// Creates a queue pair with the given ring depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        Self {
            depth,
            sq: VecDeque::new(),
            cq: VecDeque::new(),
            next_cid: 0,
            cq_phase: true,
            cq_posted: 0,
            doorbells: 0,
        }
    }

    /// Returns the ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Returns the number of submitted-but-unprocessed commands.
    pub fn sq_pending(&self) -> usize {
        self.sq.len()
    }

    /// Returns the number of unreaped completions.
    pub fn cq_pending(&self) -> usize {
        self.cq.len()
    }

    /// Places a command in the submission ring (no doorbell yet). Returns
    /// the assigned command identifier.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<u16, NvmeError> {
        if self.sq.len() >= self.depth {
            return Err(NvmeError::QueueFull);
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        self.sq.push_back((cid, cmd));
        Ok(cid)
    }

    /// Rings the submission doorbell: hands all pending commands to the
    /// controller. Returns the batch.
    pub fn ring_doorbell(&mut self) -> Vec<(u16, NvmeCommand)> {
        self.doorbells += 1;
        self.sq.drain(..).collect()
    }

    /// Controller side: posts a completion, toggling the phase each lap.
    pub fn post_completion(&mut self, cid: u16, status: Result<(), NvmeError>) {
        let phase = self.cq_phase;
        self.cq.push_back(Completion { cid, status, phase });
        self.cq_posted += 1;
        if self.cq_posted.is_multiple_of(self.depth as u64) {
            self.cq_phase = !self.cq_phase;
        }
    }

    /// Driver side: reaps the oldest completion.
    pub fn reap(&mut self) -> Result<Completion, NvmeError> {
        self.cq.pop_front().ok_or(NvmeError::NoCompletion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NvmeCommand;

    fn flush() -> NvmeCommand {
        NvmeCommand::Flush
    }

    #[test]
    fn submit_doorbell_reap_cycle() {
        let mut qp = QueuePair::new(8);
        let a = qp.submit(flush()).unwrap();
        let b = qp.submit(flush()).unwrap();
        assert_ne!(a, b);
        assert_eq!(qp.sq_pending(), 2);
        let batch = qp.ring_doorbell();
        assert_eq!(batch.len(), 2);
        assert_eq!(qp.sq_pending(), 0);
        assert_eq!(qp.doorbells, 1);
        for (cid, _) in batch {
            qp.post_completion(cid, Ok(()));
        }
        assert_eq!(qp.reap().unwrap().cid, a);
        assert_eq!(qp.reap().unwrap().cid, b);
        assert_eq!(qp.reap(), Err(NvmeError::NoCompletion));
    }

    #[test]
    fn queue_full() {
        let mut qp = QueuePair::new(2);
        qp.submit(flush()).unwrap();
        qp.submit(flush()).unwrap();
        assert_eq!(qp.submit(flush()), Err(NvmeError::QueueFull));
        qp.ring_doorbell();
        qp.submit(flush()).unwrap();
    }

    #[test]
    fn phase_toggles_each_lap() {
        let mut qp = QueuePair::new(4);
        let mut phases = Vec::new();
        for i in 0..8 {
            qp.post_completion(i, Ok(()));
        }
        for _ in 0..8 {
            phases.push(qp.reap().unwrap().phase);
        }
        assert_eq!(phases[..4], [true; 4]);
        assert_eq!(phases[4..], [false; 4]);
    }

    #[test]
    fn one_doorbell_many_commands() {
        let mut qp = QueuePair::new(64);
        for _ in 0..32 {
            qp.submit(flush()).unwrap();
        }
        let batch = qp.ring_doorbell();
        assert_eq!(batch.len(), 32);
        assert_eq!(qp.doorbells, 1);
    }
}
