//! NVMe error types.

use std::fmt;

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeError {
    /// The LBA range exceeds the device capacity.
    OutOfRange,
    /// A transfer exceeds the device's maximum data transfer size.
    TransferTooLarge,
    /// Injected media error (fault-injection hook).
    MediaError,
    /// The submission queue is full; ring the doorbell and retry.
    QueueFull,
    /// The completion queue has no new entry.
    NoCompletion,
}

impl NvmeError {
    /// True for conditions worth retrying (a transient media hiccup, a
    /// momentarily full queue, a lost completion); false for structural
    /// failures (bad LBA or transfer size) that retries can never fix.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            NvmeError::MediaError | NvmeError::QueueFull | NvmeError::NoCompletion
        )
    }
}

impl fmt::Display for NvmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmeError::OutOfRange => write!(f, "LBA out of range"),
            NvmeError::TransferTooLarge => write!(f, "transfer exceeds MDTS"),
            NvmeError::MediaError => write!(f, "media error"),
            NvmeError::QueueFull => write!(f, "submission queue full"),
            NvmeError::NoCompletion => write!(f, "no completion available"),
        }
    }
}

impl std::error::Error for NvmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all() {
        for (e, s) in [
            (NvmeError::OutOfRange, "LBA out of range"),
            (NvmeError::TransferTooLarge, "transfer exceeds MDTS"),
            (NvmeError::MediaError, "media error"),
            (NvmeError::QueueFull, "submission queue full"),
            (NvmeError::NoCompletion, "no completion available"),
        ] {
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn transient_classification() {
        assert!(NvmeError::MediaError.is_transient());
        assert!(NvmeError::QueueFull.is_transient());
        assert!(NvmeError::NoCompletion.is_transient());
        assert!(!NvmeError::OutOfRange.is_transient());
        assert!(!NvmeError::TransferTooLarge.is_transient());
    }
}
