//! NVMe error types.

use std::fmt;

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeError {
    /// The LBA range exceeds the device capacity.
    OutOfRange,
    /// A transfer exceeds the device's maximum data transfer size.
    TransferTooLarge,
    /// Injected media error (fault-injection hook).
    MediaError,
    /// The submission queue is full; ring the doorbell and retry.
    QueueFull,
    /// The completion queue has no new entry.
    NoCompletion,
}

impl fmt::Display for NvmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmeError::OutOfRange => write!(f, "LBA out of range"),
            NvmeError::TransferTooLarge => write!(f, "transfer exceeds MDTS"),
            NvmeError::MediaError => write!(f, "media error"),
            NvmeError::QueueFull => write!(f, "submission queue full"),
            NvmeError::NoCompletion => write!(f, "no completion available"),
        }
    }
}

impl std::error::Error for NvmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all() {
        for (e, s) in [
            (NvmeError::OutOfRange, "LBA out of range"),
            (NvmeError::TransferTooLarge, "transfer exceeds MDTS"),
            (NvmeError::MediaError, "media error"),
            (NvmeError::QueueFull, "submission queue full"),
            (NvmeError::NoCompletion, "no completion available"),
        ] {
            assert_eq!(e.to_string(), s);
        }
    }
}
