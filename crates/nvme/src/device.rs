//! The simulated NVMe controller.
//!
//! Commands are block-granular reads/writes whose data lands in (or comes
//! from) an arbitrary PCIe-visible memory region — host RAM or, for
//! peer-to-peer transfers, a co-processor's exported memory (§4.3.2, §5).
//! The two submission paths mirror the paper:
//!
//! * [`NvmeDevice::submit_vectored`] — the Solros driver's `p2p_read` /
//!   `p2p_write` IO-vector ioctl: every command of one file-system call is
//!   queued, the doorbell rings **once**, and one interrupt covers the
//!   whole batch.
//! * [`NvmeDevice::submit_each`] — the conventional path (one doorbell and
//!   one interrupt per command), used by the baselines.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_pcie::window::Window;

use crate::error::NvmeError;
use crate::queue::QueuePair;
use crate::store::{BlockStore, BLOCK_SIZE};

/// Maximum data transfer size per command (MDTS): 128 KiB = 32 blocks.
pub const MDTS_BLOCKS: u32 = 32;

/// A DMA target/source: an offset inside a PCIe-visible window.
#[derive(Clone)]
pub struct DmaPtr {
    /// The memory region (host RAM or an exported co-processor region).
    pub window: Arc<Window>,
    /// Byte offset within the window.
    pub offset: usize,
}

impl DmaPtr {
    /// Creates a pointer; validated against the window bounds at use.
    pub fn new(window: Arc<Window>, offset: usize) -> Self {
        Self { window, offset }
    }
}

impl fmt::Debug for DmaPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DmaPtr({:?}+{:#x})", self.window.home(), self.offset)
    }
}

/// One NVMe command.
#[derive(Debug, Clone)]
pub enum NvmeCommand {
    /// Read `nblocks` starting at `lba` into `dst`.
    Read {
        /// Starting logical block address.
        lba: u64,
        /// Number of blocks.
        nblocks: u32,
        /// DMA destination.
        dst: DmaPtr,
    },
    /// Write `nblocks` starting at `lba` from `src`.
    Write {
        /// Starting logical block address.
        lba: u64,
        /// Number of blocks.
        nblocks: u32,
        /// DMA source.
        src: DmaPtr,
    },
    /// Persist outstanding writes (a no-op for the in-memory store, but
    /// counted, so flush-heavy workloads model correctly).
    Flush,
}

impl NvmeCommand {
    /// Number of data blocks this command moves.
    pub fn nblocks(&self) -> u32 {
        match self {
            NvmeCommand::Read { nblocks, .. } | NvmeCommand::Write { nblocks, .. } => *nblocks,
            NvmeCommand::Flush => 0,
        }
    }

    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, NvmeCommand::Read { .. })
    }
}

/// Protocol/activity statistics, matching what the latency-breakdown and
/// coalescing experiments report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NvmeStats {
    /// Commands executed.
    pub commands: u64,
    /// Doorbell rings.
    pub doorbells: u64,
    /// Interrupts raised.
    pub interrupts: u64,
    /// Blocks read.
    pub blocks_read: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Commands that failed (including injected faults).
    pub failures: u64,
}

/// The simulated NVMe SSD.
///
/// # Examples
///
/// ```
/// use solros_nvme::{NvmeDevice, NvmeCommand, DmaPtr, BLOCK_SIZE};
/// use solros_pcie::{PcieCounters, Side, Window};
/// use std::sync::Arc;
///
/// let dev = NvmeDevice::new(1024);
/// let counters = Arc::new(PcieCounters::new());
/// let buf = Window::new(BLOCK_SIZE, Side::Host, counters);
///
/// // SAFETY-free API: the device copies through the window internally.
/// let w = NvmeCommand::Write { lba: 5, nblocks: 1, src: DmaPtr::new(Arc::clone(&buf), 0) };
/// assert!(dev.submit_vectored(&[w]).iter().all(|r| r.is_ok()));
/// assert_eq!(dev.stats().doorbells, 1);
/// ```
pub struct NvmeDevice {
    store: BlockStore,
    qp: Mutex<QueuePair>,
    commands: AtomicU64,
    interrupts: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    failures: AtomicU64,
    inject_faults: AtomicU64,
    inject_timeouts: AtomicU64,
    inject_queue_full: AtomicU64,
}

impl NvmeDevice {
    /// Creates a device with the given capacity in blocks and a 1024-deep
    /// queue pair.
    pub fn new(capacity_blocks: u64) -> Arc<Self> {
        Arc::new(Self {
            store: BlockStore::new(capacity_blocks),
            qp: Mutex::new(QueuePair::new(1024)),
            commands: AtomicU64::new(0),
            interrupts: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            inject_faults: AtomicU64::new(0),
            inject_timeouts: AtomicU64::new(0),
            inject_queue_full: AtomicU64::new(0),
        })
    }

    /// Returns the device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.store.capacity_blocks()
    }

    /// Arms the fault injector: the next `n` data commands fail with
    /// [`NvmeError::MediaError`].
    pub fn inject_faults(&self, n: u64) {
        self.inject_faults.store(n, Ordering::SeqCst);
    }

    /// Arms the timeout injector: the next `n` data commands fail with
    /// [`NvmeError::NoCompletion`], modeling a lost completion entry (the
    /// host gives up on the command after its deadline).
    pub fn inject_timeouts(&self, n: u64) {
        self.inject_timeouts.store(n, Ordering::SeqCst);
    }

    /// Arms the queue-full injector: the next `n` submission *batches* are
    /// refused whole with [`NvmeError::QueueFull`] before any command
    /// executes — no doorbell, no interrupt, no state change.
    pub fn inject_queue_full(&self, n: u64) {
        self.inject_queue_full.store(n, Ordering::SeqCst);
    }

    /// Returns a snapshot of the protocol statistics.
    pub fn stats(&self) -> NvmeStats {
        NvmeStats {
            commands: self.commands.load(Ordering::Relaxed),
            doorbells: self.qp.lock().doorbells,
            interrupts: self.interrupts.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// The Solros vectored path (§5): all commands in one doorbell, one
    /// interrupt for the whole batch. Returns per-command results in
    /// submission order.
    pub fn submit_vectored(&self, cmds: &[NvmeCommand]) -> Vec<Result<(), NvmeError>> {
        if cmds.is_empty() {
            return Vec::new();
        }
        let refused = self
            .inject_queue_full
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if refused {
            self.failures
                .fetch_add(cmds.len() as u64, Ordering::Relaxed);
            return cmds.iter().map(|_| Err(NvmeError::QueueFull)).collect();
        }
        let batch = {
            let mut qp = self.qp.lock();
            let mut cids = Vec::with_capacity(cmds.len());
            for cmd in cmds {
                // Ring depth 1024 exceeds any batch the FS proxy builds; a
                // full ring here is a bug, not a runtime condition.
                cids.push(qp.submit(cmd.clone()).expect("ring depth exceeded"));
            }
            qp.ring_doorbell()
        };
        let mut results = Vec::with_capacity(batch.len());
        {
            let mut qp = self.qp.lock();
            for (cid, cmd) in batch {
                let status = self.execute(&cmd);
                qp.post_completion(cid, status);
            }
        }
        // One interrupt covers the batch.
        self.interrupts.fetch_add(1, Ordering::Relaxed);
        let mut qp = self.qp.lock();
        for _ in 0..cmds.len() {
            results.push(qp.reap().expect("completion present").status);
        }
        results
    }

    /// The conventional path: one doorbell + one interrupt per command.
    pub fn submit_each(&self, cmds: &[NvmeCommand]) -> Vec<Result<(), NvmeError>> {
        cmds.iter()
            .map(|c| {
                let r = self.submit_vectored(std::slice::from_ref(c));
                r.into_iter().next().expect("one result")
            })
            .collect()
    }

    fn execute(&self, cmd: &NvmeCommand) -> Result<(), NvmeError> {
        self.commands.fetch_add(1, Ordering::Relaxed);
        if cmd.nblocks() > MDTS_BLOCKS {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(NvmeError::TransferTooLarge);
        }
        // A DMA address outside the target window is a bad PRP list: the
        // controller fails the command instead of scribbling on memory.
        let dma_bounds_ok = match cmd {
            NvmeCommand::Read { nblocks, dst, .. } => dst
                .offset
                .checked_add(*nblocks as usize * BLOCK_SIZE)
                .is_some_and(|end| end <= dst.window.len()),
            NvmeCommand::Write { nblocks, src, .. } => src
                .offset
                .checked_add(*nblocks as usize * BLOCK_SIZE)
                .is_some_and(|end| end <= src.window.len()),
            NvmeCommand::Flush => true,
        };
        if !dma_bounds_ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(NvmeError::OutOfRange);
        }
        if !matches!(cmd, NvmeCommand::Flush) {
            let remaining = self
                .inject_faults
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok();
            if remaining {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(NvmeError::MediaError);
            }
            let timed_out = self
                .inject_timeouts
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok();
            if timed_out {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(NvmeError::NoCompletion);
            }
        }
        match cmd {
            NvmeCommand::Read { lba, nblocks, dst } => {
                let mut tmp = vec![0u8; BLOCK_SIZE];
                for i in 0..*nblocks {
                    self.store.read(lba + i as u64, &mut tmp)?;
                    let off = dst.offset + i as usize * BLOCK_SIZE;
                    // The device's own DMA engine moves the data; this is
                    // not CPU-initiated PCIe traffic, so it uses a local
                    // mapping of the target window.
                    let handle = dst.window.map(dst.window.home());
                    // SAFETY: the submitter owns the destination buffer
                    // exclusively for the duration of the command (driver
                    // contract, enforced by the FS proxy).
                    unsafe { handle.write(off, &tmp) };
                }
                self.blocks_read
                    .fetch_add(*nblocks as u64, Ordering::Relaxed);
                Ok(())
            }
            NvmeCommand::Write { lba, nblocks, src } => {
                let mut tmp = vec![0u8; BLOCK_SIZE];
                for i in 0..*nblocks {
                    let off = src.offset + i as usize * BLOCK_SIZE;
                    let handle = src.window.map(src.window.home());
                    // SAFETY: as above — exclusive source buffer.
                    unsafe { handle.read(off, &mut tmp) };
                    self.store.write(lba + i as u64, &tmp)?;
                }
                self.blocks_written
                    .fetch_add(*nblocks as u64, Ordering::Relaxed);
                Ok(())
            }
            NvmeCommand::Flush => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_pcie::{PcieCounters, Side};

    fn buffer(len: usize) -> Arc<Window> {
        Window::new(len, Side::Host, Arc::new(PcieCounters::new()))
    }

    fn fill(w: &Arc<Window>, off: usize, data: &[u8]) {
        let h = w.map(w.home());
        // SAFETY: test-local buffer, single-threaded.
        unsafe { h.write(off, data) };
    }

    fn read_back(w: &Arc<Window>, off: usize, len: usize) -> Vec<u8> {
        let h = w.map(w.home());
        let mut v = vec![0u8; len];
        // SAFETY: test-local buffer, single-threaded.
        unsafe { h.read(off, &mut v) };
        v
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dev = NvmeDevice::new(1024);
        let src = buffer(2 * BLOCK_SIZE);
        let pattern: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fill(&src, 0, &pattern);

        let w = NvmeCommand::Write {
            lba: 10,
            nblocks: 2,
            src: DmaPtr::new(Arc::clone(&src), 0),
        };
        assert!(dev.submit_vectored(&[w])[0].is_ok());

        let dst = buffer(2 * BLOCK_SIZE);
        let r = NvmeCommand::Read {
            lba: 10,
            nblocks: 2,
            dst: DmaPtr::new(Arc::clone(&dst), 0),
        };
        assert!(dev.submit_vectored(&[r])[0].is_ok());
        assert_eq!(read_back(&dst, 0, 2 * BLOCK_SIZE), pattern);
    }

    #[test]
    fn vectored_batch_coalesces_doorbells_and_interrupts() {
        let dev = NvmeDevice::new(4096);
        let buf = buffer(BLOCK_SIZE);
        let cmds: Vec<_> = (0..8)
            .map(|i| NvmeCommand::Read {
                lba: i,
                nblocks: 1,
                dst: DmaPtr::new(Arc::clone(&buf), 0),
            })
            .collect();

        let res = dev.submit_vectored(&cmds);
        assert!(res.iter().all(|r| r.is_ok()));
        let s = dev.stats();
        assert_eq!(s.commands, 8);
        assert_eq!(s.doorbells, 1, "vectored path rings once");
        assert_eq!(s.interrupts, 1, "vectored path interrupts once");

        let res = dev.submit_each(&cmds);
        assert!(res.iter().all(|r| r.is_ok()));
        let s = dev.stats();
        assert_eq!(s.doorbells, 1 + 8, "conventional path rings per command");
        assert_eq!(s.interrupts, 1 + 8);
    }

    #[test]
    fn mdts_enforced() {
        let dev = NvmeDevice::new(4096);
        let buf = buffer(BLOCK_SIZE);
        let r = NvmeCommand::Read {
            lba: 0,
            nblocks: MDTS_BLOCKS + 1,
            dst: DmaPtr::new(buf, 0),
        };
        assert_eq!(
            dev.submit_vectored(&[r])[0],
            Err(NvmeError::TransferTooLarge)
        );
    }

    #[test]
    fn out_of_range_dma_address_fails_the_command() {
        let dev = NvmeDevice::new(64);
        let small = buffer(BLOCK_SIZE); // One block of window space.
                                        // Two blocks into a one-block window: bad PRP list.
        let r = NvmeCommand::Read {
            lba: 0,
            nblocks: 2,
            dst: DmaPtr::new(Arc::clone(&small), 0),
        };
        assert_eq!(dev.submit_vectored(&[r])[0], Err(NvmeError::OutOfRange));
        // Offset pushing the end past the window also fails.
        let r = NvmeCommand::Read {
            lba: 0,
            nblocks: 1,
            dst: DmaPtr::new(small, 8),
        };
        assert_eq!(dev.submit_vectored(&[r])[0], Err(NvmeError::OutOfRange));
    }

    #[test]
    fn out_of_range_lba() {
        let dev = NvmeDevice::new(16);
        let buf = buffer(BLOCK_SIZE);
        let r = NvmeCommand::Read {
            lba: 16,
            nblocks: 1,
            dst: DmaPtr::new(buf, 0),
        };
        assert_eq!(dev.submit_vectored(&[r])[0], Err(NvmeError::OutOfRange));
    }

    #[test]
    fn fault_injection_then_recovery() {
        let dev = NvmeDevice::new(64);
        let buf = buffer(BLOCK_SIZE);
        dev.inject_faults(2);
        let r = NvmeCommand::Read {
            lba: 0,
            nblocks: 1,
            dst: DmaPtr::new(Arc::clone(&buf), 0),
        };
        assert_eq!(
            dev.submit_vectored(std::slice::from_ref(&r))[0],
            Err(NvmeError::MediaError)
        );
        assert_eq!(
            dev.submit_vectored(std::slice::from_ref(&r))[0],
            Err(NvmeError::MediaError)
        );
        assert!(dev.submit_vectored(&[r])[0].is_ok());
        assert_eq!(dev.stats().failures, 2);
    }

    #[test]
    fn timeout_and_queue_full_bursts() {
        let dev = NvmeDevice::new(64);
        let buf = buffer(BLOCK_SIZE);
        let r = NvmeCommand::Read {
            lba: 0,
            nblocks: 1,
            dst: DmaPtr::new(Arc::clone(&buf), 0),
        };
        dev.inject_timeouts(1);
        assert_eq!(
            dev.submit_vectored(std::slice::from_ref(&r))[0],
            Err(NvmeError::NoCompletion)
        );
        assert!(dev.submit_vectored(std::slice::from_ref(&r))[0].is_ok());

        // A refused batch fails whole, rings no doorbell, and leaves the
        // device ready for the retry.
        let before = dev.stats();
        dev.inject_queue_full(1);
        let res = dev.submit_vectored(&[r.clone(), r.clone()]);
        assert!(res.iter().all(|x| *x == Err(NvmeError::QueueFull)));
        let after = dev.stats();
        assert_eq!(after.doorbells, before.doorbells, "no doorbell on refusal");
        assert_eq!(after.commands, before.commands, "nothing executed");
        assert!(dev.submit_vectored(&[r])[0].is_ok());
    }

    #[test]
    fn flush_counts_but_moves_nothing() {
        let dev = NvmeDevice::new(64);
        assert!(dev.submit_vectored(&[NvmeCommand::Flush])[0].is_ok());
        let s = dev.stats();
        assert_eq!(s.commands, 1);
        assert_eq!(s.blocks_read + s.blocks_written, 0);
    }

    #[test]
    fn p2p_into_coproc_window() {
        // The destination lives on the co-processor side: a P2P transfer.
        let dev = NvmeDevice::new(64);
        let counters = Arc::new(PcieCounters::new());
        let phi_mem = Window::new(BLOCK_SIZE, Side::Coproc, counters);
        let pattern = vec![0x5Au8; BLOCK_SIZE];
        let staging = buffer(BLOCK_SIZE);
        fill(&staging, 0, &pattern);
        dev.submit_vectored(&[NvmeCommand::Write {
            lba: 3,
            nblocks: 1,
            src: DmaPtr::new(staging, 0),
        }]);
        dev.submit_vectored(&[NvmeCommand::Read {
            lba: 3,
            nblocks: 1,
            dst: DmaPtr::new(Arc::clone(&phi_mem), 0),
        }]);
        assert_eq!(read_back(&phi_mem, 0, BLOCK_SIZE), pattern);
    }
}
