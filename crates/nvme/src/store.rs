//! Sparse in-memory block storage backing the simulated SSD.
//!
//! Blocks are materialized on first write; unwritten blocks read as
//! zeroes, like a freshly TRIMmed drive. The map is sharded to keep lock
//! contention negligible under the multi-threaded fio-style benchmarks.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Device logical block size in bytes (standard 4 KiB).
pub const BLOCK_SIZE: usize = 4096;

const SHARDS: usize = 64;

/// A sparse array of fixed-size blocks addressed by LBA.
///
/// # Examples
///
/// ```
/// use solros_nvme::{BlockStore, BLOCK_SIZE};
///
/// let store = BlockStore::new(1024);
/// let mut block = vec![0u8; BLOCK_SIZE];
/// store.read(7, &mut block).unwrap();
/// assert!(block.iter().all(|&b| b == 0)); // unwritten reads as zero
/// block[0] = 42;
/// store.write(7, &block).unwrap();
/// store.read(7, &mut block).unwrap();
/// assert_eq!(block[0], 42);
/// ```
pub struct BlockStore {
    shards: Vec<Mutex<HashMap<u64, Box<[u8]>>>>,
    capacity_blocks: u64,
}

impl BlockStore {
    /// Creates a store with the given capacity in blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks == 0`.
    pub fn new(capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "zero-capacity device");
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_blocks,
        }
    }

    /// Returns the device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Returns the device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks * BLOCK_SIZE as u64
    }

    /// Returns the number of materialized (written) blocks.
    pub fn resident_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn shard(&self, lba: u64) -> &Mutex<HashMap<u64, Box<[u8]>>> {
        &self.shards[(lba as usize) % SHARDS]
    }

    /// Reads one block into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != BLOCK_SIZE`.
    pub fn read(&self, lba: u64, buf: &mut [u8]) -> Result<(), crate::NvmeError> {
        assert_eq!(buf.len(), BLOCK_SIZE, "partial-block read");
        if lba >= self.capacity_blocks {
            return Err(crate::NvmeError::OutOfRange);
        }
        match self.shard(lba).lock().get(&lba) {
            Some(b) => buf.copy_from_slice(b),
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Writes one block from `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != BLOCK_SIZE`.
    pub fn write(&self, lba: u64, buf: &[u8]) -> Result<(), crate::NvmeError> {
        assert_eq!(buf.len(), BLOCK_SIZE, "partial-block write");
        if lba >= self.capacity_blocks {
            return Err(crate::NvmeError::OutOfRange);
        }
        self.shard(lba)
            .lock()
            .insert(lba, buf.to_vec().into_boxed_slice());
        Ok(())
    }

    /// Discards a block (TRIM); subsequent reads return zeroes.
    pub fn trim(&self, lba: u64) -> Result<(), crate::NvmeError> {
        if lba >= self.capacity_blocks {
            return Err(crate::NvmeError::OutOfRange);
        }
        self.shard(lba).lock().remove(&lba);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn oob_rejected() {
        let s = BlockStore::new(10);
        let mut b = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.read(10, &mut b), Err(crate::NvmeError::OutOfRange));
        assert_eq!(s.write(10, &b), Err(crate::NvmeError::OutOfRange));
        assert_eq!(s.trim(10), Err(crate::NvmeError::OutOfRange));
    }

    #[test]
    fn trim_zeroes() {
        let s = BlockStore::new(10);
        let b = vec![9u8; BLOCK_SIZE];
        s.write(3, &b).unwrap();
        assert_eq!(s.resident_blocks(), 1);
        s.trim(3).unwrap();
        assert_eq!(s.resident_blocks(), 0);
        let mut out = vec![1u8; BLOCK_SIZE];
        s.read(3, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn concurrent_disjoint_blocks() {
        let s = Arc::new(BlockStore::new(10_000));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let lba = t * 1000 + i;
                        let block = vec![(lba % 251) as u8; BLOCK_SIZE];
                        s.write(lba, &block).unwrap();
                        let mut out = vec![0u8; BLOCK_SIZE];
                        s.read(lba, &mut out).unwrap();
                        assert_eq!(out, block);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.resident_blocks(), 4000);
    }

    #[test]
    fn capacity_accessors() {
        let s = BlockStore::new(256);
        assert_eq!(s.capacity_blocks(), 256);
        assert_eq!(s.capacity_bytes(), 256 * 4096);
    }
}
