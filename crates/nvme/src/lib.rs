#![warn(missing_docs)]

//! Simulated NVMe SSD for Solros-rs.
//!
//! The paper's file-system service drives an Intel 750 NVMe SSD directly
//! from the host, including the two custom vectored ioctls (`p2p_read`,
//! `p2p_write`) added in §5: all NVMe commands belonging to one
//! `read`/`write` system call are batched so the doorbell rings once and
//! the device raises a single interrupt — the optimization that lets
//! Solros outperform even the host's own file I/O path (Figure 1a).
//!
//! This crate reproduces the device:
//!
//! * [`store::BlockStore`] — sparse in-memory backing blocks;
//! * [`queue::QueuePair`] — submission/completion rings with doorbells and
//!   phase bits;
//! * [`device::NvmeDevice`] — command execution, DMA into arbitrary PCIe
//!   windows (host memory or peer-to-peer into co-processor memory),
//!   interrupt accounting, and fault injection;
//! * [`perf::NvmePerf`] — the timed-mode performance model (2.4 GB/s
//!   sequential read, 1.2 GB/s write, per-command latency, doorbell and
//!   interrupt overheads).

pub mod device;
pub mod error;
pub mod perf;
pub mod queue;
pub mod store;

pub use device::{DmaPtr, NvmeCommand, NvmeDevice, NvmeStats, MDTS_BLOCKS};
pub use error::NvmeError;
pub use perf::NvmePerf;
pub use store::{BlockStore, BLOCK_SIZE};
