#![warn(missing_docs)]

//! An NRK-style operation log for node-replicated control-plane state.
//!
//! The control plane keeps one *logical* state machine (balancer tables,
//! the buffer-cache directory, per-tenant QoS ledgers) but every
//! co-processor/NUMA domain holds its own *replica* of it. Mutations are
//! appended to a shared [`OpLog`]; each replica applies the log in order
//! through its private read cursor, so reads are always domain-local and
//! the only cross-domain traffic is the append itself.
//!
//! Three mechanisms keep the log from becoming the next bottleneck:
//!
//! * **Flat-combining batch append** ([`OpLog::append`]): concurrent
//!   appenders publish their operation and elect one *combiner*, which
//!   sequences every published operation in one storage acquisition —
//!   the same idiom the transport's combining ring buffer uses, extended
//!   upward into the control plane. Waiters spin only until their ticket
//!   is sequenced.
//! * **Per-replica read cursors** ([`OpLog::sync`]): a replica applies
//!   `(seq, op)` pairs from its cursor to the published tail. Cursors are
//!   advanced only through an exclusive [`ReplicaCursor`] token, so an
//!   operation is applied *exactly once* per replica by construction.
//! * **Lag-bounded compaction**: the combiner trims the applied prefix
//!   once the log exceeds its high-water mark. A replica lagging more
//!   than `max_lag` entries no longer blocks the trim — the log advances
//!   past it and the straggler's next [`OpLog::sync`] reports
//!   [`SyncOutcome::Overrun`], telling it to rebuild from an
//!   authoritative snapshot and [`OpLog::install_snapshot`] at the
//!   current tail (the ScaleFS/Corfu checkpoint move). State machines
//!   that cannot snapshot run with an unbounded lag allowance and gate
//!   on the `overruns` tripwire staying zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Construction parameters for one log.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Compaction trigger: the combiner trims the log once more than
    /// this many entries are resident.
    pub high_water: usize,
    /// Maximum entries a replica may lag before compaction is allowed
    /// to advance past it (forcing a snapshot rebuild). `u64::MAX`
    /// disables overruns: the log then grows until every replica syncs.
    pub max_lag: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            high_water: 1024,
            max_lag: u64::MAX,
        }
    }
}

/// A point-in-time copy of one log's counters, surfaced by experiment
/// harnesses (E7 reports log depth and lag beside ops/s).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogStats {
    /// Next sequence number to be assigned (total operations appended).
    pub tail: u64,
    /// Compaction floor: sequence of the oldest resident entry.
    pub head: u64,
    /// Entries currently resident (`tail - head`).
    pub depth: u64,
    /// Individual append calls.
    pub appends: u64,
    /// Storage acquisitions that sequenced at least one operation; the
    /// combine factor is `appends / batches`.
    pub batches: u64,
    /// Largest single combined batch.
    pub max_batch: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Times a straggling replica was compacted past (each forces one
    /// snapshot rebuild). Non-snapshot state machines gate on zero.
    pub overruns: u64,
    /// Largest current replica lag (entries behind the tail).
    pub max_lag_now: u64,
}

/// What a [`OpLog::sync`] pass found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// `n` operations were applied in order (possibly zero).
    Applied(u64),
    /// Compaction advanced past this replica's cursor: the in-order
    /// prefix is gone. The caller must rebuild its state from an
    /// authoritative snapshot and then [`OpLog::install_snapshot`].
    Overrun,
}

/// An exclusive handle to one replica's read cursor.
///
/// Holding `&mut ReplicaCursor` is the proof that no other thread is
/// applying operations to the same replica, which is what makes
/// exactly-once application a type-system property rather than a
/// convention. Wrap it (and the replica state it guards) in the
/// replica's own lock when multiple threads share one replica.
#[derive(Debug)]
pub struct ReplicaCursor {
    id: usize,
    /// Local copy of the position, so the already-at-tail fast path of
    /// [`OpLog::sync`] is a single atomic load (replica sync sits on
    /// every engine poll, which must stay cheap when the log is quiet).
    at: u64,
    /// Shared cell the combiner reads when computing the compaction
    /// floor; kept in lock-step with `at`.
    cell: Arc<AtomicU64>,
}

impl ReplicaCursor {
    /// The replica's registration index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The next sequence number this replica will apply — i.e. how much
    /// of the log its local state reflects. Snapshot producers pair
    /// their cloned state with this value for
    /// [`OpLog::install_snapshot`] on the consumer's cursor.
    pub fn position(&self) -> u64 {
        self.at
    }
}

struct Store<T> {
    /// Sequence number of `ops[0]`.
    base: u64,
    ops: Vec<T>,
}

/// The shared operation log.
pub struct OpLog<T> {
    storage: RwLock<Store<T>>,
    /// Flat-combining publication buffer; ticket order == vec order.
    pending: Mutex<Vec<T>>,
    /// Next ticket to hand out (assigned under the `pending` lock).
    enqueued: AtomicU64,
    /// Published tail: every sequence below this is readable.
    tail: AtomicU64,
    /// Compaction floor (sequence of the oldest resident entry).
    head: AtomicU64,
    combining: AtomicBool,
    cursors: RwLock<Vec<Arc<AtomicU64>>>,
    cfg: LogConfig,
    appends: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    compactions: AtomicU64,
    overruns: AtomicU64,
}

impl<T: Clone> OpLog<T> {
    /// Creates a log with the given tuning.
    pub fn new(cfg: LogConfig) -> Arc<Self> {
        Arc::new(Self {
            storage: RwLock::new(Store {
                base: 0,
                ops: Vec::new(),
            }),
            pending: Mutex::new(Vec::new()),
            enqueued: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            combining: AtomicBool::new(false),
            cursors: RwLock::new(Vec::new()),
            cfg,
            appends: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            overruns: AtomicU64::new(0),
        })
    }

    /// Registers a replica whose cursor starts at the current tail (the
    /// boot path registers every replica before the first append, so
    /// "current tail" is the empty prefix). Returns its cursor token.
    pub fn register(&self) -> ReplicaCursor {
        let mut cursors = self.cursors.write();
        // A replica born mid-stream starts at the tail: it represents
        // whatever snapshot its state machine was initialised from.
        let at = self.tail.load(Ordering::Acquire);
        let cell = Arc::new(AtomicU64::new(at));
        cursors.push(Arc::clone(&cell));
        ReplicaCursor {
            id: cursors.len() - 1,
            at,
            cell,
        }
    }

    /// Appends one operation, returning its sequence number. Lock-free
    /// for the caller in the common case: the operation is published to
    /// the combining buffer and either this thread wins the combiner
    /// election and sequences the whole buffer in one storage
    /// acquisition, or it spins until another combiner sequences it.
    pub fn append(&self, op: T) -> u64 {
        self.appends.fetch_add(1, Ordering::Relaxed);
        let ticket = {
            let mut pending = self.pending.lock();
            let t = self.enqueued.fetch_add(1, Ordering::Relaxed);
            pending.push(op);
            t
        };
        let mut spins = 0u32;
        while self.tail.load(Ordering::Acquire) <= ticket {
            if self
                .combining
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.combine();
                self.combining.store(false, Ordering::Release);
                continue;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        ticket
    }

    /// Sequences every published operation (combiner role). Runs with
    /// the `combining` flag held.
    fn combine(&self) {
        loop {
            let batch = std::mem::take(&mut *self.pending.lock());
            if batch.is_empty() {
                return;
            }
            let n = batch.len() as u64;
            let mut store = self.storage.write();
            store.ops.extend(batch);
            let new_tail = self.tail.load(Ordering::Relaxed) + n;
            self.tail.store(new_tail, Ordering::Release);
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.max_batch.fetch_max(n, Ordering::Relaxed);
            if store.ops.len() > self.cfg.high_water {
                self.compact(&mut store, new_tail);
            }
        }
    }

    /// Trims the applied prefix; advances past stragglers lagging more
    /// than `max_lag` (they rebuild from a snapshot on their next sync).
    fn compact(&self, store: &mut Store<T>, tail: u64) {
        let min_cursor = self
            .cursors
            .read()
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .filter(|&at| at != u64::MAX) // retired replicas don't pin
            .min()
            .unwrap_or(tail);
        let forced_floor = tail.saturating_sub(self.cfg.max_lag);
        let new_head = if min_cursor < forced_floor {
            self.overruns.fetch_add(1, Ordering::Relaxed);
            forced_floor
        } else {
            min_cursor
        };
        if new_head > store.base {
            store.ops.drain(..(new_head - store.base) as usize);
            store.base = new_head;
            self.head.store(new_head, Ordering::Release);
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies every operation between the replica's cursor and the
    /// published tail, in sequence order, through `apply(seq, op)`.
    ///
    /// Returns [`SyncOutcome::Overrun`] when compaction has advanced
    /// past the cursor; the caller must rebuild from a snapshot and
    /// [`OpLog::install_snapshot`].
    pub fn sync(&self, cursor: &mut ReplicaCursor, mut apply: impl FnMut(u64, &T)) -> SyncOutcome {
        let at = cursor.at;
        if at >= self.tail.load(Ordering::Acquire) {
            return SyncOutcome::Applied(0);
        }
        let store = self.storage.read();
        if at < store.base {
            return SyncOutcome::Overrun;
        }
        let upto = store.base + store.ops.len() as u64;
        for (i, op) in store.ops[(at - store.base) as usize..].iter().enumerate() {
            apply(at + i as u64, op);
        }
        cursor.at = upto;
        cursor.cell.store(upto, Ordering::Release);
        SyncOutcome::Applied(upto - at)
    }

    /// Declares the replica rebuilt from a snapshot taken at `seq`
    /// (typically [`OpLog::tail`] observed while the authoritative state
    /// was locked). Subsequent syncs resume from there.
    pub fn install_snapshot(&self, cursor: &mut ReplicaCursor, seq: u64) {
        cursor.at = seq;
        cursor.cell.store(seq, Ordering::Release);
    }

    /// Permanently retires a replica: its cursor stops pinning compaction
    /// and stops contributing to `max_lag_now`. Used when a replica's
    /// owner (an engine shard) is fenced — a dead shard must not hold the
    /// log hostage. The cursor slot is tombstoned, never reused.
    pub fn retire(&self, cursor: &ReplicaCursor) {
        cursor.cell.store(u64::MAX, Ordering::Release);
    }

    /// The published tail (next sequence to be assigned).
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// The compaction floor.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Entries the replica is behind the published tail.
    pub fn lag(&self, cursor: &ReplicaCursor) -> u64 {
        self.tail().saturating_sub(cursor.at)
    }

    /// A counter snapshot.
    pub fn stats(&self) -> LogStats {
        let tail = self.tail();
        let head = self.head();
        let max_lag_now = self
            .cursors
            .read()
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .filter(|&at| at != u64::MAX) // retired replicas don't lag
            .map(|at| tail.saturating_sub(at))
            .max()
            .unwrap_or(0);
        LogStats {
            tail,
            head,
            depth: tail - head,
            appends: self.appends.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            overruns: self.overruns.load(Ordering::Relaxed),
            max_lag_now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_sync_round_trip() {
        let log = OpLog::new(LogConfig::default());
        let mut r = log.register();
        for i in 0..10u64 {
            assert_eq!(log.append(i), i);
        }
        let mut seen = Vec::new();
        let out = log.sync(&mut r, |seq, op| seen.push((seq, *op)));
        assert_eq!(out, SyncOutcome::Applied(10));
        assert_eq!(seen, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
        // Idempotent: nothing new to apply.
        assert_eq!(log.sync(&mut r, |_, _| panic!()), SyncOutcome::Applied(0));
    }

    #[test]
    fn two_replicas_apply_exactly_once_each() {
        let log = OpLog::new(LogConfig::default());
        let mut a = log.register();
        let mut b = log.register();
        for i in 0..100u64 {
            log.append(i);
        }
        let mut sum_a = 0u64;
        log.sync(&mut a, |_, op| sum_a += op);
        for i in 100..200u64 {
            log.append(i);
        }
        log.sync(&mut a, |_, op| sum_a += op);
        let mut sum_b = 0u64;
        log.sync(&mut b, |_, op| sum_b += op);
        let want: u64 = (0..200).sum();
        assert_eq!(sum_a, want);
        assert_eq!(sum_b, want);
    }

    #[test]
    fn compaction_trims_applied_prefix_only() {
        let log = OpLog::new(LogConfig {
            high_water: 16,
            max_lag: u64::MAX,
        });
        let mut fast = log.register();
        let mut slow = log.register();
        for i in 0..64u64 {
            log.append(i);
            log.sync(&mut fast, |_, _| {});
        }
        // `slow` never synced, so nothing may be trimmed past zero.
        assert_eq!(log.head(), 0);
        let mut n = 0u64;
        assert_eq!(log.sync(&mut slow, |_, _| n += 1), SyncOutcome::Applied(64));
        assert_eq!(n, 64);
        // The next compaction can now trim everything.
        for i in 64..128u64 {
            log.append(i);
        }
        log.sync(&mut fast, |_, _| {});
        log.sync(&mut slow, |_, _| {});
        log.append(128);
        assert!(log.head() >= 64, "head={} after full sync", log.head());
    }

    #[test]
    fn straggler_overruns_and_rebuilds() {
        let log = OpLog::new(LogConfig {
            high_water: 8,
            max_lag: 16,
        });
        let mut fast = log.register();
        let mut slow = log.register();
        for i in 0..100u64 {
            log.append(i);
            log.sync(&mut fast, |_, _| {});
        }
        assert!(log.stats().overruns > 0, "straggler must be overrun");
        assert_eq!(log.sync(&mut slow, |_, _| {}), SyncOutcome::Overrun);
        // Snapshot rebuild: resume from the tail.
        let tail = log.tail();
        log.install_snapshot(&mut slow, tail);
        log.append(100);
        let mut got = Vec::new();
        assert_eq!(
            log.sync(&mut slow, |seq, op| got.push((seq, *op))),
            SyncOutcome::Applied(1)
        );
        assert_eq!(got, vec![(100, 100)]);
    }

    #[test]
    fn concurrent_appends_sequence_every_ticket() {
        let log = OpLog::new(LogConfig::default());
        let mut r = log.register();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..500u64 {
                        log.append(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(log.tail(), 2000);
        let mut count = 0u64;
        let mut sum = 0u64;
        log.sync(&mut r, |_, op| {
            count += 1;
            sum += op;
        });
        assert_eq!(count, 2000);
        let want: u64 = (0..4)
            .map(|t: u64| (0..500).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(sum, want);
        let st = log.stats();
        assert_eq!(st.appends, 2000);
        assert!(st.batches <= st.appends);
    }

    #[test]
    fn retired_replica_neither_pins_nor_lags() {
        let log = OpLog::new(LogConfig {
            high_water: 8,
            max_lag: u64::MAX,
        });
        let mut live = log.register();
        let dead = log.register();
        for i in 0..64u64 {
            log.append(i);
            log.sync(&mut live, |_, _| {});
        }
        // The idle replica pins compaction at zero...
        assert_eq!(log.head(), 0);
        assert_eq!(log.stats().max_lag_now, 64);
        // ...until it is retired, after which the next compaction trims
        // the fully-applied prefix and the lag stat ignores it.
        log.retire(&dead);
        log.append(64);
        log.sync(&mut live, |_, _| {});
        log.append(65);
        assert!(log.head() >= 64, "head={} after retire", log.head());
        log.sync(&mut live, |_, _| {});
        assert_eq!(log.stats().max_lag_now, 0);
    }

    #[test]
    fn stats_report_depth_and_lag() {
        let log = OpLog::new(LogConfig::default());
        let mut r = log.register();
        let _idle = log.register();
        for i in 0..5u64 {
            log.append(i);
        }
        log.sync(&mut r, |_, _| {});
        let st = log.stats();
        assert_eq!(st.tail, 5);
        assert_eq!(st.depth, 5);
        assert_eq!(st.max_lag_now, 5, "idle replica lags the full log");
        assert_eq!(log.lag(&r), 0);
    }
}
