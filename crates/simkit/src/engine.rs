//! Event-driven simulation engine.
//!
//! The engine owns a priority queue of scheduled events; each event is a
//! boxed closure invoked with the engine itself (so handlers can schedule
//! follow-up events) and the current virtual time. Events scheduled for the
//! same instant fire in schedule order, which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type Action = Box<dyn FnOnce(&mut Engine, SimTime)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (ties broken by schedule order) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation engine.
///
/// # Examples
///
/// ```
/// use solros_simkit::{Engine, SimTime};
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::from_us(1), |engine, _| {
///     // Handlers may schedule more events.
///     engine.schedule(SimTime::from_us(1), |_, now| {
///         assert_eq!(now, SimTime::from_us(2));
///     });
/// });
/// let events = engine.run();
/// assert_eq!(events, 2);
/// ```
#[derive(Default)]
pub struct Engine {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    processed: u64,
}

impl Engine {
    /// Creates an engine at time zero with no pending events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Returns the number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, action: F)
    where
        F: FnOnce(&mut Engine, SimTime) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules `action` to run at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; scheduling backwards in time is always
    /// a logic error in a discrete-event model.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Engine, SimTime) + 'static,
    {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Runs a single event if one is pending; returns whether one ran.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.processed += 1;
                (ev.action)(self, ev.at);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains; returns the number of events run.
    pub fn run(&mut self) -> u64 {
        let start = self.processed;
        while self.step() {}
        self.processed - start
    }

    /// Runs events until (and including) time `until`, leaving later events
    /// queued. The clock is advanced to `until` even if no event fires then.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let start = self.processed;
        while let Some(head) = self.queue.peek() {
            if head.at > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let seen = Rc::clone(&seen);
            e.schedule(SimTime::from_ns(delay), move |_, _| {
                seen.borrow_mut().push(tag);
            });
        }
        e.run();
        assert_eq!(*seen.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(e.now(), SimTime::from_ns(30));
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for tag in 0..100 {
            let seen = Rc::clone(&seen);
            e.schedule(SimTime::from_us(7), move |_, _| {
                seen.borrow_mut().push(tag);
            });
        }
        e.run();
        assert_eq!(*seen.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_us(1), |e, _| {
            e.schedule(SimTime::from_us(2), |e, now| {
                assert_eq!(now, SimTime::from_us(3));
                e.schedule(SimTime::ZERO, |_, now| {
                    assert_eq!(now, SimTime::from_us(3));
                });
            });
        });
        assert_eq!(e.run(), 3);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let seen = Rc::new(RefCell::new(0));
        let mut e = Engine::new();
        for delay in [5u64, 15, 25] {
            let seen = Rc::clone(&seen);
            e.schedule(SimTime::from_us(delay), move |_, _| {
                *seen.borrow_mut() += 1;
            });
        }
        e.run_until(SimTime::from_us(20));
        assert_eq!(*seen.borrow(), 2);
        assert_eq!(e.now(), SimTime::from_us(20));
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(*seen.borrow(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_us(10), |e, _| {
            e.schedule_at(SimTime::from_us(5), |_, _| {});
        });
        e.run();
    }
}
