//! Deterministic random number generation for workloads.
//!
//! All randomized workloads in the reproduction (random file offsets,
//! request interarrival jitter, synthetic corpora) draw from [`DetRng`] so
//! that every experiment is exactly reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, seedable RNG with convenience helpers.
///
/// # Examples
///
/// ```
/// use solros_simkit::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns a uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Returns an exponentially distributed value with the given mean,
    /// useful for Poisson request arrivals.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// Returns a raw `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Samples an index from a Zipf-like distribution over `[0, n)` with
    /// skew `theta` in `(0, 1)`; used for skewed file popularity in the
    /// buffer-cache experiments. Uses the standard CDF-inversion
    /// approximation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        if n == 1 {
            return 0;
        }
        let theta = theta.clamp(0.01, 0.99);
        // Inverse-CDF of the continuous approximation of Zipf.
        let u = self.unit();
        let nf = n as f64;
        let idx = nf * u.powf(1.0 / (1.0 - theta));
        (idx as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = DetRng::seed(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::seed(2);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = DetRng::seed(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_skews_low_indices() {
        let mut r = DetRng::seed(4);
        let n = 1000;
        let hits_low = (0..10_000).filter(|_| r.zipf(n, 0.9) < n / 10).count();
        // With strong skew, far more than 10% of samples land in the first decile.
        assert!(hits_low > 5_000, "hits_low {hits_low}");
        assert_eq!(r.zipf(1, 0.5), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
