//! Markdown table/report formatting shared by the benchmark harnesses.
//!
//! Every figure-regeneration binary prints its series as a GitHub-flavoured
//! markdown table so output can be pasted directly into `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple markdown table builder.
///
/// # Examples
///
/// ```
/// use solros_simkit::report::Table;
///
/// let mut t = Table::new(vec!["block", "GB/s"]);
/// t.row(vec!["64KB".into(), "2.40".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| block | GB/s |"));
/// assert!(md.contains("| 64KB | 2.40 |"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Returns the number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a byte count with a binary-unit suffix (`64KB`, `2MB`), matching
/// the axis labels used in the paper's figures.
pub fn fmt_size(bytes: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    const GB: u64 = 1024 * 1024 * 1024;
    if bytes >= GB && bytes.is_multiple_of(GB) {
        format!("{}GB", bytes / GB)
    } else if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{}MB", bytes / MB)
    } else if bytes >= KB && bytes.is_multiple_of(KB) {
        format!("{}KB", bytes / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a throughput value in GB/s with 3 decimals (decimal gigabytes,
/// as in the paper's axes).
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.3}", bytes_per_sec / 1e9)
}

/// Formats a throughput value in MB/s with 1 decimal.
pub fn fmt_mbps(bytes_per_sec: f64) -> String {
    format!("{:.1}", bytes_per_sec / 1e6)
}

/// Prints a section banner for a harness binary.
pub fn banner(title: &str) {
    println!("\n## {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(vec!["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into()]); // padded
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| 3 |  |"));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(64), "64B");
        assert_eq!(fmt_size(64 * 1024), "64KB");
        assert_eq!(fmt_size(2 * 1024 * 1024), "2MB");
        assert_eq!(fmt_size(3 * 1024 * 1024 * 1024), "3GB");
        assert_eq!(fmt_size(1500), "1500B");
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_gbps(2.4e9), "2.400");
        assert_eq!(fmt_mbps(300e6), "300.0");
    }
}
