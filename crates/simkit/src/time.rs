//! Virtual time for the simulation engine.
//!
//! [`SimTime`] is a nanosecond-resolution instant/duration hybrid (the
//! simulation origin is time zero, so instants and durations share a
//! representation, as is conventional in discrete-event simulators).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds since simulation start.
///
/// Arithmetic is saturating on subtraction and panics on addition overflow in
/// debug builds; simulations run for far less than `u64::MAX` nanoseconds
/// (~584 years), so overflow indicates a logic bug.
///
/// # Examples
///
/// ```
/// use solros_simkit::SimTime;
///
/// let t = SimTime::from_us(3) + SimTime::from_ns(500);
/// assert_eq!(t.as_ns(), 3_500);
/// assert!(t < SimTime::from_ms(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Returns the time in whole nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the time in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `self - other`, or zero when `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns true if this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Computes the virtual time to move `bytes` at `bytes_per_sec`, rounded up
/// to the nearest nanosecond.
///
/// Returns [`SimTime::MAX`] when the rate is zero or non-finite, modelling a
/// link that never completes.
///
/// # Examples
///
/// ```
/// use solros_simkit::time::transfer_time;
/// use solros_simkit::SimTime;
///
/// // 1 MiB over 1 GiB/s takes ~976.6 us.
/// let t = transfer_time(1 << 20, (1u64 << 30) as f64);
/// assert!(t > SimTime::from_us(976) && t < SimTime::from_us(977));
/// ```
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimTime {
    if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
        return SimTime::MAX;
    }
    SimTime::from_ns((bytes as f64 * 1e9 / bytes_per_sec).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_ms(1_500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn transfer_time_basics() {
        assert_eq!(transfer_time(1_000, 1e9), SimTime::from_us(1));
        assert_eq!(transfer_time(0, 1e9), SimTime::ZERO);
        assert_eq!(transfer_time(1, 0.0), SimTime::MAX);
        assert_eq!(transfer_time(1, f64::NAN), SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_ns(42)), "42ns");
        assert_eq!(format!("{}", SimTime::from_us(42)), "42.000us");
        assert_eq!(format!("{}", SimTime::from_ms(42)), "42.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(42)), "42.000s");
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }
}
