#![warn(missing_docs)]

//! Deterministic discrete-event simulation kit for Solros-rs.
//!
//! This crate provides the substrate on which the *timed* execution mode of
//! the Solros reproduction runs: a virtual-time event engine, FIFO and
//! multi-channel resources for modelling serialized hardware (PCIe links,
//! DMA channels, SSD internals), bandwidth-shaping helpers, deterministic
//! random number generation, and statistics collection (streaming moments
//! and log-scaled histograms with percentile queries).
//!
//! Everything here is single-threaded and deterministic: running the same
//! simulation twice produces bit-identical results, which is what lets the
//! benchmark harness regenerate the paper's figures reproducibly on any
//! machine.
//!
//! # Examples
//!
//! ```
//! use solros_simkit::{Engine, SimTime};
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_us(5), |_, now| {
//!     assert_eq!(now, SimTime::from_us(5));
//! });
//! engine.run();
//! assert_eq!(engine.now(), SimTime::from_us(5));
//! ```

pub mod engine;
pub mod report;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use resource::{FifoResource, Link, MultiChannel};
pub use rng::DetRng;
pub use stats::{Histogram, Summary};
pub use time::SimTime;
