//! Analytic resource models for serialized hardware.
//!
//! Devices like PCIe links, DMA channels, and SSD internals serve requests
//! one at a time (or one per channel). Rather than simulating blocking
//! processes, these resources compute completion times analytically: a
//! request arriving at `now` with service time `s` on a FIFO resource
//! completes at `max(now, busy_until) + s`. Callers schedule the completion
//! event themselves. This is the standard "server with a work-conserving
//! queue" abstraction and is exact for FIFO service disciplines.

use crate::time::{transfer_time, SimTime};

/// A single-server FIFO resource (e.g. one DMA channel, the SSD's internal
/// data path, a single PCIe link direction).
///
/// # Examples
///
/// ```
/// use solros_simkit::{FifoResource, SimTime};
///
/// let mut r = FifoResource::new("dma");
/// let c1 = r.acquire(SimTime::ZERO, SimTime::from_us(10));
/// let c2 = r.acquire(SimTime::from_us(3), SimTime::from_us(10));
/// assert_eq!(c1, SimTime::from_us(10));
/// assert_eq!(c2, SimTime::from_us(20)); // queued behind the first
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: &'static str,
    busy_until: SimTime,
    busy_time: SimTime,
    served: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            busy_until: SimTime::ZERO,
            busy_time: SimTime::ZERO,
            served: 0,
        }
    }

    /// Returns the resource name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Submits a request at `now` needing `service` time; returns its
    /// completion time and records utilization.
    pub fn acquire(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.busy_time += service;
        self.served += 1;
        done
    }

    /// Returns the time at which the resource next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Returns total busy (service) time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Returns the number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Returns utilization in `[0, 1]` over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.is_zero() {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }

    /// Resets the resource to idle, keeping the name.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.busy_time = SimTime::ZERO;
        self.served = 0;
    }
}

/// A bank of identical channels served earliest-free-first (e.g. the eight
/// DMA engines of a Xeon or Xeon Phi, or an SSD's internal parallelism).
///
/// # Examples
///
/// ```
/// use solros_simkit::{MultiChannel, SimTime};
///
/// let mut dma = MultiChannel::new("dma-engines", 2);
/// let a = dma.acquire(SimTime::ZERO, SimTime::from_us(10));
/// let b = dma.acquire(SimTime::ZERO, SimTime::from_us(10));
/// let c = dma.acquire(SimTime::ZERO, SimTime::from_us(10));
/// assert_eq!(a, SimTime::from_us(10));
/// assert_eq!(b, SimTime::from_us(10)); // second channel
/// assert_eq!(c, SimTime::from_us(20)); // queued
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannel {
    name: &'static str,
    channels: Vec<SimTime>,
    busy_time: SimTime,
    served: u64,
}

impl MultiChannel {
    /// Creates `n` idle channels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(name: &'static str, n: usize) -> Self {
        assert!(n > 0, "MultiChannel needs at least one channel");
        Self {
            name,
            channels: vec![SimTime::ZERO; n],
            busy_time: SimTime::ZERO,
            served: 0,
        }
    }

    /// Returns the resource name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Submits a request at `now` needing `service` time on the
    /// earliest-free channel; returns its completion time.
    pub fn acquire(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let (idx, _) = self
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one channel");
        let start = now.max(self.channels[idx]);
        let done = start + service;
        self.channels[idx] = done;
        self.busy_time += service;
        self.served += 1;
        done
    }

    /// Returns the number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Returns aggregate utilization in `[0, 1]` over the window ending at
    /// `now` (1.0 = all channels busy the whole time).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.is_zero() {
            return 0.0;
        }
        let cap = now.as_secs_f64() * self.channels.len() as f64;
        (self.busy_time.as_secs_f64() / cap).min(1.0)
    }

    /// Resets all channels to idle.
    pub fn reset(&mut self) {
        self.channels.fill(SimTime::ZERO);
        self.busy_time = SimTime::ZERO;
        self.served = 0;
    }
}

/// A unidirectional bandwidth-limited link with fixed propagation latency.
///
/// Transfers are serialized FIFO at `bytes_per_sec`; each transfer
/// additionally pays `latency` once (propagation + arbitration). This models
/// one direction of a PCIe link or the QPI inter-socket interconnect.
///
/// # Examples
///
/// ```
/// use solros_simkit::{Link, SimTime};
///
/// // 1 GB/s, 1 us latency.
/// let mut link = Link::new("pcie", 1e9, SimTime::from_us(1));
/// let done = link.transfer(SimTime::ZERO, 1_000_000);
/// assert_eq!(done, SimTime::from_us(1) + SimTime::from_ms(1));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    inner: FifoResource,
    bytes_per_sec: f64,
    latency: SimTime,
    bytes_moved: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(name: &'static str, bytes_per_sec: f64, latency: SimTime) -> Self {
        Self {
            inner: FifoResource::new(name),
            bytes_per_sec,
            latency,
            bytes_moved: 0,
        }
    }

    /// Returns the link name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Returns the configured bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Returns the configured per-transfer latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Submits a `bytes`-sized transfer at `now`; returns completion time.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.bytes_moved += bytes;
        let service = self.latency + transfer_time(bytes, self.bytes_per_sec);
        self.inner.acquire(now, service)
    }

    /// Returns total bytes moved over this link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Returns the time at which the link next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.inner.busy_until()
    }

    /// Returns link utilization over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.inner.utilization(now)
    }

    /// Resets the link to idle.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes() {
        let mut r = FifoResource::new("t");
        let c1 = r.acquire(SimTime::ZERO, SimTime::from_us(5));
        let c2 = r.acquire(SimTime::ZERO, SimTime::from_us(5));
        // Arrives after the first two are done: no queueing.
        let c3 = r.acquire(SimTime::from_us(30), SimTime::from_us(5));
        assert_eq!(c1, SimTime::from_us(5));
        assert_eq!(c2, SimTime::from_us(10));
        assert_eq!(c3, SimTime::from_us(35));
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_time(), SimTime::from_us(15));
    }

    #[test]
    fn fifo_utilization() {
        let mut r = FifoResource::new("t");
        r.acquire(SimTime::ZERO, SimTime::from_us(25));
        let u = r.utilization(SimTime::from_us(100));
        assert!((u - 0.25).abs() < 1e-9);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multichannel_overlaps_then_queues() {
        let mut m = MultiChannel::new("m", 3);
        let done: Vec<_> = (0..6)
            .map(|_| m.acquire(SimTime::ZERO, SimTime::from_us(10)))
            .collect();
        assert_eq!(&done[..3], &[SimTime::from_us(10); 3]);
        assert_eq!(&done[3..], &[SimTime::from_us(20); 3]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn multichannel_zero_panics() {
        let _ = MultiChannel::new("m", 0);
    }

    #[test]
    fn link_applies_latency_and_bandwidth() {
        let mut l = Link::new("l", 1e9, SimTime::from_us(2));
        // 1000 bytes at 1 GB/s = 1 us + 2 us latency.
        assert_eq!(l.transfer(SimTime::ZERO, 1_000), SimTime::from_us(3));
        assert_eq!(l.bytes_moved(), 1_000);
        // Second transfer queues behind the first.
        assert_eq!(l.transfer(SimTime::ZERO, 1_000), SimTime::from_us(6));
    }

    #[test]
    fn link_throughput_converges_to_bandwidth() {
        let mut l = Link::new("l", 2e9, SimTime::from_ns(500));
        let mut done = SimTime::ZERO;
        let chunk = 1 << 20;
        for _ in 0..64 {
            done = l.transfer(SimTime::ZERO, chunk);
        }
        let gbps = 64.0 * chunk as f64 / done.as_secs_f64() / 1e9;
        assert!(gbps > 1.8 && gbps <= 2.0, "got {gbps}");
    }

    #[test]
    fn reset_clears_state() {
        let mut r = FifoResource::new("t");
        r.acquire(SimTime::ZERO, SimTime::from_us(5));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
        assert_eq!(r.served(), 0);

        let mut l = Link::new("l", 1e9, SimTime::ZERO);
        l.transfer(SimTime::ZERO, 10);
        l.reset();
        assert_eq!(l.bytes_moved(), 0);
    }
}
