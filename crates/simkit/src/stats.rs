//! Statistics collection: streaming summaries and log-scaled histograms.
//!
//! Latency distributions in the paper are reported as percentiles (e.g. the
//! 99th-percentile TCP latency in Figure 1b), so [`Histogram`] supports
//! percentile queries over a log-spaced binning from 1 ns to ~17 minutes
//! with bounded relative error.

use crate::time::SimTime;

/// Streaming summary: count, mean, min, max, and sum.
///
/// # Examples
///
/// ```
/// use solros_simkit::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Returns the mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Returns the minimum, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Returns the maximum, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Number of log2 buckets; covers 1 ns .. 2^40 ns (~18 minutes).
const BUCKETS: usize = 40;
/// Sub-buckets per power of two (linear within a bucket).
const SUB: usize = 16;

/// A log-scaled latency histogram with percentile queries.
///
/// Values are recorded in nanoseconds. Relative error of a percentile query
/// is bounded by `1/SUB` (6.25%), comfortably below the factor-level
/// differences the paper reports.
///
/// # Examples
///
/// ```
/// use solros_simkit::{Histogram, SimTime};
///
/// let mut h = Histogram::new();
/// for us in 1..=100u64 {
///     h.record(SimTime::from_us(us));
/// }
/// let p50 = h.percentile(50.0).as_us_f64();
/// assert!((45.0..=56.0).contains(&p50), "p50 {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            bins: vec![0; BUCKETS * SUB],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bin_of(ns: u64) -> usize {
        if ns < SUB as u64 {
            // The first bucket is linear in [0, SUB).
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize;
        let bucket = msb.min(BUCKETS - 1);
        let sub = ((ns >> (bucket.saturating_sub(4))) as usize) & (SUB - 1);
        (bucket * SUB + sub).min(BUCKETS * SUB - 1)
    }

    fn bin_value(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let bucket = idx / SUB;
        let sub = (idx % SUB) as u64;
        // Midpoint of the sub-bucket range.
        let base = 1u64 << bucket;
        let step = base / SUB as u64;
        base + sub * step.max(1) + step / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, t: SimTime) {
        let ns = t.as_ns();
        self.bins[Self::bin_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Returns the number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean latency, or zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Returns the exact maximum sample, or zero when empty.
    pub fn max(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.max_ns)
        }
    }

    /// Returns the exact minimum sample, or zero when empty.
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.min_ns)
        }
    }

    /// Returns the latency at percentile `p` (0–100), approximated to the
    /// containing sub-bucket; zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimTime {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank <= 1 {
            return SimTime::from_ns(self.min_ns);
        }
        if rank >= self.count {
            return SimTime::from_ns(self.max_ns);
        }
        let mut seen = 0;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the true extremes for the tails.
                return SimTime::from_ns(Self::bin_value(idx).clamp(self.min_ns, self.max_ns));
            }
        }
        SimTime::from_ns(self.max_ns)
    }

    /// Returns the cumulative fraction of samples at or below `t`, in
    /// `[0, 1]`; used to plot CDFs (Figure 1b).
    pub fn cdf_at(&self, t: SimTime) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let limit = Self::bin_of(t.as_ns());
        let below: u64 = self.bins[..=limit].iter().sum();
        below as f64 / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        s.record(10.0);
        s.record(20.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 30.0);
        assert_eq!(s.mean(), 15.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 20.0);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 9.0);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimTime::from_us(us));
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let want = p * 10.0; // us
            let got = h.percentile(p).as_us_f64();
            let err = (got - want).abs() / want;
            assert!(err < 0.10, "p{p}: want {want} got {got}");
        }
    }

    #[test]
    fn histogram_extremes_exact() {
        let mut h = Histogram::new();
        h.record(SimTime::from_ns(17));
        h.record(SimTime::from_ms(3));
        assert_eq!(h.min(), SimTime::from_ns(17));
        assert_eq!(h.max(), SimTime::from_ms(3));
        assert_eq!(h.percentile(0.0), SimTime::from_ns(17));
        assert_eq!(h.percentile(100.0), SimTime::from_ms(3));
    }

    #[test]
    fn histogram_cdf_monotone() {
        let mut h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50] {
            h.record(SimTime::from_us(us));
        }
        let a = h.cdf_at(SimTime::from_us(15));
        let b = h.cdf_at(SimTime::from_us(35));
        let c = h.cdf_at(SimTime::from_us(100));
        assert!(a <= b && b <= c);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.cdf_at(SimTime::from_us(1)), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimTime::from_us(10));
        b.record(SimTime::from_us(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimTime::from_us(1000));
        assert_eq!(a.min(), SimTime::from_us(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        let h = Histogram::new();
        let _ = h.percentile(101.0);
    }
}
