//! Property tests for the simulation kit: histogram accuracy, engine
//! ordering, resource conservation.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_simkit::{Engine, FifoResource, Histogram, MultiChannel, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram percentiles stay within the documented 1/16 relative
    /// error of the exact order statistic.
    #[test]
    fn histogram_percentile_error_bounded(
        mut samples in vec(1u64..100_000_000, 10..400),
        p in 1.0f64..99.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimTime::from_ns(s));
        }
        samples.sort_unstable();
        let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
        let exact = samples[rank - 1] as f64;
        let got = h.percentile(p).as_ns() as f64;
        let err = (got - exact).abs() / exact;
        // 1/16 sub-bucket resolution plus rank rounding slack.
        prop_assert!(err <= 0.20, "p{p}: exact {exact} got {got} err {err}");
    }

    /// The engine runs every event exactly once, in timestamp order, with
    /// ties in schedule order.
    #[test]
    fn engine_total_order(delays in vec(0u64..1_000, 1..200)) {
        let fired: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for (seq, &d) in delays.iter().enumerate() {
            let fired = Rc::clone(&fired);
            e.schedule(SimTime::from_ns(d), move |_, now| {
                fired.borrow_mut().push((now.as_ns(), seq));
            });
        }
        let n = e.run();
        prop_assert_eq!(n as usize, delays.len());
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for w in fired.windows(2) {
            prop_assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "order violated: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// A FIFO resource conserves work: total busy time equals the sum of
    /// service times, and completions never overlap.
    #[test]
    fn fifo_conserves_work(jobs in vec((0u64..1_000, 1u64..500), 1..100)) {
        let mut r = FifoResource::new("prop");
        let mut total = SimTime::ZERO;
        let mut prev_done = SimTime::ZERO;
        let mut arrivals: Vec<(SimTime, SimTime)> =
            jobs.iter().map(|&(a, s)| (SimTime::from_ns(a), SimTime::from_ns(s))).collect();
        arrivals.sort_by_key(|(a, _)| *a);
        for (arrive, service) in arrivals {
            let done = r.acquire(arrive, service);
            prop_assert!(done >= arrive + service);
            prop_assert!(done >= prev_done + service, "overlapping service");
            prev_done = done;
            total += service;
        }
        prop_assert_eq!(r.busy_time(), total);
    }

    /// A multi-channel bank never completes later than a single FIFO
    /// server given the same jobs.
    #[test]
    fn channels_never_hurt(jobs in vec(1u64..500, 1..60), channels in 1usize..8) {
        let mut single = FifoResource::new("one");
        let mut multi = MultiChannel::new("many", channels);
        let mut last_single = SimTime::ZERO;
        let mut last_multi = SimTime::ZERO;
        for &s in &jobs {
            last_single = single.acquire(SimTime::ZERO, SimTime::from_ns(s));
            last_multi = multi.acquire(SimTime::ZERO, SimTime::from_ns(s));
        }
        prop_assert!(last_multi <= last_single);
    }
}
