//! Text indexing on Solros vs. the co-processor-centric baselines.
//!
//! Builds a synthetic corpus, then constructs the same inverted index
//! through three I/O stacks — the Solros data plane, Phi-virtio, and
//! Phi-NFS — verifying identical results and reporting each stack's I/O
//! activity (the *functional* view; the timed reproduction of Figure 16
//! lives in `solros-bench`).
//!
//! Run with `cargo run --example text_indexing`.

use std::sync::Arc;

use solros::control::Solros;
use solros_apps::{generate_corpus, CorpusSpec, TextIndexer};
use solros_baseline::{NfsClient, VirtioFs};
use solros_machine::MachineConfig;

fn main() {
    let spec = CorpusSpec {
        docs: 40,
        doc_bytes: 16_000,
        vocab: 2_000,
        skew: 0.8,
        seed: 2024,
    };

    // --- Solros path: the app runs on the co-processor's data plane ---
    let sys = Solros::boot(MachineConfig::small());
    let solros_fs = Arc::clone(sys.data_plane(0).fs());
    let bytes = generate_corpus(&*solros_fs, "/corpus", &spec).unwrap();
    println!("corpus: {} docs, {} KiB total", spec.docs, bytes / 1024);

    let (solros_index, solros_stats) = TextIndexer::new(Arc::clone(&solros_fs), 8)
        .run("/corpus")
        .unwrap();
    println!(
        "solros:    {} terms, {} tokens, {} KiB read (p2p reads: {})",
        solros_stats.unique_terms,
        solros_stats.tokens,
        solros_stats.bytes_read / 1024,
        sys.fs_proxy_stats(0)
            .p2p_reads
            .load(std::sync::atomic::Ordering::Relaxed)
    );

    // --- Phi-virtio baseline: same app body, relayed block device ---
    let virtio = Arc::new(VirtioFs::new(Arc::new(
        solros_fs::FileSystem::mkfs(solros_nvme::NvmeDevice::new(32_768), 512).unwrap(),
    )));
    generate_corpus(&*virtio, "/corpus", &spec).unwrap();
    let (virtio_index, virtio_stats) = TextIndexer::new(Arc::clone(&virtio), 8)
        .run("/corpus")
        .unwrap();
    println!(
        "phi-virtio: {} terms, {} tokens, {} requests relayed, {} KiB CPU-copied",
        virtio_stats.unique_terms,
        virtio_stats.tokens,
        virtio
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        virtio
            .stats()
            .bytes_copied
            .load(std::sync::atomic::Ordering::Relaxed)
            / 1024,
    );

    // --- Phi-NFS baseline ---
    let nfs = Arc::new(NfsClient::new(Arc::new(
        solros_fs::FileSystem::mkfs(solros_nvme::NvmeDevice::new(32_768), 512).unwrap(),
    )));
    generate_corpus(&*nfs, "/corpus", &spec).unwrap();
    let (nfs_index, nfs_stats) = TextIndexer::new(Arc::clone(&nfs), 8)
        .run("/corpus")
        .unwrap();
    println!(
        "phi-nfs:   {} terms, {} tokens, {} READ RPCs, {} GETATTRs",
        nfs_stats.unique_terms,
        nfs_stats.tokens,
        nfs.stats().reads.load(std::sync::atomic::Ordering::Relaxed),
        nfs.stats()
            .getattrs
            .load(std::sync::atomic::Ordering::Relaxed),
    );

    // All three stacks index the same corpus identically.
    assert_eq!(solros_index, virtio_index);
    assert_eq!(solros_index, nfs_index);
    assert_eq!(solros_stats.tokens, virtio_stats.tokens);
    println!("all stacks produced identical indexes over identical corpora");

    // Persist the index through the Solros path and reload it.
    let solros_fs = Arc::clone(sys.data_plane(0).fs());
    let bytes = solros_apps::write_index(&solros_index, &*solros_fs, "/index.bin").unwrap();
    let reloaded = solros_apps::read_index(&*solros_fs, "/index.bin").unwrap();
    assert_eq!(reloaded, solros_index);
    println!(
        "index persisted and reloaded through Solros ({} KiB)",
        bytes / 1024
    );

    // Quick query demo.
    let term = solros_apps::corpus::word(0);
    let postings = solros_index.get(&term).unwrap();
    println!(
        "most common term {term:?} appears in {}/{} documents",
        postings.len(),
        spec.docs
    );
    sys.shutdown();
}
