//! A network server scaled across co-processors with a shared listening
//! socket (§4.4.3).
//!
//! Both co-processors listen on the same port; the control-plane OS
//! load-balances incoming connections round-robin. Each co-processor runs
//! a tiny key/value-flavoured request handler; a simulated client machine
//! hammers the port and verifies every reply.
//!
//! Run with `cargo run --example network_server`.

use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_netdev::EndKind;

fn main() {
    let sys = Solros::boot(MachineConfig::small());
    let coprocs = sys.coprocs();
    println!("{coprocs} co-processors share one listening socket on port 9090");

    // Each co-processor accepts and serves on its own thread.
    let mut servers = Vec::new();
    for i in 0..coprocs {
        let net = sys.data_plane(i).net().clone();
        servers.push(std::thread::spawn(move || {
            let listener = net.listen(9090, 128).unwrap();
            let mut served = 0u32;
            // Serve until connections stop arriving.
            while let Some((stream, _peer)) = listener.accept_timeout(Duration::from_millis(700)) {
                let mut buf = [0u8; 64];
                let n = stream.recv(&mut buf);
                if n == 0 {
                    continue;
                }
                // "GET <key>" -> "VAL <key>@cp<i>"
                let req = String::from_utf8_lossy(&buf[..n]).to_string();
                let key = req.strip_prefix("GET ").unwrap_or("?");
                let reply = format!("VAL {key}@cp{i}");
                stream.send(reply.as_bytes()).unwrap();
                served += 1;
            }
            served
        }));
    }

    // The client machine: 30 connections, one request each.
    let fabric = Arc::clone(sys.network());
    let total = 30u64;
    let client = std::thread::spawn(move || {
        let mut ok = 0;
        for c in 0..total {
            let conn = loop {
                if let Ok(x) = fabric.client_connect(9090, c) {
                    break x;
                }
                std::thread::yield_now();
            };
            let req = format!("GET key{c}");
            fabric.send(conn, EndKind::Client, req.as_bytes()).unwrap();
            let reply = loop {
                let got = fabric.recv(conn, EndKind::Client, 128).unwrap();
                if !got.is_empty() {
                    break String::from_utf8_lossy(&got).to_string();
                }
                std::thread::yield_now();
            };
            assert!(
                reply.starts_with(&format!("VAL key{c}@cp")),
                "bad reply {reply:?}"
            );
            ok += 1;
            let _ = fabric.close(conn, EndKind::Client);
        }
        ok
    });

    let ok = client.join().unwrap();
    let served: Vec<u32> = servers.into_iter().map(|s| s.join().unwrap()).collect();
    println!("client verified {ok}/{total} replies");
    for (i, s) in served.iter().enumerate() {
        println!("co-processor {i} served {s} connections");
    }
    let spread = served.iter().max().unwrap() - served.iter().min().unwrap();
    println!(
        "round-robin balance spread: {spread} (proxy accepted: {:?})",
        sys.tcp_proxy_stats(0)
            .accepted
            .iter()
            .map(|a| a.load(std::sync::atomic::Ordering::Relaxed))
            .collect::<Vec<_>>()
    );
    assert_eq!(served.iter().sum::<u32>() as u64, total);
    assert!(spread <= 1, "round-robin should balance within one");
    sys.shutdown();
}
