//! Quickstart: boot a Solros machine, exercise both delegated services.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_netdev::EndKind;

fn main() {
    // Boot the paper's testbed shape: 2 sockets, 4 Xeon Phis (two of them
    // across the QPI boundary from the SSD), NVMe, NIC.
    let sys = Solros::boot(MachineConfig::small());
    println!("booted Solros with {} co-processors", sys.coprocs());

    // --- File-system service (delegated to the host proxy) ---
    let fs = sys.data_plane(0).fs();
    fs.mkdir("/demo").unwrap();
    let f = fs.create("/demo/hello.txt").unwrap();
    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    fs.write_at(f, 0, &payload).unwrap();
    let back = fs.read_to_vec(f, 0, payload.len()).unwrap();
    assert_eq!(back, payload);
    println!(
        "fs: wrote+read {} KiB through the stub->proxy->NVMe path",
        payload.len() / 1024
    );
    let st = sys.fs_proxy_stats(0);
    println!(
        "fs proxy: {} RPCs, {} p2p reads, {} buffered reads, {} p2p writes, {} buffered writes",
        st.rpcs.load(std::sync::atomic::Ordering::Relaxed),
        st.p2p_reads.load(std::sync::atomic::Ordering::Relaxed),
        st.buffered_reads.load(std::sync::atomic::Ordering::Relaxed),
        st.p2p_writes.load(std::sync::atomic::Ordering::Relaxed),
        st.buffered_writes
            .load(std::sync::atomic::Ordering::Relaxed),
    );

    // --- Network service (TCP proxy + event dispatcher) ---
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(8080, 64).unwrap();
    let fabric = Arc::clone(sys.network());
    let client = std::thread::spawn(move || {
        let conn = loop {
            if let Ok(c) = fabric.client_connect(8080, 99) {
                break c;
            }
            std::thread::yield_now();
        };
        fabric.send(conn, EndKind::Client, b"hello solros").unwrap();
        loop {
            let got = fabric.recv(conn, EndKind::Client, 64).unwrap();
            if !got.is_empty() {
                assert_eq!(got, b"HELLO SOLROS");
                break;
            }
            std::thread::yield_now();
        }
        fabric.close(conn, EndKind::Client).unwrap();
    });
    let (stream, peer) = listener
        .accept_timeout(Duration::from_secs(5))
        .expect("client connects");
    let mut buf = [0u8; 64];
    let n = stream.recv(&mut buf);
    let upper: Vec<u8> = buf[..n].iter().map(|b| b.to_ascii_uppercase()).collect();
    stream.send(&upper).unwrap();
    client.join().unwrap();
    println!("net: echoed {n} bytes to client {peer} through the shared TCP proxy");

    // PCIe accounting: what the transport actually moved.
    let snap = sys.machine().coprocs[0].counters.snapshot();
    println!(
        "pcie (coproc 0): {} line reads, {} line writes, {} DMA ops ({} bytes), {} ctrl reads",
        snap.read_lines, snap.write_lines, snap.dma_ops, snap.dma_bytes, snap.ctrl_reads
    );

    sys.shutdown();
    println!("clean shutdown");
}
