//! Image search over a feature-vector database on Solros.
//!
//! Builds a database of SIFT-like descriptors on the shared file system,
//! then runs nearest-neighbour queries from the co-processor through the
//! Solros I/O path and through the host-centric mediation baseline,
//! confirming identical answers.
//!
//! Run with `cargo run --example image_search`.

use std::sync::Arc;

use solros::control::Solros;
use solros_apps::image_search::{ImageDb, DIM, VEC_BYTES};
use solros_baseline::HostCentric;
use solros_machine::MachineConfig;

fn main() {
    let sys = Solros::boot(MachineConfig::small());
    let fs = Arc::clone(sys.data_plane(0).fs());

    // Build the database through the Solros path.
    let n = 2_000;
    let seed = 77;
    let db = ImageDb::new(Arc::clone(&fs), "/images.db");
    let bytes = db.build(n, seed).unwrap();
    println!(
        "database: {n} vectors x {DIM} dims = {} KiB on the simulated NVMe SSD",
        bytes / 1024
    );

    // Query: vector 1234's own descriptor — its nearest neighbour is itself.
    let query = ImageDb::<solros::fs_api::CoprocFs>::vector_for_seed(n, seed, 1234);
    let (hits, read) = db.search(&query, 10, 8).unwrap();
    println!("solros search read {} KiB; top hits:", read / 1024);
    for h in &hits[..3] {
        println!("  image {:>5}  distance {:.6}", h.id, h.distance);
    }
    assert_eq!(hits[0].id, 1234);
    assert_eq!(read as usize, n * VEC_BYTES);

    // Host-centric baseline on its own machine: same answers, double copies.
    let host_fs =
        Arc::new(solros_fs::FileSystem::mkfs(solros_nvme::NvmeDevice::new(65_536), 1024).unwrap());
    let counters = Arc::new(solros_pcie::PcieCounters::new());
    let window = solros_pcie::Window::new(8 << 20, solros_pcie::Side::Coproc, counters);
    let alloc = Arc::new(solros_machine::WindowAlloc::new(8 << 20));
    let hc = Arc::new(HostCentric::new(host_fs, window, alloc));
    let db2 = ImageDb::new(Arc::clone(&hc), "/images.db");
    db2.build(n, seed).unwrap();
    let (hits2, _) = db2.search(&query, 10, 8).unwrap();
    assert_eq!(hits, hits2, "stacks agree on the search results");
    let s = hc.stats();
    println!(
        "host-centric: staged {} KiB + forwarded {} KiB (PCIe used twice per byte)",
        s.bytes_staged.load(std::sync::atomic::Ordering::Relaxed) / 1024,
        s.bytes_forwarded.load(std::sync::atomic::Ordering::Relaxed) / 1024,
    );

    sys.shutdown();
    println!("done");
}
