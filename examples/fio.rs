//! A small fio-style workload driver: random/sequential read/write
//! patterns against a chosen I/O stack, with functional path statistics.
//!
//! ```text
//! cargo run --example fio -- [solros|virtio|nfs|hostcentric] [read|write] [seq|rand] [block_kb]
//! ```
//!
//! Defaults: `solros read rand 64`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use solros::control::Solros;
use solros_apps::corpus::word;
use solros_baseline::{FileStore, HostCentric, NfsClient, VirtioFs};
use solros_machine::{MachineConfig, WindowAlloc};
use solros_simkit::DetRng;

const FILE_BYTES: u64 = 16 << 20; // 16 MiB working file.
const OPS: usize = 128;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stack = args.get(1).map(String::as_str).unwrap_or("solros");
    let is_read = args.get(2).map(String::as_str).unwrap_or("read") == "read";
    let sequential = args.get(3).map(String::as_str).unwrap_or("rand") == "seq";
    let block_kb: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(64);
    let block = (block_kb << 10) as usize;

    println!(
        "fio: stack={stack} op={} pattern={} block={}KB file={}MB ops={OPS}",
        if is_read { "read" } else { "write" },
        if sequential { "seq" } else { "rand" },
        block_kb,
        FILE_BYTES >> 20,
    );

    // Keep the Solros system alive for the run when selected.
    let sys = Solros::boot(MachineConfig {
        sockets: 2,
        coprocs: 2,
        ssd_blocks: 65_536,
        coproc_window_bytes: 32 << 20,
        host_cache_pages: 1024,
    });

    let store: Arc<dyn FileStore> = match stack {
        "solros" => Arc::clone(sys.data_plane(0).fs()) as Arc<dyn FileStore>,
        "virtio" => Arc::new(VirtioFs::new(fresh_fs())),
        "nfs" => Arc::new(NfsClient::new(fresh_fs())),
        "hostcentric" => {
            let counters = Arc::new(solros_pcie::PcieCounters::new());
            Arc::new(HostCentric::new(
                fresh_fs(),
                solros_pcie::Window::new(32 << 20, solros_pcie::Side::Coproc, counters),
                Arc::new(WindowAlloc::new(32 << 20)),
            ))
        }
        other => {
            eprintln!("unknown stack {other:?}; use solros|virtio|nfs|hostcentric");
            std::process::exit(2);
        }
    };

    // Lay out the working file (content derived from the word table so
    // verification is cheap and deterministic).
    let handle = store.create("/fio.dat").unwrap();
    let chunk = vec![0xA5u8; 1 << 20];
    let mut off = 0u64;
    while off < FILE_BYTES {
        store.write_at(handle, off, &chunk).unwrap();
        off += chunk.len() as u64;
    }

    let mut rng = DetRng::seed(7);
    let mut buf = vec![0u8; block];
    let blocks_in_file = FILE_BYTES / block as u64;
    let dev_before = sys.machine().nvme.stats();
    let start = Instant::now();
    let mut bytes = 0u64;
    for i in 0..OPS {
        let slot = if sequential {
            i as u64 % blocks_in_file
        } else {
            rng.below(blocks_in_file)
        };
        let off = slot * block as u64;
        if is_read {
            bytes += store.read_at(handle, off, &mut buf).unwrap() as u64;
        } else {
            buf[0] = i as u8;
            bytes += store.write_at(handle, off, &buf).unwrap() as u64;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "functional run: {} MiB in {:.1} ms wall-clock (simulation-host time, \
         not a performance claim)",
        bytes >> 20,
        secs * 1e3
    );

    if stack == "solros" {
        let st = sys.fs_proxy_stats(0);
        println!(
            "solros proxy paths: p2p reads {} / buffered reads {} / p2p writes {} / \
             buffered writes {} / prefetched pages {}",
            st.p2p_reads.load(Ordering::Relaxed),
            st.buffered_reads.load(Ordering::Relaxed),
            st.p2p_writes.load(Ordering::Relaxed),
            st.buffered_writes.load(Ordering::Relaxed),
            st.prefetched_pages.load(Ordering::Relaxed),
        );
        let dev = sys.machine().nvme.stats();
        let (cmds, bells, ints) = (
            dev.commands - dev_before.commands,
            dev.doorbells - dev_before.doorbells,
            dev.interrupts - dev_before.interrupts,
        );
        println!(
            "nvme (measured ops only): {cmds} commands, {bells} doorbells, {ints} \
             interrupts (coalescing ratio {:.1}x)",
            cmds as f64 / ints.max(1) as f64
        );
    }
    // Use the word table so the corpus module's table stays exercised.
    let _ = word(0);
    sys.shutdown();
}

fn fresh_fs() -> Arc<solros_fs::FileSystem> {
    Arc::new(solros_fs::FileSystem::mkfs(solros_nvme::NvmeDevice::new(65_536), 1024).unwrap())
}
